//! A concurrent, cache-accelerated query service over a shared SNT-index.
//!
//! The paper's engine answers one strict path query at a time on one
//! thread. Production histogram retrieval is the opposite regime: many
//! concurrent trip queries against one *shared, immutable-between-updates*
//! index — exactly where result caching and parallel sub-query execution
//! pay off. This crate adds that serving layer without touching query
//! semantics:
//!
//! * [`QueryService`] — wraps an `RwLock<SntIndex>` + `Arc<RoadNetwork>`
//!   behind a thread-safe API for single SPQs, single trip queries, and
//!   batches of trip queries.
//! * a worker **thread pool** ([`pool`]) fans batches out across threads
//!   and fans each trip's independent sub-query chains (the
//!   `QueryEngine::trip_query` decomposition) into parallel
//!   `get_travel_times` calls; a helper-joining task group makes the
//!   nesting deadlock-free.
//! * a **sharded LRU cache** ([`cache`]) keyed by the full SPQ
//!   `(path, interval, filter, β, exclusion)` with hit/miss/eviction
//!   counters, one `Mutex` per shard, and whole-cache invalidation on
//!   [`QueryService::append_batch`].
//! * [`ServiceStats`] — p50/p95/p99 latency, throughput, and cache hit
//!   rate, computed with `tthr-metrics`.
//!
//! Results are **identical** to the single-threaded engine: the cache key
//! is the entire query, the cached value is the exact
//! [`TravelTimes`] the index returned, and chains
//! are only executed in parallel when
//! [`QueryEngine::chains_are_independent`] proves the decomposition order
//! cannot matter (otherwise the service falls back to the sequential loop
//! — still cache-accelerated).
//!
//! ```
//! use std::sync::Arc;
//! use tthr_core::{SntConfig, SntIndex, Spq, TimeInterval};
//! use tthr_network::{examples::example_network, Path};
//! use tthr_network::examples::{EDGE_A, EDGE_B, EDGE_E};
//! use tthr_service::{QueryService, ServiceConfig};
//! use tthr_trajectory::examples::example_trajectories;
//!
//! let network = example_network();
//! let index = SntIndex::build(&network, &example_trajectories(), SntConfig::default());
//! let service = QueryService::new(index, Arc::new(network), ServiceConfig::default());
//!
//! let spq = Spq::new(Path::new(vec![EDGE_A, EDGE_B, EDGE_E]), TimeInterval::fixed(0, 15));
//! assert_eq!(service.get_travel_times(&spq).sorted(), vec![10.0, 11.0]);
//! assert_eq!(service.get_travel_times(&spq).sorted(), vec![10.0, 11.0]); // cache hit
//! assert_eq!(service.stats().cache.hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod persist;
pub mod pool;
mod stats;

pub use cache::{CacheCounters, ShardedCache};
pub use persist::{SnapshotInfo, SNAPSHOT_FILE, WAL_FILE};
pub use pool::ThreadPool;
pub use stats::{LatencySummary, ServiceStats};

use crate::stats::LatencyLog;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;
use tthr_core::{
    QueryEngine, QueryEngineConfig, SntIndex, Spq, TravelTimeProvider, TravelTimes, TripQuery,
    WalBatch,
};
use tthr_network::RoadNetwork;
use tthr_store::{ByteWriter, Persist, StoreError};
use tthr_trajectory::TrajectorySet;

/// Service construction options.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (0 = one per available CPU).
    pub num_threads: usize,
    /// Result-cache shard count (locks).
    pub cache_shards: usize,
    /// Total result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Engine strategy configuration shared by every query.
    pub engine: QueryEngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            num_threads: 0,
            cache_shards: 16,
            cache_capacity: 65_536,
            engine: QueryEngineConfig::default(),
        }
    }
}

struct Inner {
    index: RwLock<SntIndex>,
    network: Arc<RoadNetwork>,
    cache: ShardedCache,
    engine_config: QueryEngineConfig,
    latency: LatencyLog,
    spq_queries: AtomicU64,
    trip_queries: AtomicU64,
    generation: AtomicU64,
    /// Durable storage, attached by `save_snapshot` / `open`. Lock order:
    /// the index lock is always taken **before** this mutex.
    persist: Mutex<Option<persist::Persistence>>,
}

/// Routes the engine's `getTravelTimes` dispatches through the shared
/// cache. Inserts happen while the caller holds the index read lock, so a
/// concurrent [`QueryService::append_batch`] (write lock, then clear)
/// can never leave a stale entry behind.
struct CachedIndex<'a> {
    index: &'a SntIndex,
    cache: &'a ShardedCache,
}

impl TravelTimeProvider for CachedIndex<'_> {
    fn travel_times(&self, spq: &Spq) -> TravelTimes {
        if let Some(hit) = self.cache.get(spq) {
            return hit;
        }
        let computed = self.index.get_travel_times(spq);
        self.cache.insert(spq.clone(), computed.clone());
        computed
    }
}

/// A multi-threaded query service over one shared SNT-index.
///
/// The service is `Send + Sync`; share it across threads with `Arc` (or
/// plain references and scoped threads). All query methods take `&self`.
pub struct QueryService {
    inner: Arc<Inner>,
    pool: Arc<ThreadPool>,
}

impl QueryService {
    /// Builds a service owning the index.
    pub fn new(index: SntIndex, network: Arc<RoadNetwork>, config: ServiceConfig) -> Self {
        let threads = if config.num_threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            config.num_threads
        };
        QueryService {
            inner: Arc::new(Inner {
                index: RwLock::new(index),
                network,
                cache: ShardedCache::new(config.cache_shards, config.cache_capacity),
                engine_config: config.engine,
                latency: LatencyLog::new(),
                spq_queries: AtomicU64::new(0),
                trip_queries: AtomicU64::new(0),
                generation: AtomicU64::new(0),
                persist: Mutex::new(None),
            }),
            pool: Arc::new(ThreadPool::new(threads)),
        }
    }

    /// Number of pool worker threads.
    pub fn num_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The engine configuration every query runs under.
    pub fn engine_config(&self) -> &QueryEngineConfig {
        &self.inner.engine_config
    }

    /// Answers a single SPQ through the cache (Procedure 5 semantics,
    /// byte-identical to [`SntIndex::get_travel_times`]).
    pub fn get_travel_times(&self, spq: &Spq) -> TravelTimes {
        let start = Instant::now();
        let index = self.inner.index.read().expect("index lock");
        let provider = CachedIndex {
            index: &index,
            cache: &self.inner.cache,
        };
        let result = provider.travel_times(spq);
        drop(index);
        self.inner.spq_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.latency.record(start.elapsed());
        result
    }

    /// Answers a trip query, fanning its independent sub-query chains out
    /// across the pool; identical results to
    /// [`QueryEngine::trip_query`].
    pub fn trip_query(&self, query: &Spq) -> TripQuery {
        let start = Instant::now();
        let result = self.trip_query_inner(query);
        self.inner.trip_queries.fetch_add(1, Ordering::Relaxed);
        self.inner.latency.record(start.elapsed());
        result
    }

    /// Answers a batch of trip queries, fanned out across the pool; the
    /// result order matches the input order.
    ///
    /// When the batch alone cannot fill the workers, each trip's
    /// independent sub-query chains additionally fan out as their own pool
    /// tasks (the pool's helper-joining keeps the nesting deadlock-free);
    /// a batch that already saturates the pool skips the nesting, since it
    /// would only add scheduling overhead.
    pub fn batch_trip_queries(&self, queries: &[Spq]) -> Vec<TripQuery> {
        let nest_chains = queries.len() < self.pool.threads();
        let jobs: Vec<_> = queries
            .iter()
            .map(|q| {
                let inner = Arc::clone(&self.inner);
                let pool = nest_chains.then(|| Arc::clone(&self.pool));
                let query = q.clone();
                move || {
                    // Per-query wall time from the moment a worker picks
                    // the trip up — the same scale `trip_query` records on.
                    let start = Instant::now();
                    let result = trip_query_on(&inner, pool.as_deref(), &query);
                    inner.latency.record(start.elapsed());
                    result
                }
            })
            .collect();
        let results = self.pool.run_all(jobs);
        self.inner
            .trip_queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        results
    }

    fn trip_query_inner(&self, query: &Spq) -> TripQuery {
        trip_query_on(&self.inner, Some(&self.pool), query)
    }

    /// Appends the new trajectories of `set` as one batch (Section 4.3.2's
    /// update path) and invalidates the result cache. Returns the number of
    /// appended trajectories. In-flight sub-query scans finish against the
    /// old index state before the write lock is granted, and a trip query
    /// whose parallel chains straddle the update re-executes against the
    /// new state — every returned `TripQuery` reflects exactly one index
    /// generation.
    ///
    /// With durable storage attached ([`QueryService::save_snapshot`] /
    /// [`QueryService::open`]) the batch is logged **write-ahead**: it is
    /// appended and fsynced to the WAL before the in-memory index changes,
    /// so a crash at any point either loses the whole batch (the caller
    /// saw the error) or replays it fully on the next `open`. Without
    /// storage attached the call is infallible.
    pub fn append_batch(&self, set: &TrajectorySet) -> Result<usize, StoreError> {
        let mut index = self.inner.index.write().expect("index lock");
        let from = index.num_trajectories();
        if set.len() <= from {
            return Ok(0);
        }
        {
            let mut persist = self.inner.persist.lock().expect("persist lock");
            if let Some(p) = persist.as_mut() {
                let mut w = ByteWriter::new();
                WalBatch::delta(set, from).persist(&mut w);
                p.wal.append(&w.into_bytes())?;
            }
        }
        let appended = index.append_batch(set);
        if appended > 0 {
            // Clear while still holding the write lock: readers that were
            // blocked behind us see the new index with an empty cache, and
            // no reader can insert a stale result concurrently (inserts
            // require the read lock).
            self.inner.cache.clear();
            self.inner.generation.fetch_add(1, Ordering::SeqCst);
        }
        Ok(appended)
    }

    /// Runs a closure against the current index state (read-locked).
    pub fn with_index<R>(&self, f: impl FnOnce(&SntIndex) -> R) -> R {
        f(&self.inner.index.read().expect("index lock"))
    }

    /// Point-in-time service statistics.
    pub fn stats(&self) -> ServiceStats {
        let (latency, throughput_qps, uptime) = self.inner.latency.summarize();
        ServiceStats {
            spq_queries: self.inner.spq_queries.load(Ordering::Relaxed),
            trip_queries: self.inner.trip_queries.load(Ordering::Relaxed),
            latency,
            throughput_qps,
            cache: self.inner.cache.counters(),
            generation: self.inner.generation.load(Ordering::SeqCst),
            uptime,
        }
    }

    /// Clears the latency log and restarts the throughput clock (the
    /// cache and its counters are left untouched).
    pub fn reset_stats(&self) {
        self.inner.latency.reset();
    }
}

/// Executes one trip query against the shared state. With a pool and ≥ 2
/// independent chains, the chains run as parallel pool tasks (each takes
/// its own read lock); otherwise the sequential engine loop runs inline —
/// both through the cache, both result-identical to the plain engine.
fn trip_query_on(inner: &Arc<Inner>, pool: Option<&ThreadPool>, query: &Spq) -> TripQuery {
    let index = inner.index.read().expect("index lock");
    let engine = QueryEngine::new(&index, &inner.network, inner.engine_config.clone());
    let provider = CachedIndex {
        index: &index,
        cache: &inner.cache,
    };
    if !engine.chains_are_independent(query) {
        return engine.trip_query_via(&provider, query);
    }
    let chains = engine.initial_subqueries(query);
    match pool {
        Some(pool) if chains.len() > 1 && pool.threads() > 1 => {
            // Re-acquire per task: pool jobs must own their state. Chain
            // jobs may therefore interleave with an `append_batch`; the
            // generation check below detects that and redoes the trip under
            // one continuous read lock, so a returned TripQuery never mixes
            // two index generations.
            let generation_before = inner.generation.load(Ordering::SeqCst);
            drop(index);
            let jobs: Vec<_> = chains
                .into_iter()
                .map(|sub| {
                    let inner = Arc::clone(inner);
                    move || {
                        let index = inner.index.read().expect("index lock");
                        let engine =
                            QueryEngine::new(&index, &inner.network, inner.engine_config.clone());
                        let provider = CachedIndex {
                            index: &index,
                            cache: &inner.cache,
                        };
                        engine.run_chain_via(&provider, sub)
                    }
                })
                .collect();
            let outcomes = pool.run_all(jobs);
            let index = inner.index.read().expect("index lock");
            let engine = QueryEngine::new(&index, &inner.network, inner.engine_config.clone());
            // Writers bump the generation under the write lock, so holding
            // the read lock here makes the check race-free: if it passes,
            // every chain above saw this exact index state.
            if inner.generation.load(Ordering::SeqCst) == generation_before {
                engine.assemble(outcomes)
            } else {
                let provider = CachedIndex {
                    index: &index,
                    cache: &inner.cache,
                };
                run_chains_inline(&engine, &provider, engine.initial_subqueries(query))
            }
        }
        _ => run_chains_inline(&engine, &provider, chains),
    }
}

/// Runs a trip's independent chains sequentially on the calling thread
/// (shared by the no-pool path and the update-race retry path).
fn run_chains_inline(
    engine: &QueryEngine<'_>,
    provider: &CachedIndex<'_>,
    chains: Vec<Spq>,
) -> TripQuery {
    engine.assemble(
        chains
            .into_iter()
            .map(|sub| engine.run_chain_via(provider, sub))
            .collect(),
    )
}

// The whole point of the service is cross-thread sharing; keep that a
// compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
    assert_send_sync::<ServiceConfig>();
    assert_send_sync::<ServiceStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use tthr_core::{SntConfig, TimeInterval};
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_E};
    use tthr_network::Path;
    use tthr_trajectory::examples::example_trajectories;

    fn service(threads: usize) -> QueryService {
        let network = example_network();
        let index = SntIndex::build(&network, &example_trajectories(), SntConfig::default());
        QueryService::new(
            index,
            Arc::new(network),
            ServiceConfig {
                num_threads: threads,
                ..ServiceConfig::default()
            },
        )
    }

    fn abe() -> Spq {
        Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        )
        .with_beta(2)
    }

    #[test]
    fn single_spq_matches_paper_example_and_caches() {
        let s = service(2);
        assert_eq!(s.get_travel_times(&abe()).sorted(), vec![10.0, 11.0]);
        assert_eq!(s.get_travel_times(&abe()).sorted(), vec![10.0, 11.0]);
        let stats = s.stats();
        assert_eq!(stats.spq_queries, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.latency.count, 2);
    }

    #[test]
    fn trip_query_matches_sequential_engine() {
        let s = service(4);
        let result = s.trip_query(&abe());
        s.with_index(|index| {
            let network = example_network();
            let engine = QueryEngine::new(index, &network, s.engine_config().clone());
            let expected = engine.trip_query(&abe());
            assert_eq!(result.predicted_duration(), expected.predicted_duration());
            assert_eq!(result.stats, expected.stats);
        });
    }

    #[test]
    fn batch_preserves_order() {
        let s = service(4);
        let queries = vec![abe(); 12];
        let results = s.batch_trip_queries(&queries);
        assert_eq!(results.len(), 12);
        for r in &results {
            assert_eq!(r.predicted_duration(), results[0].predicted_duration());
        }
        assert_eq!(s.stats().trip_queries, 12);
    }

    #[test]
    fn append_invalidates_cache_and_bumps_generation() {
        let s = service(2);
        let _ = s.get_travel_times(&abe());
        assert_eq!(s.stats().cache.entries, 1);

        // Appending the same set is a no-op: no invalidation.
        assert_eq!(s.append_batch(&example_trajectories()).unwrap(), 0);
        assert_eq!(s.stats().generation, 0);
        assert_eq!(s.stats().cache.entries, 1);

        // A genuinely new trajectory invalidates.
        let mut grown = example_trajectories();
        grown
            .push(
                tthr_trajectory::UserId(9),
                vec![
                    tthr_trajectory::TrajEntry::new(EDGE_A, 3, 3.0),
                    tthr_trajectory::TrajEntry::new(EDGE_B, 6, 3.0),
                    tthr_trajectory::TrajEntry::new(EDGE_E, 9, 4.0),
                ],
            )
            .unwrap();
        assert_eq!(s.append_batch(&grown).unwrap(), 1);
        let stats = s.stats();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.cache.entries, 0);
        assert_eq!(stats.cache.invalidations, 1);
        // The fresh answer includes the new traversal.
        assert_eq!(s.get_travel_times(&abe()).len(), 2, "β caps at 2");
        let uncapped = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        );
        assert_eq!(
            s.get_travel_times(&uncapped).sorted(),
            vec![10.0, 10.0, 11.0]
        );
    }

    #[test]
    fn zero_thread_config_uses_available_parallelism() {
        let s = service(0);
        assert!(s.num_threads() >= 1);
        let _ = s.trip_query(&abe());
    }
}
