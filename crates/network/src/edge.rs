//! Per-edge attributes: the function `F : E → Cat × Z × SL × L` of the paper.

use crate::types::{Category, Zone};

/// Attributes of a directed road segment.
///
/// `F(e) = (c, z, sl, l)` — category, zone, speed limit in km/h, and length in
/// meters (paper, Section 2.2, Table 1). A speed limit of `None` models OSM
/// segments without a tagged limit; [`crate::RoadNetwork`] falls back to the
/// median of the known limits of the same category when estimating traversal
/// times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeAttrs {
    /// Road category (`F(e).c`).
    pub category: Category,
    /// Zone type (`F(e).z`).
    pub zone: Zone,
    /// Speed limit in kilometers per hour (`F(e).sl`), if known.
    pub speed_limit_kmh: Option<f64>,
    /// Segment length in meters (`F(e).l`).
    pub length_m: f64,
}

impl EdgeAttrs {
    /// Creates attributes with a known speed limit.
    pub fn new(category: Category, zone: Zone, speed_limit_kmh: f64, length_m: f64) -> Self {
        debug_assert!(speed_limit_kmh > 0.0, "speed limit must be positive");
        debug_assert!(length_m > 0.0, "length must be positive");
        EdgeAttrs {
            category,
            zone,
            speed_limit_kmh: Some(speed_limit_kmh),
            length_m,
        }
    }

    /// Creates attributes for a segment without a tagged speed limit.
    pub fn without_speed_limit(category: Category, zone: Zone, length_m: f64) -> Self {
        EdgeAttrs {
            category,
            zone,
            speed_limit_kmh: None,
            length_m,
        }
    }

    /// Traversal time in seconds at the given speed: `3.6 · l / v`.
    ///
    /// Returns `None` when the speed is unknown; the network-level
    /// [`crate::RoadNetwork::estimate_tt`] supplies the category-median
    /// fallback in that case.
    #[inline]
    pub fn traversal_secs_at_limit(&self) -> Option<f64> {
        self.speed_limit_kmh.map(|sl| 3.6 * self.length_m / sl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_time_matches_table_1() {
        // Table 1 of the paper: segment A, motorway, rural, 110 km/h, 900 m
        // => 29.5 s (rounded).
        let a = EdgeAttrs::new(Category::Motorway, Zone::Rural, 110.0, 900.0);
        let tt = a.traversal_secs_at_limit().unwrap();
        assert!((tt - 29.4545).abs() < 1e-3, "got {tt}");

        // Segment F: primary, rural, 80 km/h, 800 m => 36.0 s.
        let f = EdgeAttrs::new(Category::Primary, Zone::Rural, 80.0, 800.0);
        assert!((f.traversal_secs_at_limit().unwrap() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_speed_limit_yields_none() {
        let e = EdgeAttrs::without_speed_limit(Category::Residential, Zone::City, 50.0);
        assert_eq!(e.traversal_secs_at_limit(), None);
    }
}
