//! A worker thread pool with helper-joined fan-out.
//!
//! The pool is deliberately simple — a shared injector queue drained by a
//! fixed set of workers — but its join primitive is not: [`ThreadPool::run_all`]
//! keeps the *submitting* thread working on its own task set while it
//! waits. That makes nested fan-out safe: a batch job running on a worker
//! may fan its trip's sub-query chains out through the same pool without
//! risking deadlock, because every joiner can always drain its own tasks
//! even when all workers are busy with other joiners' work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering from poisoning: a panicked job must not take
/// the whole service down with secondary lock panics.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Fixed-size worker thread pool.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tthr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a fire-and-forget job.
    pub fn execute(&self, job: Job) {
        lock(&self.shared.queue).push_back(job);
        self.shared.available.notify_one();
    }

    /// Runs `jobs` to completion across the pool *and* the calling thread,
    /// returning the results in input order.
    ///
    /// The caller never blocks while its own jobs are runnable: it drains
    /// the task set alongside the workers and only sleeps once every job
    /// has been claimed. Panicking jobs leave `None` holes that surface as
    /// a panic here, on the submitting thread.
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        match n {
            0 => return Vec::new(),
            1 => {
                let mut jobs = jobs;
                return vec![jobs.pop().expect("one job")()];
            }
            _ => {}
        }
        let group = Arc::new(Group {
            tasks: Mutex::new(jobs.into_iter().enumerate().collect()),
            results: Mutex::new((0..n).map(|_| None).collect()),
            progress: Mutex::new(Progress { remaining: n }),
            done: Condvar::new(),
        });
        // One wake-up ticket per job beyond the one the caller runs itself;
        // a ticket that finds the task set already drained is a no-op.
        for _ in 0..n - 1 {
            let group = Arc::clone(&group);
            self.execute(Box::new(move || {
                group.run_one();
            }));
        }
        while group.run_one() {}
        // Every task is claimed now; any still running belong to workers.
        let mut progress = lock(&group.progress);
        while progress.remaining > 0 {
            progress = group.done.wait(progress).unwrap_or_else(|e| e.into_inner());
        }
        drop(progress);
        let mut slots = lock(&group.results);
        slots
            .iter_mut()
            .enumerate()
            .map(|(i, s)| s.take().unwrap_or_else(|| panic!("pool job {i} panicked")))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            // Contain panics to the job: the worker survives, and for
            // `run_all` tasks the drop guard in `Group::run_one` has already
            // released the joiner, which surfaces the panic as a missing
            // result on the submitting thread.
            Some(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

struct Progress {
    remaining: usize,
}

struct Group<T, F> {
    tasks: Mutex<VecDeque<(usize, F)>>,
    results: Mutex<Vec<Option<T>>>,
    progress: Mutex<Progress>,
    done: Condvar,
}

impl<T, F: FnOnce() -> T> Group<T, F> {
    /// Claims and runs one task; `false` when the set is drained. The
    /// remaining-counter decrement is a drop guard so a panicking task
    /// still releases its joiner.
    fn run_one(&self) -> bool {
        let Some((i, task)) = lock(&self.tasks).pop_front() else {
            return false;
        };
        struct Complete<'a> {
            progress: &'a Mutex<Progress>,
            done: &'a Condvar,
        }
        impl Drop for Complete<'_> {
            fn drop(&mut self) {
                let mut progress = lock(self.progress);
                progress.remaining -= 1;
                if progress.remaining == 0 {
                    self.done.notify_all();
                }
            }
        }
        let _complete = Complete {
            progress: &self.progress,
            done: &self.done,
        };
        let out = task();
        lock(&self.results)[i] = Some(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_all_returns_in_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        assert_eq!(
            pool.run_all(jobs),
            (0..64).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_fan_out_does_not_deadlock() {
        // More outer jobs than workers, each fanning out inner jobs on the
        // same single-worker pool: only helper-joining can finish this.
        let pool = Arc::new(ThreadPool::new(1));
        let outer: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    pool.run_all(inner).into_iter().sum::<usize>()
                }
            })
            .collect();
        let sums = pool.run_all(outer);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, i * 40 + 6);
        }
    }

    #[test]
    fn empty_and_single_job_sets() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.run_all(Vec::<fn() -> u32>::new()), Vec::<u32>::new());
        assert_eq!(pool.run_all(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = ThreadPool::new(2);
        let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let jobs: Vec<_> = (0..8)
                .map(|i| {
                    move || {
                        if i == 3 {
                            panic!("job failure");
                        }
                        i
                    }
                })
                .collect();
            pool.run_all(jobs)
        }));
        assert!(batch.is_err(), "the panic must surface to the submitter");
        // Workers survive the panic: the pool still completes fresh work.
        let jobs: Vec<_> = (0..16usize).map(|i| move || i + 1).collect();
        assert_eq!(pool.run_all(jobs), (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn execute_runs_detached_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 32 {
            assert!(std::time::Instant::now() < deadline, "jobs must drain");
            std::thread::yield_now();
        }
    }
}
