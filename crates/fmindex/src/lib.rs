//! Succinct full-text index substrate for the SNT-index.
//!
//! The SNT-index represents the whole trajectory set as one string `T` over
//! the alphabet `Σ = E ∪ {$}` and answers *which trajectories traverse path
//! `P`* by substring matching: the suffix array rank range (ISA range) of
//! `P` is computed by FM-index backward search in `O(|P| log |Σ|)` time,
//! independent of `|T|` (paper, Section 4.1.1).
//!
//! Everything is implemented from scratch:
//!
//! * [`suffix`] — linear-time SA-IS suffix array construction for integer
//!   alphabets, plus the inverse suffix array.
//! * [`bwt`] — the Burrows–Wheeler transform and the `C` symbol-count array.
//! * [`RankBitVec`] — a plain bit vector with constant-time `rank`.
//! * [`WaveletMatrix`] — the balanced wavelet structure (rank in
//!   `O(log σ)`).
//! * [`HuffmanWaveletTree`] — the Huffman-shaped wavelet tree the paper's
//!   implementation uses (sdsl-lite `wt_huff`), with expected rank cost
//!   proportional to the symbol entropy.
//! * [`FmIndex`] — `C` + BWT-in-wavelet-structure with the backward search
//!   of the paper's Procedure 2 (`getISARange`).
//!
//! Trajectory-string construction (mapping edges to symbols) lives one layer
//! up, in `tthr-core`, keeping this crate a pure sequence-index library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
pub mod bwt;
mod fm;
mod huffman;
pub mod suffix;
mod wavelet;

pub use bitvec::RankBitVec;
pub use fm::{FmIndex, IsaRange, SearchCost, SearchCursor, WaveletBuild};
pub use huffman::HuffmanWaveletTree;
pub use wavelet::WaveletMatrix;

/// Common interface of the wavelet structures: positional symbol access and
/// partial rank over an integer alphabet.
pub trait SymbolRank {
    /// Number of symbols in the underlying sequence.
    fn len(&self) -> usize;

    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The symbol at position `i`.
    fn access(&self, i: usize) -> u32;

    /// `rank_c(seq, pos)`: occurrences of `c` in `seq[0, pos)`.
    fn rank(&self, c: u32, pos: usize) -> usize;

    /// `(rank(c, i), rank(c, j))` for `i ≤ j` — the paired-boundary rank of
    /// one backward-search step, which queries the *same* symbol at both
    /// ends of the current range. Implementations override this to compute
    /// both boundaries in a single descent (sharing per-level node lookups
    /// and, late in a search, the same rank superblocks); the default is
    /// two independent ranks.
    fn rank2(&self, c: u32, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i <= j);
        (self.rank(c, i), self.rank(c, j))
    }

    /// Number of wavelet nodes a rank of symbol `c` descends through — the
    /// per-operation cost attribution query tracing reports (rank-op
    /// counts are the currency for comparing trajectory-index hot paths).
    /// The balanced matrix answers its level count, the Huffman tree the
    /// symbol's code length; the default (for flat structures) is 1.
    fn descent_depth(&self, c: u32) -> u32 {
        let _ = c;
        1
    }

    /// Approximate heap size in bytes (for the Figure 10 memory accounting).
    fn size_bytes(&self) -> usize;
}
