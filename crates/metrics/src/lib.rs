//! The paper's evaluation metrics (Section 5.3).
//!
//! * [`smape`] — symmetric mean absolute percentage error of the summed
//!   sub-query means against the true trip duration.
//! * [`weighted_error`] — per-sub-query error weighted by the sub-path's
//!   share of the trip length.
//! * [`log_likelihood`] — average log-likelihood of the true durations under
//!   the smoothed result-histogram densities.
//! * [`q_error`] — order-of-magnitude factor between estimated and actual
//!   cardinalities (Moerkotte et al.), with the max(·,1) clamping of
//!   Stefanoni et al. for empty sets.
//! * [`LogHistogram`] — an HDR-style log-bucketed aggregating histogram
//!   for service latency summaries: bounded memory regardless of sample
//!   count, ≤ 1.6 % relative quantile error.
//! * [`registry`] — a dependency-free labeled metrics registry
//!   ([`MetricsRegistry`]) with Prometheus text exposition and a strict
//!   format validator, built on [`LogHistogram`] for histogram series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;

pub use registry::{
    validate_exposition, Counter, Gauge, HistogramHandle, MetricKind, MetricsRegistry,
};

use tthr_histogram::{Histogram, SmoothedPdf};

/// Sub-bucket precision bits of [`LogHistogram`]: 2⁶ = 64 sub-buckets per
/// octave bound the relative quantile error by 1/64 ≈ 1.6 %.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the whole `u64` range: the exact region `[0, 64)`
/// plus 64 sub-buckets for each of the 58 octaves `2⁶..=2⁶³` above it
/// (`bucket_of(u64::MAX)` lands in the last one).
const NUM_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// An HDR-style aggregating histogram over `u64` values (e.g. latency in
/// nanoseconds): fixed-size log-bucketed counts, so memory stays bounded
/// for arbitrarily long-lived recorders — unlike a raw sample log.
///
/// Values below 64 are exact; larger values land in one of 64
/// logarithmically spaced sub-buckets per power of two, so any reported
/// quantile is within 1/64 ≈ 1.6 % of the true sample. `count`, `sum`
/// (hence `mean`), `min`, and `max` are tracked exactly.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (one fixed ~30 KiB bucket array).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let e = 63 - v.leading_zeros(); // floor(log2 v) ≥ SUB_BITS
        let shift = e - SUB_BITS;
        // Mantissa in [64, 128): 64 sub-buckets within the octave.
        (((shift as u64 + 1) << SUB_BITS) + ((v >> shift) - SUB)) as usize
    }

    /// Midpoint of a bucket — the value reported for quantiles landing in
    /// it.
    #[inline]
    fn bucket_mid(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB {
            return idx;
        }
        let shift = (idx >> SUB_BITS) - 1;
        let mantissa = SUB + (idx & (SUB - 1));
        let lo = mantissa << shift;
        lo + (1u64 << shift) / 2
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact sum of all recorded values. `u128`, so it cannot overflow
    /// even for `u64::MAX`-scale samples (2⁶⁴ recordings of `u64::MAX`
    /// still fit).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Nearest-rank percentile, `p ∈ [0, 100]`: the bucket midpoint of the
    /// sample at rank `⌈p/100 · n⌉` (clamped to the exact min/max so the
    /// tails never report values outside the observed range); 0 when
    /// empty. Within 1/64 ≈ 1.6 % of [`percentile`] over the raw samples.
    ///
    /// Edge contract, pinned by tests:
    ///
    /// * Values `< 64` live in exact unit buckets, so any quantile landing
    ///   there is the true sample value — in particular a histogram of
    ///   zeros reports 0 at every percentile (indistinguishable from the
    ///   empty-histogram 0 only by [`LogHistogram::count`]).
    /// * `u64::MAX`-scale values saturate gracefully: reported quantiles
    ///   are clamped into the exact observed `[min, max]` range, so the
    ///   tails never exceed [`LogHistogram::max`] and never wrap — a
    ///   histogram recorded entirely at `u64::MAX` reports exactly
    ///   `u64::MAX` at every percentile. (Samples inside the top octave
    ///   are subject to the same ≈ 1.6 % bucket error as everywhere else;
    ///   only the clamp endpoints are exact.)
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterator over the non-empty buckets as `(bucket_index, count)`
    /// pairs, in ascending value order — the raw export a cross-process
    /// aggregator (e.g. the HTTP `/stats` endpoint) ships instead of lossy
    /// pre-computed percentiles. [`LogHistogram::bucket_value`] maps an
    /// index back to its representative value.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The representative (midpoint) value of a bucket index — the value
    /// [`LogHistogram::value_at_percentile`] reports for quantiles landing
    /// in that bucket. Indexes come from
    /// [`LogHistogram::nonzero_buckets`]; out-of-range indexes saturate to
    /// the top bucket's midpoint. Bucket 0 holds exactly the value 0 (all
    /// buckets below 64 are exact unit buckets), and the top bucket's
    /// midpoint is below `u64::MAX` — reading it back never overflows.
    pub fn bucket_value(idx: usize) -> u64 {
        Self::bucket_mid(idx.min(NUM_BUCKETS - 1))
    }

    /// The **inclusive upper bound** of a bucket: the largest value that
    /// [`LogHistogram::record`] files under `idx`. Exact buckets (`idx <
    /// 64`) bound themselves; octave sub-buckets bound at
    /// `(mantissa + 1) · 2^shift − 1`, computed in `u128` because the top
    /// bucket's exclusive bound is 2⁶⁴ — the inclusive bound saturates to
    /// `u64::MAX` instead of wrapping. Out-of-range indexes also saturate
    /// to `u64::MAX`.
    ///
    /// This is the cumulative-bucket boundary Prometheus `le=` labels use:
    /// `bucket_of(bucket_bound(i)) == i` and
    /// `bucket_of(bucket_bound(i) + 1) == i + 1` for every non-top bucket.
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx >= NUM_BUCKETS {
            return u64::MAX;
        }
        let idx = idx as u64;
        if idx < SUB {
            return idx;
        }
        let shift = (idx >> SUB_BITS) - 1;
        let mantissa = SUB + (idx & (SUB - 1));
        let excl = ((mantissa as u128) + 1) << shift;
        (excl - 1).min(u64::MAX as u128) as u64
    }

    /// Merges another histogram into this one (used to aggregate per-shard
    /// or per-worker recorders).
    ///
    /// Merging an empty histogram is a strict no-op: the early return keeps
    /// the empty side's `min`/`max` sentinels (`u64::MAX`/`0`) from ever
    /// entering the `min`/`max` folds below, so the merged counts, span,
    /// and mean are exactly those of the non-empty side — in either merge
    /// order (pinned by `merging_empty_histograms_is_exact`).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Forgets all samples.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Heap footprint in bytes (constant).
    pub fn size_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.value_at_percentile(50.0))
            .field("p95", &self.value_at_percentile(95.0))
            .field("max", &self.max)
            .finish()
    }
}

/// One sMAPE term: `|pred − actual| / (½ (pred + actual))`, in percent.
///
/// `pred` is the sum of the sub-query travel-time means `Σ X̄ⱼ`; `actual`
/// is the ground-truth trip duration `a_tr`.
pub fn smape_term(pred: f64, actual: f64) -> f64 {
    let denom = 0.5 * (pred + actual);
    if denom == 0.0 {
        return 0.0;
    }
    100.0 * (pred - actual).abs() / denom
}

/// sMAPE over a query set: the mean of [`smape_term`] over
/// `(prediction, actual)` pairs (paper, Section 5.3.1).
pub fn smape(pairs: &[(f64, f64)]) -> f64 {
    mean(pairs.iter().map(|&(p, a)| smape_term(p, a)))
}

/// One weighted-error term for a single trip (paper, Section 5.3.2):
/// `Σⱼ wⱼ · |X̄ⱼ − aⱼ| / (½ (X̄ⱼ + aⱼ))` in percent, where each element of
/// `subs` is `(weight, predicted mean, actual sub-path duration)` and the
/// weights are the sub-paths' shares of the trip length.
pub fn weighted_error_term(subs: &[(f64, f64, f64)]) -> f64 {
    subs.iter()
        .map(|&(w, pred, actual)| {
            let denom = 0.5 * (pred + actual);
            if denom == 0.0 {
                0.0
            } else {
                100.0 * w * (pred - actual).abs() / denom
            }
        })
        .sum()
}

/// Weighted error over a query set: mean of [`weighted_error_term`].
pub fn weighted_error(queries: &[Vec<(f64, f64, f64)>]) -> f64 {
    mean(queries.iter().map(|q| weighted_error_term(q)))
}

/// `log L(a, H)` for one query: the log of the smoothed bucket mass of the
/// true duration under the result histogram (paper, Section 5.3.3).
pub fn log_likelihood(hist: &Histogram, actual: f64, gamma: f64, t_min: f64, t_max: f64) -> f64 {
    SmoothedPdf::new(hist, gamma, t_min, t_max).log_likelihood(actual)
}

/// The q-error of a cardinality estimate (paper, Section 5.3.4):
/// `max(β̂′/n′, n′/β̂′)` with `n′ = max(n, 1)` and `β̂′ = max(β̂, 1)`.
pub fn q_error(estimate: f64, actual: u64) -> f64 {
    let e = estimate.max(1.0);
    let n = (actual as f64).max(1.0);
    (e / n).max(n / e)
}

/// Arithmetic mean of an iterator; 0 for an empty input.
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Nearest-rank percentile of a sample, `p ∈ [0, 100]`; 0 for an empty
/// sample. Sorts a copy with [`f64::total_cmp`], so NaN inputs cannot
/// panic (they sort last).
///
/// Used by the service layer's latency summaries (p50/p95/p99).
pub fn percentile<I: IntoIterator<Item = f64>>(values: I, p: f64) -> f64 {
    let mut v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    percentile_of_sorted(&v, p)
}

/// [`percentile`] over an already ascending-sorted sample (avoids re-sorting
/// when several percentiles are read from one sample).
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: merging an empty histogram must be an exact no-op in
    /// both orders — counts, min/max (no sentinel leakage), sum, and mean
    /// all equal the non-empty side's exact values.
    #[test]
    fn merging_empty_histograms_is_exact() {
        let mut filled = LogHistogram::new();
        for v in [3u64, 70, 70, 9000] {
            filled.record(v);
        }

        // Non-empty ← empty.
        let mut a = filled.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 9000);
        assert_eq!(a.sum(), 3 + 70 + 70 + 9000);
        assert_eq!(a.mean(), (3.0 + 70.0 + 70.0 + 9000.0) / 4.0);

        // Empty ← non-empty.
        let mut b = LogHistogram::new();
        b.merge(&filled);
        assert_eq!(b.count(), 4);
        assert_eq!(b.min(), 3);
        assert_eq!(b.max(), 9000);
        assert_eq!(b.sum(), a.sum());
        assert_eq!(b.mean(), a.mean());
        assert_eq!(b.nonzero_buckets().count(), a.nonzero_buckets().count());

        // Empty ← empty stays empty (accessors keep their empty contract,
        // the internal sentinels never surface).
        let mut c = LogHistogram::new();
        c.merge(&LogHistogram::new());
        assert!(c.is_empty());
        assert_eq!(c.count(), 0);
        assert_eq!(c.min(), 0);
        assert_eq!(c.max(), 0);
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.nonzero_buckets().count(), 0);

        // A later merge into the previously-empty-merged histogram still
        // lands exactly (the no-op left no residue behind).
        c.merge(&filled);
        assert_eq!(c.count(), 4);
        assert_eq!(c.min(), 3);
        assert_eq!(c.max(), 9000);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(v.clone(), 50.0), 50.0);
        assert_eq!(percentile(v.clone(), 95.0), 95.0);
        assert_eq!(percentile(v.clone(), 99.0), 99.0);
        assert_eq!(percentile(v.clone(), 100.0), 100.0);
        assert_eq!(percentile(v, 0.0), 1.0);
        // Order-independent, small samples, empties.
        assert_eq!(percentile([3.0, 1.0, 2.0], 50.0), 2.0);
        assert_eq!(percentile([42.0], 99.0), 42.0);
        assert_eq!(percentile(std::iter::empty(), 50.0), 0.0);
    }

    #[test]
    fn percentile_of_sorted_matches() {
        let v = [1.0, 2.0, 3.0, 4.0];
        for p in [0.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(percentile_of_sorted(&v, p), percentile(v, p));
        }
    }

    #[test]
    fn smape_basics() {
        assert_eq!(smape_term(100.0, 100.0), 0.0);
        // |110 − 90| / (½·200) = 20 %.
        assert!((smape_term(110.0, 90.0) - 20.0).abs() < 1e-12);
        // Symmetric in its arguments.
        assert_eq!(smape_term(110.0, 90.0), smape_term(90.0, 110.0));
        assert_eq!(smape_term(0.0, 0.0), 0.0);
        // Aggregation is the arithmetic mean of the terms.
        let s = smape(&[(110.0, 90.0), (100.0, 100.0)]);
        assert!((s - 10.0).abs() < 1e-12);
    }

    #[test]
    fn smape_bounded_by_200() {
        assert!((smape_term(1000.0, 0.0) - 200.0).abs() < 1e-12);
        assert!(smape_term(1.0, 1e9) <= 200.0);
    }

    #[test]
    fn weighted_error_weights_sum() {
        // Two sub-paths, weights 0.75/0.25; only the first has error.
        let term = weighted_error_term(&[(0.75, 110.0, 90.0), (0.25, 50.0, 50.0)]);
        assert!((term - 0.75 * 20.0).abs() < 1e-12);
        // Perfect prediction ⇒ zero.
        assert_eq!(weighted_error_term(&[(1.0, 42.0, 42.0)]), 0.0);
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(100.0, 10), 10.0);
        assert_eq!(q_error(1.0, 10), 10.0);
        // Clamping: empty sets don't divide by zero.
        assert_eq!(q_error(0.0, 0), 1.0);
        assert_eq!(q_error(0.0, 5), 5.0);
        assert_eq!(q_error(5.0, 0), 5.0);
        // q-error is always ≥ 1.
        assert!(q_error(3.0, 4) >= 1.0);
    }

    #[test]
    fn log_likelihood_prefers_correct_histograms() {
        let good = Histogram::from_values(&[100.0, 102.0, 98.0], 10.0);
        let bad = Histogram::from_values(&[500.0, 505.0], 10.0);
        let a = log_likelihood(&good, 101.0, 0.99, 0.0, 3600.0);
        let b = log_likelihood(&bad, 101.0, 0.99, 0.0, 3600.0);
        assert!(a > b);
        assert!(b.is_finite(), "smoothing keeps the likelihood finite");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn log_histogram_small_values_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 63, 5, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.value_at_percentile(50.0), 5, "values < 64 are exact");
        assert!((h.mean() - 79.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantile_error_bounded() {
        let mut h = LogHistogram::new();
        let samples: Vec<f64> = (1..=10_000).map(|i| (i * i) as f64).collect();
        for &s in &samples {
            h.record(s as u64);
        }
        for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = percentile(samples.iter().copied(), p);
            let approx = h.value_at_percentile(p) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(
                err <= 1.0 / 64.0 + 1e-9,
                "p{p}: {approx} vs {exact} ({err})"
            );
        }
        // Tails are exact.
        assert_eq!(h.value_at_percentile(100.0), 10_000 * 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn log_histogram_covers_the_whole_u64_range() {
        // The top octave must not index out of bounds — the LatencyLog
        // saturation fallback records u64::MAX.
        let mut h = LogHistogram::new();
        for v in [1u64 << 62, (1 << 63) - 1, 1 << 63, u64::MAX - 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), u64::MAX);
        let p99 = h.value_at_percentile(99.9);
        assert!(p99 >= (u64::MAX / 64) * 63, "top-octave quantile: {p99}");
    }

    /// The raw-bucket export round-trips: replaying the exported counts at
    /// their representative values reproduces every quantile and the count.
    #[test]
    fn log_histogram_bucket_export_roundtrip() {
        let mut h = LogHistogram::new();
        for i in 1..=5000u64 {
            h.record(i * 17);
        }
        let mut replayed = LogHistogram::new();
        let mut exported = 0;
        for (idx, count) in h.nonzero_buckets() {
            for _ in 0..count {
                replayed.record(LogHistogram::bucket_value(idx));
            }
            exported += count;
        }
        assert_eq!(exported, h.count());
        assert_eq!(replayed.count(), h.count());
        for p in [1.0, 50.0, 95.0, 99.9] {
            let a = h.value_at_percentile(p) as f64;
            let b = replayed.value_at_percentile(p) as f64;
            // Midpoints re-bucket into the same bucket, so quantiles agree
            // to within one sub-bucket.
            assert!((a - b).abs() <= a / 64.0 + 1.0, "p{p}: {a} vs {b}");
        }
        assert!(LogHistogram::new().nonzero_buckets().next().is_none());
        // Saturating index mapping cannot panic.
        let _ = LogHistogram::bucket_value(usize::MAX);
    }

    #[test]
    fn log_histogram_bucket_bounds_partition_the_u64_range() {
        // Every bucket's inclusive bound maps back into the bucket, the
        // next value up maps into the next bucket, and bounds are strictly
        // increasing — the cumulative `le=` boundaries tile u64 exactly.
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let bound = LogHistogram::bucket_bound(i);
            assert_eq!(LogHistogram::bucket_of(bound), i, "bound of bucket {i}");
            if let Some(p) = prev {
                assert!(bound > p, "bucket {i}: {bound} ≤ {p}");
            }
            if i + 1 < NUM_BUCKETS {
                assert_eq!(
                    LogHistogram::bucket_of(bound + 1),
                    i + 1,
                    "value above bucket {i}'s bound"
                );
            }
            // The midpoint never exceeds the bound (no overflow artifacts).
            assert!(LogHistogram::bucket_value(i) <= bound, "bucket {i}");
            prev = Some(bound);
        }
        // The top bucket saturates at u64::MAX instead of wrapping to 0.
        assert_eq!(LogHistogram::bucket_bound(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(LogHistogram::bucket_bound(usize::MAX), u64::MAX);
        // Bucket 0 is the exact value 0.
        assert_eq!(LogHistogram::bucket_bound(0), 0);
        assert_eq!(LogHistogram::bucket_value(0), 0);
    }

    #[test]
    fn log_histogram_percentile_contract_at_bucket_zero() {
        // A histogram of zeros reports 0 everywhere — bucket 0 is exact.
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.value_at_percentile(p), 0);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn log_histogram_percentile_contract_at_saturation() {
        // A histogram recorded entirely at u64::MAX: the clamp range is a
        // single point, so every percentile is exactly u64::MAX.
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.value_at_percentile(p), u64::MAX);
        }
        assert_eq!(h.sum(), 2 * (u64::MAX as u128));
        // Mixed top-octave values: quantiles stay inside the exact
        // observed [min, max] — no wrap, nothing above max.
        h.record(u64::MAX - 7);
        h.record(100);
        for p in [25.0, 50.0, 99.0, 100.0] {
            let v = h.value_at_percentile(p);
            assert!(v >= 100 && v <= h.max(), "p{p}: {v}");
        }
        assert_eq!(h.value_at_percentile(0.0), 100, "head clamps to min");
        assert_eq!(h.max(), u64::MAX, "exact max is tracked separately");
    }

    #[test]
    fn log_histogram_merge_clear_empty() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        assert_eq!(a.value_at_percentile(50.0), 0);
        a.record(1_000);
        b.record(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1_000);
        assert_eq!(a.max(), 2_000_000);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.mean(), 0.0);
        assert!(a.size_bytes() > 0 && a.size_bytes() < 64 * 1024, "bounded");
    }

    proptest::proptest! {
        #[test]
        fn q_error_at_least_one(e in 0.0f64..1e6, n in 0u64..1_000_000) {
            proptest::prop_assert!(q_error(e, n) >= 1.0);
        }

        /// Every quantile of the log histogram is within 1/64 relative
        /// error of the exact nearest-rank percentile, across magnitudes.
        #[test]
        fn log_histogram_matches_exact_percentiles(
            samples in proptest::collection::vec(1u64..1_000_000_000_000, 1..400),
            ps in proptest::collection::vec(0.0f64..100.0, 1..8),
        ) {
            let mut h = LogHistogram::new();
            for &s in &samples { h.record(s); }
            let floats: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
            for p in ps {
                let exact = percentile(floats.iter().copied(), p);
                let approx = h.value_at_percentile(p) as f64;
                proptest::prop_assert!(
                    (approx - exact).abs() <= exact / 64.0 + 1.0,
                    "p{}: {} vs {}", p, approx, exact
                );
            }
        }

        #[test]
        fn smape_symmetric_and_bounded(a in 0.0f64..1e6, b in 0.0f64..1e6) {
            let s = smape_term(a, b);
            proptest::prop_assert!((0.0..=200.0 + 1e-9).contains(&s));
            proptest::prop_assert!((s - smape_term(b, a)).abs() < 1e-9);
        }
    }
}
