//! Service-level observability: the labeled metrics registry, per-endpoint
//! latency histograms, per-query trace aggregation, and the slow-query
//! ring.
//!
//! Everything here feeds two consumers:
//!
//! * [`ServiceStats`] — the structured snapshot the `/stats` endpoint and
//!   library callers read (unchanged wire shape across the registry
//!   refactor).
//! * [`MetricsRegistry`] — the Prometheus-rendered families behind
//!   `QueryService::render_metrics` (the `/metrics` endpoint). The latency
//!   histograms live directly in the registry ([`LatencyLog`] holds
//!   registry handles), so both consumers read the *same* series.

use crate::cache::CacheCounters;
use std::collections::VecDeque;
use std::ops::Index;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tthr_core::QueryTrace;
use tthr_metrics::{Counter, Gauge, HistogramHandle, LogHistogram, MetricsRegistry};

/// The service entry points whose latency is recorded separately.
///
/// Every [`ServiceStats`] snapshot carries one [`LatencySummary`] per
/// endpoint ([`ServiceStats::endpoints`]) plus the merged overall summary
/// ([`ServiceStats::latency`]); the raw per-endpoint histograms are
/// exported by
/// [`QueryService::endpoint_histogram`](crate::QueryService::endpoint_histogram).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Single SPQs ([`QueryService::get_travel_times`](crate::QueryService::get_travel_times)).
    Spq,
    /// Trip queries ([`QueryService::trip_query`](crate::QueryService::trip_query)).
    Trip,
    /// Per-trip latencies inside
    /// [`QueryService::batch_trip_queries`](crate::QueryService::batch_trip_queries).
    Batch,
    /// Update batches ([`QueryService::append_batch`](crate::QueryService::append_batch)
    /// and [`QueryService::append_new`](crate::QueryService::append_new)).
    Append,
}

impl Endpoint {
    /// Every endpoint, in [`PerEndpoint`] index order.
    pub const ALL: [Endpoint; 4] = [
        Endpoint::Spq,
        Endpoint::Trip,
        Endpoint::Batch,
        Endpoint::Append,
    ];

    /// Stable lower-case name (wire formats, logs, and the `endpoint`
    /// metric label key on it).
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Spq => "spq",
            Endpoint::Trip => "trip",
            Endpoint::Batch => "batch",
            Endpoint::Append => "append",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Endpoint::Spq => 0,
            Endpoint::Trip => 1,
            Endpoint::Batch => 2,
            Endpoint::Append => 3,
        }
    }
}

/// A value per [`Endpoint`], indexable by it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerEndpoint<T>(pub [T; 4]);

impl<T> Index<Endpoint> for PerEndpoint<T> {
    type Output = T;
    fn index(&self, e: Endpoint) -> &T {
        &self.0[e.index()]
    }
}

impl<T> PerEndpoint<T> {
    /// Iterates `(endpoint, value)` pairs in [`Endpoint::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Endpoint, &T)> {
        Endpoint::ALL.iter().copied().zip(self.0.iter())
    }
}

/// Latency distribution summary over recorded queries, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded queries.
    pub count: usize,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Arithmetic mean latency.
    pub mean_ms: f64,
    /// Worst recorded latency.
    pub max_ms: f64,
}

impl LatencySummary {
    fn of(hist: &LogHistogram) -> LatencySummary {
        let ns_to_ms = |ns: u64| ns as f64 / 1e6;
        LatencySummary {
            count: hist.count() as usize,
            p50_ms: ns_to_ms(hist.value_at_percentile(50.0)),
            p95_ms: ns_to_ms(hist.value_at_percentile(95.0)),
            p99_ms: ns_to_ms(hist.value_at_percentile(99.0)),
            mean_ms: hist.mean() / 1e6,
            max_ms: ns_to_ms(hist.max()),
        }
    }
}

/// A point-in-time snapshot of the service's behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ServiceStats {
    /// Single-SPQ requests served.
    pub spq_queries: u64,
    /// Trip queries served (each spans many SPQ dispatches).
    pub trip_queries: u64,
    /// Latency summary over all served requests (every endpoint merged).
    pub latency: LatencySummary,
    /// Latency summary per service endpoint.
    pub endpoints: PerEndpoint<LatencySummary>,
    /// Requests per second since service start (or the last reset).
    pub throughput_qps: f64,
    /// Result-cache counters.
    pub cache: CacheCounters,
    /// Index generation: number of applied update batches.
    pub generation: u64,
    /// Time since service start (or the last reset).
    pub uptime: Duration,
}

/// Striped per-endpoint latency recorder feeding [`ServiceStats`].
///
/// The histograms are **registry series** — one
/// `tthr_request_duration_ns{endpoint=…}` [`HistogramHandle`] per
/// [`Endpoint`] — so the Prometheus exposition and the `/stats` summaries
/// are views of the same samples. Samples aggregate into HDR-style
/// log-bucketed [`LogHistogram`]s (nanosecond resolution): memory stays
/// constant no matter how long the service lives. Count, mean, and max are
/// exact; reported percentiles are within 1/64 ≈ 1.6 % of the true sample.
///
/// Recording takes one short stripe lock inside the handle (threads spread
/// round-robin over 8 stripes); a snapshot merges the stripes one at a
/// time, so `export()` is cheap even under heavy recording
/// (regression-tested below with 8 recording threads).
pub(crate) struct LatencyLog {
    handles: [HistogramHandle; 4],
    started: Mutex<Instant>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl LatencyLog {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        LatencyLog {
            handles: Endpoint::ALL.map(|e| {
                registry.histogram(
                    "tthr_request_duration_ns",
                    "Wall-clock service request latency in nanoseconds",
                    &[("endpoint", e.name())],
                )
            }),
            started: Mutex::new(Instant::now()),
        }
    }

    pub(crate) fn record(&self, endpoint: Endpoint, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.handles[endpoint.index()].record(ns);
    }

    /// The merged histogram of one endpoint (raw-bucket export for
    /// cross-process aggregation).
    pub(crate) fn merged(&self, endpoint: Endpoint) -> LogHistogram {
        self.handles[endpoint.index()].merged()
    }

    /// The merged per-endpoint histograms, their summaries, the overall
    /// summary, throughput, and uptime — one stripe pass, so a caller
    /// that wants both the summaries and the raw buckets (the HTTP
    /// `/stats` endpoint) does not merge every stripe twice.
    #[allow(clippy::type_complexity)]
    pub(crate) fn export(
        &self,
    ) -> (
        PerEndpoint<LogHistogram>,
        PerEndpoint<LatencySummary>,
        LatencySummary,
        f64,
        Duration,
    ) {
        let uptime = lock(&self.started).elapsed();
        let merged = PerEndpoint(Endpoint::ALL.map(|e| self.merged(e)));
        let mut overall = LogHistogram::new();
        let mut per = PerEndpoint::<LatencySummary>::default();
        for e in Endpoint::ALL {
            per.0[e.index()] = LatencySummary::of(&merged[e]);
            overall.merge(&merged[e]);
        }
        let summary = LatencySummary::of(&overall);
        let qps = if uptime.as_secs_f64() > 0.0 {
            summary.count as f64 / uptime.as_secs_f64()
        } else {
            0.0
        };
        (merged, per, summary, qps, uptime)
    }

    /// Forgets all samples and restarts the throughput clock.
    pub(crate) fn reset(&self) {
        for handle in &self.handles {
            handle.clear();
        }
        *lock(&self.started) = Instant::now();
    }
}

// ---------------------------------------------------------------------------
// Registry series owned by the service
// ---------------------------------------------------------------------------

/// Every registry series the service maintains, pre-registered so the hot
/// path is a relaxed atomic add per counter. Cache, generation, and
/// per-shard series are authoritatively maintained elsewhere and
/// **mirrored** into the registry at scrape time
/// (`QueryService::render_metrics`).
pub(crate) struct ServiceMetrics {
    pub(crate) registry: MetricsRegistry,
    /// `tthr_requests_total{endpoint}` — the request counters
    /// [`ServiceStats::spq_queries`]/[`ServiceStats::trip_queries`]
    /// report from.
    pub(crate) requests: PerEndpoint<Counter>,
    // Query-trace aggregates (summed from each query's `QueryTrace`).
    pub(crate) rank_ops: Counter,
    pub(crate) wavelet_nodes: Counter,
    pub(crate) scratch_hits: Counter,
    pub(crate) scratch_misses: Counter,
    pub(crate) partitions_searched: Counter,
    pub(crate) index_queries: Counter,
    pub(crate) shard_queries: Counter,
    // Result-cache mirrors (authoritative atomics live in ShardedCache).
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) cache_evictions: Counter,
    pub(crate) cache_invalidations: Counter,
    pub(crate) cache_entries: Gauge,
    pub(crate) cache_capacity: Gauge,
    // Index-level mirrors.
    pub(crate) generation: Gauge,
    pub(crate) index_trajectories: Gauge,
    pub(crate) index_partitions: Gauge,
    // Persistence.
    pub(crate) wal_appends: Counter,
    pub(crate) wal_bytes: Counter,
    pub(crate) wal_fsyncs: Counter,
    pub(crate) wal_group_size: HistogramHandle,
    pub(crate) wal_fsync_ns: HistogramHandle,
    pub(crate) snapshots: Counter,
    pub(crate) snapshot_bytes: Gauge,
    pub(crate) snapshot_duration_ns: HistogramHandle,
    // Ingestion lifecycle: compaction counters plus scrape-time hot-tail
    // mirrors (the authoritative numbers live in the backend).
    pub(crate) compactions: Counter,
    pub(crate) compaction_errors: Counter,
    pub(crate) compaction_sealed_batches: Counter,
    pub(crate) compaction_sealed_entries: Counter,
    pub(crate) compaction_dropped_partitions: Counter,
    pub(crate) compaction_dropped_entries: Counter,
    pub(crate) compaction_duration_ns: HistogramHandle,
    pub(crate) hot_tail_batches: Gauge,
    pub(crate) hot_tail_entries: Gauge,
    pub(crate) hot_tail_bytes: Gauge,
}

impl ServiceMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        let requests = PerEndpoint(Endpoint::ALL.map(|e| {
            registry.counter(
                "tthr_requests_total",
                "Service requests served",
                &[("endpoint", e.name())],
            )
        }));
        let counter = |name, help| registry.counter(name, help, &[]);
        let gauge = |name, help| registry.gauge(name, help, &[]);
        ServiceMetrics {
            requests,
            rank_ops: counter(
                "tthr_rank_ops_total",
                "Backward-search rank2 operations executed (live steps only)",
            ),
            wavelet_nodes: counter(
                "tthr_wavelet_nodes_total",
                "Wavelet nodes descended through by backward-search ranks",
            ),
            scratch_hits: counter(
                "tthr_scratch_hits_total",
                "Sub-path searches served from a checkpointed scratch cursor",
            ),
            scratch_misses: counter(
                "tthr_scratch_misses_total",
                "Fresh backward searches executed (scratch suffix-cache misses)",
            ),
            partitions_searched: counter(
                "tthr_partitions_searched_total",
                "FM-index partitions scanned by fresh backward searches",
            ),
            index_queries: counter(
                "tthr_index_queries_total",
                "Index-level getTravelTimes/countMatching dispatches",
            ),
            shard_queries: counter(
                "tthr_shard_queries_total",
                "Index dispatches routed to a shard (0 on a monolithic backend)",
            ),
            cache_hits: counter("tthr_cache_hits_total", "Result-cache hits"),
            cache_misses: counter("tthr_cache_misses_total", "Result-cache misses"),
            cache_evictions: counter("tthr_cache_evictions_total", "Result-cache LRU evictions"),
            cache_invalidations: counter(
                "tthr_cache_invalidations_total",
                "Result-cache entries invalidated by appends",
            ),
            cache_entries: gauge("tthr_cache_entries", "Result-cache resident entries"),
            cache_capacity: gauge("tthr_cache_capacity", "Result-cache capacity in entries"),
            generation: gauge(
                "tthr_index_generation",
                "Completed append batches applied to the index",
            ),
            index_trajectories: gauge("tthr_index_trajectories", "Trajectories currently indexed"),
            index_partitions: gauge(
                "tthr_index_partitions",
                "Temporal partitions currently held (summed across shards)",
            ),
            wal_appends: counter("tthr_wal_appends_total", "Write-ahead-log records appended"),
            wal_bytes: counter(
                "tthr_wal_bytes_total",
                "Write-ahead-log payload bytes appended",
            ),
            wal_fsyncs: counter(
                "tthr_wal_fsyncs_total",
                "Write-ahead-log fsyncs issued (one per commit group; \
                 strictly fewer than appends when group commit engages)",
            ),
            wal_group_size: registry.histogram(
                "tthr_wal_group_size",
                "Records durably committed per WAL fsync (group-commit batch size)",
                &[],
            ),
            wal_fsync_ns: registry.histogram(
                "tthr_wal_fsync_duration_ns",
                "Write-ahead-log append+fsync latency in nanoseconds",
                &[],
            ),
            snapshots: counter("tthr_snapshots_total", "Snapshots written"),
            snapshot_bytes: gauge("tthr_snapshot_bytes", "Size of the last snapshot in bytes"),
            snapshot_duration_ns: registry.histogram(
                "tthr_snapshot_duration_ns",
                "Snapshot write+fsync duration in nanoseconds",
                &[],
            ),
            compactions: counter(
                "tthr_compactions_total",
                "Compaction passes completed (including no-ops)",
            ),
            compaction_errors: counter(
                "tthr_compaction_errors_total",
                "Background compaction passes that failed rotating the snapshot",
            ),
            compaction_sealed_batches: counter(
                "tthr_compaction_sealed_batches_total",
                "Hot-tail batches sealed into immutable partitions",
            ),
            compaction_sealed_entries: counter(
                "tthr_compaction_sealed_entries_total",
                "Trajectory entries sealed out of the hot tail",
            ),
            compaction_dropped_partitions: counter(
                "tthr_compaction_dropped_partitions_total",
                "Immutable partitions dropped by the retention horizon",
            ),
            compaction_dropped_entries: counter(
                "tthr_compaction_dropped_entries_total",
                "Trajectory entries dropped by the retention horizon",
            ),
            compaction_duration_ns: registry.histogram(
                "tthr_compaction_duration_ns",
                "Compaction pass duration in nanoseconds (seal + retention, \
                 excluding the snapshot rotation)",
                &[],
            ),
            hot_tail_batches: gauge(
                "tthr_hot_tail_batches",
                "Hot-tail batches pending compaction",
            ),
            hot_tail_entries: gauge(
                "tthr_hot_tail_entries",
                "Trajectory entries pending in the hot tail",
            ),
            hot_tail_bytes: gauge(
                "tthr_hot_tail_bytes",
                "Approximate heap bytes held by the hot tail",
            ),
            registry,
        }
    }

    /// Folds one query's trace into the aggregate counters.
    pub(crate) fn note_trace(&self, t: &QueryTrace) {
        self.rank_ops.add(t.rank_ops);
        self.wavelet_nodes.add(t.wavelet_nodes);
        self.scratch_hits.add(t.scratch_hits);
        self.scratch_misses.add(t.scratch_misses);
        self.partitions_searched.add(t.partitions_searched);
        self.index_queries.add(t.index_queries);
        self.shard_queries.add(t.shard_queries);
    }

    /// Mirrors the authoritative cache counters into the registry.
    pub(crate) fn mirror_cache(&self, c: &CacheCounters) {
        self.cache_hits.set(c.hits);
        self.cache_misses.set(c.misses);
        self.cache_evictions.set(c.evictions);
        self.cache_invalidations.set(c.invalidations);
        self.cache_entries.set(c.entries as i64);
        self.cache_capacity.set(c.capacity as i64);
    }

    /// Mirrors per-shard backend counters into `{shard=…}` labeled series
    /// (registered idempotently on first scrape — the shard count is a
    /// backend property the registry does not need to know up front).
    pub(crate) fn mirror_shards(&self, stats: &[tthr_core::ShardStats]) {
        for (i, s) in stats.iter().enumerate() {
            let shard = i.to_string();
            let labels = [("shard", shard.as_str())];
            self.registry
                .gauge(
                    "tthr_shard_trajectories",
                    "Trajectories indexed per shard",
                    &labels,
                )
                .set(i64::try_from(s.trajectories).unwrap_or(i64::MAX));
            self.registry
                .counter(
                    "tthr_shard_appends_total",
                    "Append batches that wrote this shard",
                    &labels,
                )
                .set(s.appends);
            self.registry
                .counter(
                    "tthr_shard_appended_trajectories_total",
                    "Trajectories appended to this shard",
                    &labels,
                )
                .set(s.appended_trajectories);
            self.registry
                .counter(
                    "tthr_shard_lock_wait_ns_total",
                    "Nanoseconds appenders waited on this shard's write lock",
                    &labels,
                )
                .set(s.lock_wait_ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Slow-query ring
// ---------------------------------------------------------------------------

/// One traced query in the slow-query log
/// ([`QueryService::slow_queries`](crate::QueryService::slow_queries)).
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// [`Endpoint::name`] of the entry point that served it.
    pub endpoint: &'static str,
    /// Edges in the query path (0 for appends).
    pub path_len: usize,
    /// End-to-end wall latency in nanoseconds.
    pub latency_ns: u64,
    /// Service-wide request sequence number (position in arrival order).
    pub seq: u64,
    /// The query's cost trace.
    pub trace: QueryTrace,
}

/// Fixed-size slow-query collector: a top-N-by-latency ring plus an
/// every-Nth sampled ring, both bounded.
///
/// The hot path is one relaxed `fetch_add` (the sequence number) plus a
/// relaxed floor check; the mutex is only taken when an entry actually
/// qualifies — under steady load almost never.
pub(crate) struct SlowLog {
    cap: usize,
    sample_every: u64,
    seq: AtomicU64,
    /// Smallest latency currently in a *full* top ring (0 while filling):
    /// the lock-free admission filter.
    floor: AtomicU64,
    /// Worst-first, at most `cap` entries.
    top: Mutex<Vec<SlowQuery>>,
    /// Most recent `cap` sampled entries, oldest first.
    sampled: Mutex<VecDeque<SlowQuery>>,
}

impl SlowLog {
    pub(crate) fn new(cap: usize, sample_every: u64) -> Self {
        SlowLog {
            cap,
            sample_every,
            seq: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            top: Mutex::new(Vec::new()),
            sampled: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn observe(
        &self,
        endpoint: &'static str,
        path_len: usize,
        latency_ns: u64,
        trace: &QueryTrace,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.cap == 0 {
            return;
        }
        let entry = || SlowQuery {
            endpoint,
            path_len,
            latency_ns,
            seq,
            trace: *trace,
        };
        if latency_ns > self.floor.load(Ordering::Relaxed) {
            let mut top = lock(&self.top);
            let at = top.partition_point(|e: &SlowQuery| e.latency_ns > latency_ns);
            if at < self.cap {
                top.insert(at, entry());
                top.truncate(self.cap);
                if top.len() == self.cap {
                    self.floor
                        .store(top.last().map_or(0, |e| e.latency_ns), Ordering::Relaxed);
                }
            }
        }
        if self.sample_every > 0 && seq.is_multiple_of(self.sample_every) {
            let mut sampled = lock(&self.sampled);
            if sampled.len() == self.cap {
                sampled.pop_front();
            }
            sampled.push_back(entry());
        }
    }

    /// The worst queries seen, worst first.
    pub(crate) fn top(&self) -> Vec<SlowQuery> {
        lock(&self.top).clone()
    }

    /// The most recent sampled queries, oldest first.
    pub(crate) fn sampled(&self) -> Vec<SlowQuery> {
        lock(&self.sampled).iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> (MetricsRegistry, LatencyLog) {
        let registry = MetricsRegistry::new();
        let log = LatencyLog::new(&registry);
        (registry, log)
    }

    /// The log-bucketed histogram reports percentiles within 1/64 relative
    /// error; count/mean/max stay exact.
    #[test]
    fn summary_percentiles() {
        let (_registry, log) = log();
        for i in 1..=100 {
            log.record(Endpoint::Spq, Duration::from_millis(i));
        }
        let (_, per, summary, qps, uptime) = log.export();
        let close = |got: f64, want: f64| (got - want).abs() <= want / 64.0;
        assert_eq!(summary.count, 100);
        assert!(close(summary.p50_ms, 50.0), "p50 = {}", summary.p50_ms);
        assert!(close(summary.p95_ms, 95.0), "p95 = {}", summary.p95_ms);
        assert!(close(summary.p99_ms, 99.0), "p99 = {}", summary.p99_ms);
        assert_eq!(summary.max_ms, 100.0, "max is exact");
        assert!((summary.mean_ms - 50.5).abs() < 1e-9, "mean is exact");
        assert!(qps > 0.0);
        assert!(uptime > Duration::ZERO);
        // Everything was recorded under one endpoint.
        assert_eq!(per[Endpoint::Spq], summary);
        assert_eq!(per[Endpoint::Trip].count, 0);
    }

    /// Endpoints aggregate separately and merge into the overall summary.
    #[test]
    fn endpoints_are_separate() {
        let (_registry, log) = log();
        log.record(Endpoint::Spq, Duration::from_millis(1));
        log.record(Endpoint::Trip, Duration::from_millis(10));
        log.record(Endpoint::Trip, Duration::from_millis(20));
        log.record(Endpoint::Append, Duration::from_millis(100));
        let (_, per, overall, _, _) = log.export();
        assert_eq!(per[Endpoint::Spq].count, 1);
        assert_eq!(per[Endpoint::Trip].count, 2);
        assert_eq!(per[Endpoint::Batch].count, 0);
        assert_eq!(per[Endpoint::Append].count, 1);
        assert_eq!(overall.count, 4);
        assert_eq!(overall.max_ms, 100.0);
        assert_eq!(per[Endpoint::Trip].max_ms, 20.0);
        // The merged raw histogram agrees with the summary counts.
        assert_eq!(log.merged(Endpoint::Trip).count(), 2);
    }

    /// The latency samples are registry series: the Prometheus rendering
    /// of the shared registry carries the same counts the summaries do.
    #[test]
    fn latency_log_is_visible_in_the_registry() {
        let (registry, log) = log();
        log.record(Endpoint::Spq, Duration::from_millis(2));
        log.record(Endpoint::Batch, Duration::from_millis(3));
        let text = registry.render();
        tthr_metrics::validate_exposition(&text).expect(&text);
        assert!(text.contains("tthr_request_duration_ns_count{endpoint=\"spq\"} 1"));
        assert!(text.contains("tthr_request_duration_ns_count{endpoint=\"batch\"} 1"));
        assert!(text.contains("tthr_request_duration_ns_count{endpoint=\"trip\"} 0"));
    }

    /// The recorder's footprint does not grow with the sample count — the
    /// property the histogram exists for.
    #[test]
    fn bounded_memory_for_many_samples() {
        let (_registry, log) = log();
        for i in 0..200_000u64 {
            log.record(Endpoint::Batch, Duration::from_nanos(i * 37 + 1));
        }
        let (_, _, summary, _, _) = log.export();
        assert_eq!(summary.count, 200_000);
        assert!(log.merged(Endpoint::Batch).size_bytes() < 64 * 1024);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let (_registry, log) = log();
        let (_, per, summary, qps, _) = log.export();
        assert_eq!(summary, LatencySummary::default());
        for e in Endpoint::ALL {
            assert_eq!(per[e], LatencySummary::default());
        }
        assert_eq!(qps, 0.0);
    }

    #[test]
    fn reset_clears_samples() {
        let (_registry, log) = log();
        log.record(Endpoint::Spq, Duration::from_millis(5));
        log.reset();
        assert_eq!(log.export().2.count, 0);
    }

    /// Regression for the per-endpoint refactor: 8 threads recording
    /// concurrently (spread across stripes) while the main thread
    /// snapshots and exports continuously — snapshots must never deadlock,
    /// always see internally consistent merges, and the final counts must
    /// be exact. Then a reset under no recording leaves everything empty.
    #[test]
    fn concurrent_recording_with_cheap_snapshots() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        let registry = MetricsRegistry::new();
        let log = std::sync::Arc::new(LatencyLog::new(&registry));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS + 1));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let endpoint = Endpoint::ALL[t % Endpoint::ALL.len()];
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        log.record(endpoint, Duration::from_nanos((t * i) as u64 + 1));
                    }
                })
            })
            .collect();
        barrier.wait();
        // Snapshot continuously while the recorders run: counts observed
        // must be monotone-bounded and the call must stay fast (no
        // deadlock with stripe locks).
        let mut last = 0;
        for _ in 0..50 {
            let (_, per, overall, _, _) = log.export();
            assert!(overall.count >= last, "snapshot went backwards");
            assert!(overall.count <= THREADS * PER_THREAD);
            let sum: usize = Endpoint::ALL.iter().map(|&e| per[e].count).sum();
            assert_eq!(sum, overall.count, "endpoint counts must sum to total");
            last = overall.count;
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, per, overall, _, _) = log.export();
        assert_eq!(overall.count, THREADS * PER_THREAD, "every record counted");
        for e in Endpoint::ALL {
            assert_eq!(per[e].count, 2 * PER_THREAD, "two threads per endpoint");
        }
        // Merge export agrees, then clear empties every stripe.
        assert_eq!(log.merged(Endpoint::Spq).count() as usize, 2 * PER_THREAD);
        log.reset();
        assert_eq!(log.export().2.count, 0);
        assert!(log.merged(Endpoint::Spq).is_empty());
    }

    #[test]
    fn slow_log_keeps_top_n_worst_first_and_samples_every_nth() {
        let slow = SlowLog::new(3, 4);
        let trace = QueryTrace::default();
        for (i, ns) in [50u64, 10, 80, 20, 70, 90, 5, 60].iter().enumerate() {
            slow.observe("spq", i + 1, *ns, &trace);
        }
        let top: Vec<u64> = slow.top().iter().map(|e| e.latency_ns).collect();
        assert_eq!(top, vec![90, 80, 70], "worst three, worst first");
        assert_eq!(slow.top()[0].endpoint, "spq");
        assert_eq!(slow.top()[0].path_len, 6, "entry keeps its query's data");
        // seq 0 and 4 were sampled (every 4th).
        let sampled: Vec<u64> = slow.sampled().iter().map(|e| e.seq).collect();
        assert_eq!(sampled, vec![0, 4]);
    }

    #[test]
    fn slow_log_zero_capacity_records_nothing() {
        let slow = SlowLog::new(0, 1);
        slow.observe("trip", 3, 1_000_000, &QueryTrace::default());
        assert!(slow.top().is_empty());
        assert!(slow.sampled().is_empty());
    }

    #[test]
    fn slow_log_ties_at_the_floor_do_not_grow_the_ring() {
        let slow = SlowLog::new(2, 0);
        let trace = QueryTrace::default();
        slow.observe("spq", 1, 100, &trace);
        slow.observe("spq", 1, 100, &trace);
        slow.observe("spq", 1, 100, &trace); // equals the floor: rejected
        assert_eq!(slow.top().len(), 2);
        slow.observe("spq", 1, 101, &trace); // beats the floor: admitted
        let top: Vec<u64> = slow.top().iter().map(|e| e.latency_ns).collect();
        assert_eq!(top, vec![101, 100]);
    }

    #[test]
    fn service_metrics_render_validates_and_mirrors() {
        let m = ServiceMetrics::new();
        m.requests[Endpoint::Spq].inc();
        let trace = QueryTrace {
            rank_ops: 5,
            wavelet_nodes: 12,
            index_queries: 1,
            ..QueryTrace::default()
        };
        m.note_trace(&trace);
        m.mirror_cache(&CacheCounters {
            hits: 3,
            misses: 4,
            evictions: 0,
            invalidations: 1,
            entries: 2,
            capacity: 100,
        });
        m.mirror_shards(&[
            tthr_core::ShardStats {
                trajectories: 10,
                appends: 2,
                appended_trajectories: 6,
                lock_wait_ns: 1234,
            },
            tthr_core::ShardStats::default(),
        ]);
        let text = m.registry.render();
        tthr_metrics::validate_exposition(&text).expect(&text);
        assert!(text.contains("tthr_requests_total{endpoint=\"spq\"} 1"));
        assert!(text.contains("tthr_rank_ops_total 5"));
        assert!(text.contains("tthr_wavelet_nodes_total 12"));
        assert!(text.contains("tthr_cache_hits_total 3"));
        assert!(text.contains("tthr_cache_capacity 100"));
        assert!(text.contains("tthr_shard_trajectories{shard=\"0\"} 10"));
        assert!(text.contains("tthr_shard_appends_total{shard=\"0\"} 2"));
        assert!(text.contains("tthr_shard_lock_wait_ns_total{shard=\"0\"} 1234"));
        assert!(text.contains("tthr_shard_trajectories{shard=\"1\"} 0"));
    }
}
