#![allow(dead_code)] // shared across integration test binaries; not all use every helper

//! Shared fixtures and the brute-force SPQ oracle for integration tests.

pub mod cluster;
pub mod differential;
pub mod http;
pub mod proxy;

use tthr::core::{Filter, Spq};
use tthr::datagen::{
    generate_network, generate_workload, NetworkConfig, SyntheticNetwork, WorkloadConfig,
};
use tthr::trajectory::TrajectorySet;

/// A small but non-trivial synthetic world shared by the integration tests.
pub fn small_world() -> (SyntheticNetwork, TrajectorySet) {
    let syn = generate_network(&NetworkConfig::small());
    let set = generate_workload(&syn, &WorkloadConfig::small());
    (syn, set)
}

/// Brute-force SPQ evaluation: scans every trajectory, finds every strict
/// occurrence of the query path, applies the temporal and user predicates,
/// and replicates the index's β semantics (first β matches in ascending
/// entry-time order, ties broken by trajectory id then sequence; periodic
/// queries that miss β return nothing).
///
/// Only valid against single-partition indexes: with temporal partitioning
/// the scan tie-break becomes (partition, id), which this oracle does not
/// model — the partitioned tests therefore compare β-free result multisets.
pub fn brute_force_spq(set: &TrajectorySet, spq: &Spq) -> Vec<f64> {
    let mut matches: Vec<(i64, u32, u32, f64)> = Vec::new();
    for tr in set {
        if let Filter::User(u) = spq.filter {
            if tr.user() != u {
                continue;
            }
        }
        if spq.exclude == Some(tr.id()) {
            continue;
        }
        for occ in tr.occurrences_of(&spq.path) {
            let enter = tr.entries()[occ].enter_time;
            if !spq.interval.contains(enter) {
                continue;
            }
            let dur: f64 = tr.entries()[occ..occ + spq.path.len()]
                .iter()
                .map(|e| e.travel_time)
                .sum();
            matches.push((enter, tr.id().0, occ as u32, dur));
        }
    }
    matches.sort_by_key(|a| (a.0, a.1, a.2));
    if let Some(beta) = spq.beta {
        if spq.interval.is_periodic() && matches.len() < beta as usize {
            return Vec::new();
        }
        matches.truncate(beta as usize);
    }
    matches.into_iter().map(|m| m.3).collect()
}

/// Copies the first `n` trajectories of `set` into their own set (ids are
/// re-assigned densely, users and entries preserved).
pub fn prefix_set(set: &TrajectorySet, n: usize) -> TrajectorySet {
    let mut prefix = TrajectorySet::new();
    for tr in set.iter().take(n) {
        prefix
            .push(tr.user(), tr.entries().to_vec())
            .expect("valid copy");
    }
    prefix
}

/// Raw bit patterns of travel-time values in scan order — byte-identical
/// comparison, stricter than float equality.
pub fn value_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Sorts travel times for multiset comparison.
pub fn sorted(values: impl Into<Vec<f64>>) -> Vec<f64> {
    let mut values = values.into();
    values.sort_by(f64::total_cmp);
    values
}

/// Asserts two sorted travel-time vectors are equal up to floating-point
/// noise (the index derives durations as `a_{l−1} − (a₀ − TT₀)` from prefix
/// sums, the oracle sums raw values — a different association order).
#[track_caller]
pub fn assert_times_eq(got: &[f64], want: &[f64], ctx: &dyn std::fmt::Debug) {
    assert_eq!(got.len(), want.len(), "length mismatch for {ctx:?}");
    for (g, w) in got.iter().zip(want) {
        let tol = 1e-9 * w.abs().max(1.0);
        assert!((g - w).abs() <= tol, "{g} vs {w} for {ctx:?}");
    }
}
