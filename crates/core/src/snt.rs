//! The SNT-index, adapted and extended for travel-time retrieval.
//!
//! Assembly of the substrates (paper, Section 4):
//!
//! * one FM-index per temporal partition over the partition's trajectory
//!   string (Section 4.1.1, partitioning per Section 4.3.2);
//! * a forest of temporal indexes — one CSS-tree or B+-tree per segment —
//!   whose leaves carry the travel-time extensions `(TT, seq, a)` and the
//!   partition id `w` (Sections 4.1.2–4.1.3);
//! * the dense user-lookup container `U : d → u` for constant-time filter
//!   evaluation;
//! * an optional per-partition, per-segment time-of-day histogram store for
//!   the accurate cardinality estimator modes (Section 4.4).
//!
//! Query execution follows the paper's procedures exactly: `getISARange`
//! (Procedure 2, in `tthr-fmindex`), `buildMap` (Procedure 3), `probeMap`
//! (Procedure 4), and `getTravelTimes` (Procedure 5).

use crate::hot::{HotBatch, HotTail};
use crate::interval::TimeInterval;
use crate::probe::ProbeTable;
use crate::spq::{Filter, Spq};
use crate::text;
use crate::trace::QueryTrace;
use std::ops::ControlFlow;
use tthr_fmindex::{FmIndex, HuffmanWaveletTree, IsaRange, SearchCost, WaveletMatrix};
use tthr_histogram::TimeOfDayHistogram;
use tthr_network::{EdgeId, RoadNetwork, Timestamp, SECONDS_PER_DAY};
use tthr_temporal::{BPlusTree, CssTree, LeafEntry, TemporalIndex};
use tthr_trajectory::{TrajectorySet, UserId};

/// Which temporal tree implementation backs the forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TreeKind {
    /// Cache-sensitive search trees (the paper's optimized default).
    #[default]
    Css,
    /// B+-trees (the original SNT-index configuration).
    BPlus,
}

/// Which wavelet structure stores the BWT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WaveletKind {
    /// Huffman-shaped wavelet tree (the paper uses sdsl-lite's `wt_huff`).
    #[default]
    Huffman,
    /// Balanced wavelet matrix (ablation alternative).
    Matrix,
}

/// Index construction options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SntConfig {
    /// Temporal tree implementation.
    pub tree: TreeKind,
    /// Wavelet structure for the BWT.
    pub wavelet: WaveletKind,
    /// Temporal partition width in days; `None` builds a single partition
    /// (the paper's `FULL` configuration).
    pub partition_days: Option<u32>,
    /// Bucket width of the per-segment time-of-day histograms in seconds;
    /// `None` disables the histogram store (no `*-Acc` estimator modes).
    pub tod_bucket_secs: Option<u32>,
}

impl Default for SntConfig {
    fn default() -> Self {
        SntConfig {
            tree: TreeKind::Css,
            wavelet: WaveletKind::Huffman,
            partition_days: None,
            tod_bucket_secs: Some(600),
        }
    }
}

/// Backing store of [`TravelTimes::values`]: empty and single-value
/// results stay inline, measured multisets live on the heap.
///
/// Procedure 5's speed-limit fallback produces exactly one estimate, and
/// σ's terminal relaxation produces it on *every* dataless single-segment
/// query — a heap `Vec` per estimate was pure churn. `TtValues` derefs to
/// `&[f64]`, so read sites treat it as a slice.
#[derive(Clone, Debug)]
pub struct TtValues(TtRepr);

#[derive(Clone, Debug)]
enum TtRepr {
    /// No values (∅).
    Empty,
    /// One inline value (the `estimateTT` fallback).
    One(f64),
    /// A measured multiset.
    Heap(Vec<f64>),
}

impl TtValues {
    /// The empty multiset, allocation-free.
    pub const EMPTY: TtValues = TtValues(TtRepr::Empty);

    /// A single inline value, allocation-free.
    #[inline]
    pub fn one(v: f64) -> Self {
        TtValues(TtRepr::One(v))
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match &self.0 {
            TtRepr::Empty => &[],
            TtRepr::One(v) => std::slice::from_ref(v),
            TtRepr::Heap(v) => v,
        }
    }

    /// Converts into a plain `Vec` (allocation-free for heap-backed
    /// values; inline values allocate here, where the caller actually
    /// needs ownership).
    pub fn into_vec(self) -> Vec<f64> {
        match self.0 {
            TtRepr::Empty => Vec::new(),
            TtRepr::One(v) => vec![v],
            TtRepr::Heap(v) => v,
        }
    }
}

impl std::ops::Deref for TtValues {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl From<Vec<f64>> for TtValues {
    fn from(v: Vec<f64>) -> Self {
        TtValues(TtRepr::Heap(v))
    }
}

impl From<TtValues> for Vec<f64> {
    fn from(v: TtValues) -> Self {
        v.into_vec()
    }
}

impl<'a> IntoIterator for &'a TtValues {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Value equality: representations compare as multisets-in-scan-order, so
/// an inline single estimate equals its heap-backed spelling.
impl PartialEq for TtValues {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Travel times retrieved for one SPQ.
#[derive(Clone, Debug, PartialEq)]
pub struct TravelTimes {
    /// The travel-time multiset `X` in index scan order.
    pub values: TtValues,
    /// Whether `values` is the single speed-limit estimate `estimateTT(e)`
    /// (Procedure 5, line 13) rather than measured data.
    pub fallback: bool,
}

impl TravelTimes {
    /// The empty result `∅`.
    pub fn empty() -> Self {
        TravelTimes {
            values: TtValues::EMPTY,
            fallback: false,
        }
    }

    /// Whether no travel times were retrieved.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of retrieved travel times.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Mean travel time `X̄`, if any values were retrieved.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The values sorted ascending (for deterministic assertions).
    ///
    /// Uses [`f64::total_cmp`]: a NaN or negative-zero value slipping in
    /// through corrupt input data yields a deterministic order instead of a
    /// panic mid-query.
    pub fn sorted(&self) -> Vec<f64> {
        let mut v = self.values.to_vec();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// Per-component memory accounting (Figure 10).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryReport {
    /// Segment-counter arrays `C`, summed over partitions.
    pub counts_bytes: usize,
    /// Wavelet structures (`WT`), summed over partitions.
    pub wavelet_bytes: usize,
    /// The `U : d → u` user table.
    pub user_bytes: usize,
    /// The temporal forest, as allocated.
    pub forest_bytes: usize,
    /// Logical forest payload with the partition id in every leaf.
    pub forest_logical_bytes: usize,
    /// Logical forest payload without the partition id (the ≈ 300 MiB
    /// saving the paper reports for its data set, Section 6.3).
    pub forest_logical_bytes_no_partition: usize,
    /// Time-of-day histogram store (Figure 10b).
    pub tod_bytes: usize,
    /// Total leaf entries across the forest.
    pub total_entries: usize,
}

/// Hot-tail accounting, surfaced through service stats and `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Absorbed-but-unsealed batches pending compaction.
    pub batches: usize,
    /// Total traversals across pending batches.
    pub entries: usize,
    /// Approximate heap footprint of the hot tail.
    pub bytes: usize,
}

/// What one [`SntIndex::compact`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Hot batches sealed into immutable partitions.
    pub sealed_batches: usize,
    /// Traversals those batches carried.
    pub sealed_entries: usize,
    /// Immutable partitions dropped by the retention horizon.
    pub dropped_partitions: usize,
    /// Traversals those partitions carried.
    pub dropped_entries: usize,
}

impl CompactionOutcome {
    /// Whether the call changed the index at all.
    pub fn changed(&self) -> bool {
        self.sealed_batches > 0 || self.dropped_partitions > 0
    }

    /// Folds another outcome into this one (per-shard aggregation).
    pub fn merge(&mut self, other: &CompactionOutcome) {
        self.sealed_batches += other.sealed_batches;
        self.sealed_entries += other.sealed_entries;
        self.dropped_partitions += other.dropped_partitions;
        self.dropped_entries += other.dropped_entries;
    }
}

pub(crate) enum FmVariant {
    Huffman(FmIndex<HuffmanWaveletTree>),
    Matrix(FmIndex<WaveletMatrix>),
}

impl FmVariant {
    fn build(kind: WaveletKind, txt: &[u32], sigma: u32) -> (Self, Vec<u32>) {
        match kind {
            WaveletKind::Huffman => {
                let (fm, isa) = FmIndex::<HuffmanWaveletTree>::build(txt, sigma);
                (FmVariant::Huffman(fm), isa)
            }
            WaveletKind::Matrix => {
                let (fm, isa) = FmIndex::<WaveletMatrix>::build(txt, sigma);
                (FmVariant::Matrix(fm), isa)
            }
        }
    }

    fn isa_range(&self, pattern: &[u32]) -> IsaRange {
        match self {
            FmVariant::Huffman(fm) => fm.isa_range(pattern),
            FmVariant::Matrix(fm) => fm.isa_range(pattern),
        }
    }

    /// Appends `isa_range(&pattern[k..])` for every `k` to `out` — one
    /// backward search whose checkpointed cursor states become the
    /// suffix-cache entries of [`SearchScratch`] — charging each live step
    /// to `cost` ([`tthr_fmindex::FmIndex::suffix_ranges_costed`]).
    fn suffix_ranges_costed(
        &self,
        pattern: &[u32],
        out: &mut Vec<IsaRange>,
        cost: &mut SearchCost,
    ) {
        match self {
            FmVariant::Huffman(fm) => fm.suffix_ranges_costed(pattern, out, cost),
            FmVariant::Matrix(fm) => fm.suffix_ranges_costed(pattern, out, cost),
        }
    }

    fn wavelet_size_bytes(&self) -> usize {
        match self {
            FmVariant::Huffman(fm) => fm.wavelet_size_bytes(),
            FmVariant::Matrix(fm) => fm.wavelet_size_bytes(),
        }
    }

    fn counts_size_bytes(&self) -> usize {
        match self {
            FmVariant::Huffman(fm) => fm.counts_size_bytes(),
            FmVariant::Matrix(fm) => fm.counts_size_bytes(),
        }
    }
}

pub(crate) enum Forest {
    Css(Vec<CssTree>),
    BPlus(Vec<BPlusTree>),
}

impl Forest {
    fn tree(&self, e: EdgeId) -> &dyn TemporalIndex {
        match self {
            Forest::Css(trees) => &trees[e.index()],
            Forest::BPlus(trees) => &trees[e.index()],
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            Forest::Css(trees) => trees.iter().map(|t| t.size_bytes()).sum(),
            Forest::BPlus(trees) => trees.iter().map(|t| t.size_bytes()).sum(),
        }
    }

    /// Appends one edge's batch of time-sorted leaves (merging any overlap
    /// with the already-indexed tail).
    fn append(&mut self, edge: usize, leaves: Vec<LeafEntry>) {
        match self {
            Forest::Css(trees) => trees[edge].extend_sorted(leaves),
            Forest::BPlus(trees) => {
                for leaf in leaves {
                    trees[edge].insert(leaf);
                }
            }
        }
    }

    /// Calls `f` for every leaf in the forest (per-tree scan order).
    fn for_each_leaf(&self, f: &mut dyn FnMut(&LeafEntry)) {
        match self {
            Forest::Css(trees) => {
                for t in trees {
                    for l in t.entries() {
                        f(l);
                    }
                }
            }
            Forest::BPlus(trees) => {
                for t in trees {
                    let _ = t.scan_range(i64::MIN, i64::MAX, &mut |l| {
                        f(l);
                        ControlFlow::Continue(())
                    });
                }
            }
        }
    }

    /// Rebuilds every tree keeping only leaves `keep` accepts, passing each
    /// survivor through `remap` (retention). Rebuilding `from_sorted` on
    /// the filtered scan sequence preserves relative order — including
    /// timestamp-tie order — so the result is exactly the forest an index
    /// that only ever appended the surviving batches would hold.
    fn retain_remap(
        &mut self,
        keep: &dyn Fn(&LeafEntry) -> bool,
        remap: &dyn Fn(LeafEntry) -> LeafEntry,
    ) {
        match self {
            Forest::Css(trees) => {
                for t in trees {
                    let kept: Vec<LeafEntry> = t
                        .entries()
                        .iter()
                        .filter(|l| keep(l))
                        .map(|l| remap(*l))
                        .collect();
                    *t = CssTree::from_sorted(kept);
                }
            }
            Forest::BPlus(trees) => {
                for t in trees {
                    let mut kept: Vec<LeafEntry> = Vec::new();
                    let _ = t.scan_range(i64::MIN, i64::MAX, &mut |l| {
                        if keep(l) {
                            kept.push(remap(*l));
                        }
                        ControlFlow::Continue(())
                    });
                    *t = BPlusTree::from_sorted(kept);
                }
            }
        }
    }
}

/// Per-partition, per-segment time-of-day histograms.
pub(crate) struct TodStore {
    pub(crate) bucket_secs: u32,
    /// `hists[partition][edge]`, allocated lazily for non-empty segments.
    pub(crate) hists: Vec<Vec<Option<TimeOfDayHistogram>>>,
}

impl TodStore {
    /// Histogram for a `(partition, edge)` pair, if any traversals exist.
    pub(crate) fn get(&self, partition: usize, e: EdgeId) -> Option<&TimeOfDayHistogram> {
        self.hists[partition][e.index()].as_ref()
    }

    pub(crate) fn size_bytes(&self) -> usize {
        let hist_bytes: usize = self
            .hists
            .iter()
            .flatten()
            .filter_map(|h| h.as_ref().map(|h| h.size_bytes()))
            .sum();
        let slot_bytes: usize = self
            .hists
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<Option<TimeOfDayHistogram>>())
            .sum();
        hist_bytes + slot_bytes
    }
}

/// Process-unique identity for [`SearchScratch`] tagging, drawn at
/// [`SntIndex`] construction (build or snapshot restore). The index is
/// not `Clone`, so one id never describes two divergent states; paired
/// with the trajectory count it also distinguishes the same instance
/// before and after an append.
pub(crate) fn next_scratch_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Per-query scratch state for the backward-search hot path: reusable
/// buffers plus a **suffix-sharing search cache**.
///
/// Backward search processes a path right-to-left, so one search of `P`
/// passes through the ISA range of *every suffix* of `P`. The relaxation
/// function σ only ever derives contiguous sub-paths, and the right half
/// of every split is a suffix of its parent — with the parent's
/// checkpointed cursor states cached here, those sub-path searches (and
/// every re-dispatch of an unchanged path under a widened window) are
/// answered without touching the wavelet structures at all.
///
/// A scratch is single-index-state: entries are tagged with the owning
/// index's process-unique id plus its trajectory count, and
/// self-invalidate whenever queries are answered by any other index (a
/// different instance, another shard, or the same instance after an
/// append) — reuse can never serve stale ranges. The engine creates one
/// scratch per trip query (per chain when chains fan out), which also
/// bounds the cache's size by the query's own relaxation work.
#[derive(Default)]
pub struct SearchScratch {
    /// `(index id, mutation stamp)` the cache entries belong to.
    owner: Option<(u64, u64)>,
    /// Pattern buffer for the query being answered.
    symbols: Vec<u32>,
    /// Per-partition ISA ranges of the last [`SntIndex::fill_ranges`].
    ranges: Vec<IsaRange>,
    /// Suffix-state cache over previously searched patterns.
    entries: Vec<ScratchEntry>,
    /// Cost attribution for the queries answered through this scratch;
    /// purely observational (see [`QueryTrace`]). Callers that want
    /// per-query profiles call [`QueryTrace::reset`] between queries.
    pub trace: QueryTrace,
}

/// One cached search: the pattern and, flattened per partition, the ISA
/// range of every suffix (`states[p * len + k]` = partition `p`, suffix
/// `pattern[k..]`).
struct ScratchEntry {
    symbols: Vec<u32>,
    states: Vec<IsaRange>,
}

/// Hard cap on cached searches: a defensive bound for adversarially deep
/// relaxation chains (hit ⇒ the cache resets and keeps working).
const SCRATCH_MAX_ENTRIES: usize = 512;

impl SearchScratch {
    /// A fresh scratch (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached searches (diagnostics/tests).
    pub fn cached_searches(&self) -> usize {
        self.entries.len()
    }

    /// Invalidates the cache unless it already belongs to the index state
    /// `(id, mutation stamp)`: ids are unique per index instance and every
    /// mutation (append, hot-tail absorb, compaction, retention) bumps the
    /// stamp, so the pair changes whenever cached ranges could be stale.
    pub(crate) fn ensure(&mut self, id: u64, stamp: u64) {
        if self.owner != Some((id, stamp)) {
            self.owner = Some((id, stamp));
            self.entries.clear();
        }
    }
}

/// The extended SNT-index (paper, Section 4).
///
/// Fields are `pub(crate)` so the persistence layer (`crate::persist`)
/// can decompose the index into snapshot sections and reassemble it.
pub struct SntIndex {
    pub(crate) config: SntConfig,
    pub(crate) partitions: Vec<FmVariant>,
    pub(crate) forest: Forest,
    pub(crate) user_table: Vec<UserId>,
    pub(crate) tod: Option<TodStore>,
    /// Copied per-edge speed-limit estimates for the Procedure 5 fallback.
    pub(crate) estimate_tt: Vec<f64>,
    pub(crate) data_min: Timestamp,
    pub(crate) data_max: Timestamp,
    /// Leaf entries in the *immutable* forest (hot-tail entries are
    /// counted separately by [`SntIndex::hot_stats`]).
    pub(crate) total_entries: usize,
    /// Process-unique identity for [`SearchScratch`] tagging (not
    /// persisted — re-drawn on restore).
    pub(crate) scratch_id: u64,
    /// The mutable ingestion tail (see [`crate::hot`]): absorbed batches
    /// queries merge with the immutable levels until compaction seals them.
    pub(crate) hot: HotTail,
    /// Monotonic state version for [`SearchScratch`] invalidation: bumped
    /// on every mutation (append, absorb, compaction, retention). The
    /// trajectory count alone is not enough — compaction changes the
    /// partition layout without changing the count, and cached
    /// per-partition ISA ranges would silently go stale.
    pub(crate) mutation_stamp: u64,
}

impl SntIndex {
    /// Builds the index over a trajectory set.
    ///
    /// Construction: trajectories are assigned to temporal partitions by
    /// start time; each partition's trajectory string is indexed with an
    /// FM-index; every segment traversal becomes a leaf of its segment's
    /// temporal tree, carrying its ISA value, trajectory id, sequence
    /// number, traversal time, aggregate, and partition id.
    pub fn build(network: &RoadNetwork, trajectories: &TrajectorySet, config: SntConfig) -> Self {
        let num_edges = network.num_edges();
        let sigma = text::alphabet_size(num_edges);

        // Data span.
        let mut data_min = Timestamp::MAX;
        let mut data_max = Timestamp::MIN;
        for tr in trajectories {
            data_min = data_min.min(tr.start_time());
            let last = tr.entries().last().expect("trajectories are non-empty");
            data_max = data_max.max(last.enter_time);
        }
        if trajectories.is_empty() {
            data_min = 0;
            data_max = 0;
        }

        // Partition assignment by trajectory start time.
        let width = config
            .partition_days
            .map(|d| d as i64 * SECONDS_PER_DAY)
            .unwrap_or(i64::MAX);
        let part_of = |t0: Timestamp| -> usize {
            if width == i64::MAX {
                0
            } else {
                ((t0 - data_min) / width) as usize
            }
        };
        let num_partitions = if trajectories.is_empty() {
            1
        } else {
            trajectories
                .iter()
                .map(|tr| part_of(tr.start_time()))
                .max()
                .expect("non-empty")
                + 1
        };
        assert!(num_partitions <= u16::MAX as usize, "too many partitions");

        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); num_partitions];
        for tr in trajectories {
            groups[part_of(tr.start_time())].push(tr.id().0);
        }

        // Per-partition FM-indexes + leaf accumulation.
        let mut leaf_acc: Vec<Vec<LeafEntry>> = vec![Vec::new(); num_edges];
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut total_entries = 0usize;
        for (w, group) in groups.iter().enumerate() {
            let (txt, starts) = text::build_text(
                group
                    .iter()
                    .map(|&id| trajectories.get(tthr_trajectory::TrajId(id))),
            );
            let (fm, isa) = FmVariant::build(config.wavelet, &txt, sigma);
            for (gi, &id) in group.iter().enumerate() {
                let tr = trajectories.get(tthr_trajectory::TrajId(id));
                let base = starts[gi];
                let mut aggregate = 0.0;
                for (k, entry) in tr.entries().iter().enumerate() {
                    aggregate += entry.travel_time;
                    leaf_acc[entry.edge.index()].push(LeafEntry {
                        time: entry.enter_time,
                        aggregate,
                        travel_time: entry.travel_time,
                        isa: isa[base + k],
                        traj: id,
                        seq: k as u32,
                        partition: w as u16,
                    });
                    total_entries += 1;
                }
            }
            partitions.push(fm);
        }

        // Optional time-of-day histogram store.
        let tod = config.tod_bucket_secs.map(|bucket| {
            let mut hists: Vec<Vec<Option<TimeOfDayHistogram>>> =
                (0..num_partitions).map(|_| vec![None; num_edges]).collect();
            for (edge_idx, per_edge) in leaf_acc.iter().enumerate() {
                for leaf in per_edge {
                    hists[leaf.partition as usize][edge_idx]
                        .get_or_insert_with(|| TimeOfDayHistogram::new(bucket))
                        .add(leaf.time);
                }
            }
            TodStore {
                bucket_secs: bucket,
                hists,
            }
        });

        // Temporal forest (leaves sorted by time; stable sort keeps the
        // trajectory-id order for equal timestamps).
        let forest = match config.tree {
            TreeKind::Css => Forest::Css(
                leaf_acc
                    .into_iter()
                    .map(|mut v| {
                        v.sort_by_key(|e| e.time);
                        CssTree::from_sorted(v)
                    })
                    .collect(),
            ),
            TreeKind::BPlus => Forest::BPlus(
                leaf_acc
                    .into_iter()
                    .map(|mut v| {
                        v.sort_by_key(|e| e.time);
                        BPlusTree::from_sorted(v)
                    })
                    .collect(),
            ),
        };

        SntIndex {
            config,
            partitions,
            forest,
            user_table: trajectories.user_table(),
            tod,
            scratch_id: next_scratch_id(),
            estimate_tt: network.edge_ids().map(|e| network.estimate_tt(e)).collect(),
            data_min,
            data_max,
            total_entries,
            hot: HotTail::default(),
            mutation_stamp: 0,
        }
    }

    /// The construction configuration.
    pub fn config(&self) -> &SntConfig {
        &self.config
    }

    /// Number of temporal partitions `W`.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of road-network edges the index was built over (the FM
    /// alphabet size minus the `$` separator).
    pub fn num_edges(&self) -> usize {
        self.estimate_tt.len()
    }

    /// Earliest trajectory start time in the data set.
    pub fn data_min(&self) -> Timestamp {
        self.data_min
    }

    /// Latest segment entry time in the data set (`t_max`).
    pub fn data_max(&self) -> Timestamp {
        self.data_max
    }

    /// The fixed-interval fallback `[0, t_max)` of Procedure 1, line 12.
    pub fn full_interval(&self) -> TimeInterval {
        TimeInterval::fixed(self.data_min.min(0), self.data_max + 1)
    }

    /// Speed-limit travel-time estimate for a segment (`estimateTT`).
    pub fn estimate_tt(&self, e: EdgeId) -> f64 {
        self.estimate_tt[e.index()]
    }

    /// The user of a trajectory (the `U` container).
    pub fn user_of(&self, traj: u32) -> UserId {
        self.user_table[traj as usize]
    }

    /// The temporal index `Φe` of a segment.
    pub fn temporal(&self, e: EdgeId) -> &dyn TemporalIndex {
        self.forest.tree(e)
    }

    /// Per-partition, per-segment time-of-day histogram, when the store is
    /// enabled and the segment has traversals in the partition.
    pub fn tod_histogram(&self, partition: usize, e: EdgeId) -> Option<&TimeOfDayHistogram> {
        self.tod.as_ref().and_then(|s| s.get(partition, e))
    }

    /// Bucket width of the ToD store, if enabled.
    pub fn tod_bucket_secs(&self) -> Option<u32> {
        self.tod.as_ref().map(|s| s.bucket_secs)
    }

    /// Per-partition ISA ranges of a path (`getISARange` over every
    /// partition's FM-index, Section 4.3.2).
    pub fn isa_ranges(&self, path: &tthr_network::Path) -> Vec<IsaRange> {
        let pattern = text::path_symbols(path);
        self.partitions
            .iter()
            .map(|fm| fm.isa_range(&pattern))
            .collect()
    }

    /// [`SntIndex::isa_ranges`] through a [`SearchScratch`]: reuses the
    /// scratch buffers (no per-call allocation) and answers from the
    /// suffix cache when the path's pattern is a suffix of a previously
    /// searched one. Results are byte-identical to [`SntIndex::isa_ranges`].
    pub fn isa_ranges_with<'s>(
        &self,
        path: &tthr_network::Path,
        scratch: &'s mut SearchScratch,
    ) -> &'s [IsaRange] {
        scratch.ensure(self.scratch_id, self.mutation_stamp);
        self.fill_ranges(path, scratch);
        &scratch.ranges
    }

    /// Fills `scratch.ranges` with the per-partition ISA ranges of `path`,
    /// via the suffix cache. Callers must have tagged the scratch with
    /// [`SearchScratch::ensure`] first.
    fn fill_ranges(&self, path: &tthr_network::Path, scratch: &mut SearchScratch) {
        text::path_symbols_into(path, &mut scratch.symbols);
        let len = scratch.symbols.len();
        scratch.ranges.clear();
        if len == 0 {
            scratch
                .ranges
                .resize(self.partitions.len(), IsaRange::EMPTY);
            return;
        }

        // Cache hit: the pattern is a suffix of a cached search, so its
        // per-partition ranges are checkpointed cursor states.
        for entry in &scratch.entries {
            let elen = entry.symbols.len();
            if elen >= len && entry.symbols[elen - len..] == scratch.symbols[..] {
                let m = elen - len;
                scratch
                    .ranges
                    .extend((0..self.partitions.len()).map(|p| entry.states[p * elen + m]));
                scratch.trace.scratch_hits += 1;
                return;
            }
        }

        // Miss: one backward search per partition, recording every suffix
        // state for future sub-path lookups.
        scratch.trace.scratch_misses += 1;
        let mut cost = SearchCost::default();
        let mut states = Vec::with_capacity(self.partitions.len() * len);
        for fm in &self.partitions {
            fm.suffix_ranges_costed(&scratch.symbols, &mut states, &mut cost);
            scratch.trace.partitions_searched += 1;
        }
        scratch.trace.rank_ops += cost.rank_ops;
        scratch.trace.wavelet_nodes += cost.wavelet_nodes;
        scratch
            .ranges
            .extend((0..self.partitions.len()).map(|p| states[p * len]));
        if scratch.entries.len() >= SCRATCH_MAX_ENTRIES {
            scratch.entries.clear();
        }
        scratch.entries.push(ScratchEntry {
            symbols: scratch.symbols.clone(),
            states,
        });
    }

    /// Exact number of traversals of the path across all partitions
    /// (`cP = ed − st`, the ISA-mode cardinality).
    pub fn traversal_count(&self, path: &tthr_network::Path) -> usize {
        let cold: usize = self.isa_ranges(path).iter().map(|r| r.len()).sum();
        let hot: usize = self.hot.batches().iter().map(|b| b.count_path(path)).sum();
        cold + hot
    }

    /// Min/max leaf time of a segment across the immutable forest *and*
    /// the hot tail — the bounds a monolithic tree over the same data
    /// would report.
    pub(crate) fn edge_bounds(&self, e: EdgeId) -> Option<(Timestamp, Timestamp)> {
        let tree = self.forest.tree(e);
        let cold = tree
            .min_key()
            .map(|mn| (mn, tree.max_key().expect("non-empty")));
        match (cold, self.hot.bounds(e)) {
            (None, hot) => hot,
            (cold, None) => cold,
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
        }
    }

    /// Total leaf count of a segment (immutable forest + hot tail).
    pub(crate) fn merged_edge_len(&self, e: EdgeId) -> usize {
        self.forest.tree(e).len() + self.hot.lane_len(e)
    }

    /// Leaf count of a segment in `[lo, hi)` (immutable forest + hot tail)
    /// — what [`TemporalIndex::range_count`] would report on a monolithic
    /// tree over the same data.
    pub(crate) fn merged_range_count(&self, e: EdgeId, lo: Timestamp, hi: Timestamp) -> usize {
        self.forest.tree(e).range_count(lo, hi) + self.hot.slice(e, lo, hi).len()
    }

    /// The pending hot batches (estimator parity; see [`crate::hot`]).
    pub(crate) fn hot_batches(&self) -> &[HotBatch] {
        self.hot.batches()
    }

    /// Scans segment `e` over `[lo, hi)` in exactly the order a monolithic
    /// tree over cold + hot data would: two-way merge of the immutable
    /// tree and the hot lane, cold leaf first on equal timestamps (hot
    /// batches are a strict suffix of the append sequence, and both tree
    /// kinds keep existing entries first on ties). The callback's second
    /// argument distinguishes hot leaves, whose spatial filter is
    /// evaluated against the retained trajectory instead of an ISA range.
    fn scan_merged(
        &self,
        e: EdgeId,
        lo: Timestamp,
        hi: Timestamp,
        f: &mut dyn FnMut(&LeafEntry, bool) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let hot = self.hot.slice(e, lo, hi);
        if hot.is_empty() {
            return self.forest.tree(e).scan_range(lo, hi, &mut |r| f(r, false));
        }
        let mut h = 0usize;
        self.forest.tree(e).scan_range(lo, hi, &mut |c| {
            while h < hot.len() && hot[h].time < c.time {
                f(&hot[h], true)?;
                h += 1;
            }
            f(c, false)
        })?;
        while h < hot.len() {
            f(&hot[h], true)?;
            h += 1;
        }
        ControlFlow::Continue(())
    }

    fn passes_filter(&self, spq: &Spq, traj: u32) -> bool {
        if let Some(ex) = spq.exclude {
            if ex.0 == traj {
                return false;
            }
        }
        match spq.filter {
            Filter::None => true,
            Filter::User(u) => self.user_table[traj as usize] == u,
        }
    }

    /// `buildMap` (Procedure 3): scans the temporal index of the first
    /// segment over the query windows, spatially filters by ISA range,
    /// evaluates the non-temporal predicate, and maps `(d, seq)` to the
    /// antecedent aggregate `a − TT`, stopping once β entries are found.
    ///
    /// Two hot-path by-products ride along, both byte-identical to the
    /// plain build-then-probe pipeline:
    ///
    /// * For **single-segment** paths the probe scan would revisit exactly
    ///   the leaves inserted here (the build and probe segments coincide
    ///   and `(d, seq)` self-matches), in the same order, computing
    ///   `a − (a − TT)` per leaf — so when `collect` is given, that value
    ///   is emitted during this scan and [`SntIndex::probe_map`] is
    ///   skipped entirely.
    /// * `first_lo` reports the earliest window bound scanned; segment
    ///   entry times are non-decreasing along a trajectory, so no probe
    ///   leaf matching a map entry can sit before it — the probe scan
    ///   starts there instead of the tree's minimum key.
    fn build_map(
        &self,
        spq: &Spq,
        ranges: &[IsaRange],
        mut collect: Option<&mut Vec<f64>>,
    ) -> (ProbeTable, Timestamp) {
        let cap = spq.beta_cap() as usize;
        let mut map = ProbeTable::with_capacity(cap.min(1024));
        let mut first_lo = Timestamp::MAX;
        let first = spq.path.first();
        let Some((kmin, kmax)) = self.edge_bounds(first) else {
            return (map, first_lo);
        };
        let _ = spq.interval.for_each_window(kmin, kmax, &mut |lo, hi| {
            first_lo = first_lo.min(lo);
            self.scan_merged(first, lo, hi, &mut |r, is_hot| {
                let on_path = if is_hot {
                    self.hot.leaf_matches(r, &spq.path)
                } else {
                    ranges[r.partition as usize].contains(r.isa)
                };
                if on_path && self.passes_filter(spq, r.traj) {
                    map.insert(r.traj, r.seq, r.antecedent());
                    if let Some(xs) = collect.as_deref_mut() {
                        // The probe-side arithmetic on the same leaf.
                        xs.push(r.aggregate - r.antecedent());
                    }
                    if map.len() >= cap {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })
        });
        (map, first_lo)
    }

    /// `probeMap` (Procedure 4): scans the temporal index of the last
    /// segment, probing the map with `(d, seq + 1 − l)`; every hit yields
    /// the path travel time `a_{l−1} − (a₀ − TT₀)`. The scan stops as soon
    /// as every map entry has been matched (each spatially filtered entry
    /// matches exactly once), and starts at `from` — the earliest
    /// buildMap window bound — because a trajectory enters its last query
    /// segment no earlier than its first.
    fn probe_map(&self, spq: &Spq, map: &ProbeTable, from: Timestamp) -> Vec<f64> {
        let mut xs = Vec::with_capacity(map.len());
        if map.is_empty() {
            return xs;
        }
        let l = spq.path.len() as u32;
        let last = spq.path.last();
        let Some((kmin, kmax)) = self.edge_bounds(last) else {
            return xs;
        };
        let _ = self.scan_merged(last, kmin.max(from), kmax + 1, &mut |r, _| {
            // Probe hits are map-membership tests: identical for hot and
            // cold leaves (the map's (traj, seq) keys are global either way).
            if r.seq + 1 >= l {
                if let Some(diff) = map.get(r.traj, r.seq + 1 - l) {
                    xs.push(r.aggregate - diff);
                    if xs.len() == map.len() {
                        return ControlFlow::Break(());
                    }
                }
            }
            ControlFlow::Continue(())
        });
        xs
    }

    /// `getTravelTimes` (Procedure 5): retrieves the travel times of up to
    /// β trajectories matching the SPQ.
    ///
    /// * An empty ISA range short-circuits without touching the temporal
    ///   indexes (the FM-index already proves no trajectory traverses `P`).
    /// * Periodic queries that cannot satisfy β return `∅`, signalling the
    ///   splitter to relax the predicates.
    /// * A single-segment query with a fixed interval that still finds
    ///   nothing falls back to the speed-limit estimate.
    pub fn get_travel_times(&self, spq: &Spq) -> TravelTimes {
        self.get_travel_times_with(spq, &mut SearchScratch::new())
    }

    /// [`SntIndex::get_travel_times`] through a per-query
    /// [`SearchScratch`]: the backward search reuses the scratch's buffers
    /// and suffix cache (sub-path and widened re-dispatches of σ skip the
    /// wavelet descent entirely). Byte-identical results.
    pub fn get_travel_times_with(&self, spq: &Spq, scratch: &mut SearchScratch) -> TravelTimes {
        scratch.trace.index_queries += 1;
        let start = scratch.trace.timing.then(std::time::Instant::now);
        let out = self.get_travel_times_inner(spq, scratch);
        if let Some(t0) = start {
            scratch.trace.search_ns += t0.elapsed().as_nanos() as u64;
        }
        out
    }

    fn get_travel_times_inner(&self, spq: &Spq, scratch: &mut SearchScratch) -> TravelTimes {
        scratch.ensure(self.scratch_id, self.mutation_stamp);
        self.fill_ranges(&spq.path, scratch);
        let ranges: &[IsaRange] = &scratch.ranges;
        let single = spq.path.len() == 1;
        // Procedure 5, line 13: one inline value — no heap churn on the
        // estimate paths (σ's terminal fallback takes them constantly).
        let estimate = || TravelTimes {
            values: TtValues::one(self.estimate_tt[spq.path.first().index()]),
            fallback: true,
        };
        if ranges.iter().all(|r| r.is_empty()) && !self.hot.traverses(&spq.path) {
            // Procedure 5 returns ∅ here; for the terminal fallback query
            // (single segment, fixed interval) that would strand the
            // splitter, so line 13's estimate applies directly.
            if single && !spq.interval.is_periodic() {
                return estimate();
            }
            return TravelTimes::empty();
        }
        // Single-segment queries collect their values during the build
        // scan (the probe scan would revisit the same leaves); see
        // `build_map`.
        let mut collected: Vec<f64> = Vec::new();
        let (map, first_lo) = self.build_map(spq, ranges, single.then_some(&mut collected));
        if let Some(beta) = spq.beta {
            if (map.len() as u32) < beta && spq.interval.is_periodic() {
                return TravelTimes::empty();
            }
        }
        let values = if single {
            collected
        } else {
            self.probe_map(spq, &map, first_lo)
        };
        if values.is_empty() && single && !spq.interval.is_periodic() {
            return estimate();
        }
        TravelTimes {
            values: values.into(),
            fallback: false,
        }
    }

    /// Exact count of traversals matching all SPQ predicates, capped at
    /// `cap` (σ_L's `|T^{P₁}| ≥ β` test and the q-error ground truth; pass
    /// `u32::MAX` for the uncapped cardinality).
    pub fn count_matching(&self, spq: &Spq, cap: u32) -> usize {
        self.count_matching_with(spq, cap, &mut SearchScratch::new())
    }

    /// [`SntIndex::count_matching`] through a per-query [`SearchScratch`].
    pub fn count_matching_with(&self, spq: &Spq, cap: u32, scratch: &mut SearchScratch) -> usize {
        scratch.trace.index_queries += 1;
        let start = scratch.trace.timing.then(std::time::Instant::now);
        let out = self.count_matching_inner(spq, cap, scratch);
        if let Some(t0) = start {
            scratch.trace.search_ns += t0.elapsed().as_nanos() as u64;
        }
        out
    }

    fn count_matching_inner(&self, spq: &Spq, cap: u32, scratch: &mut SearchScratch) -> usize {
        scratch.ensure(self.scratch_id, self.mutation_stamp);
        self.fill_ranges(&spq.path, scratch);
        let ranges: &[IsaRange] = &scratch.ranges;
        if ranges.iter().all(|r| r.is_empty()) && !self.hot.traverses(&spq.path) {
            return 0;
        }
        let first = spq.path.first();
        let Some((kmin, kmax)) = self.edge_bounds(first) else {
            return 0;
        };
        let mut n = 0usize;
        let _ = spq.interval.for_each_window(kmin, kmax, &mut |lo, hi| {
            self.scan_merged(first, lo, hi, &mut |r, is_hot| {
                let on_path = if is_hot {
                    self.hot.leaf_matches(r, &spq.path)
                } else {
                    ranges[r.partition as usize].contains(r.isa)
                };
                if on_path && self.passes_filter(spq, r.traj) {
                    n += 1;
                    if n >= cap as usize {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })
        });
        n
    }

    /// Number of trajectories currently indexed.
    pub fn num_trajectories(&self) -> usize {
        self.user_table.len()
    }

    /// Appends all trajectories of `set` with ids `≥ num_trajectories()` as
    /// one new temporal partition — the batch-update path that temporal
    /// partitioning exists for (paper, Section 4.3.2): the new batch gets
    /// its own FM-index, existing partitions' succinct structures are left
    /// untouched, and the new leaves are appended to the temporal forest
    /// (an append-only operation on CSS-trees, ordinary inserts on
    /// B+-trees).
    ///
    /// Returns the number of trajectories appended (0 leaves the index
    /// unchanged).
    ///
    /// Batches whose time range slightly overlaps the indexed data are
    /// handled by merging the forest tails; β-capped answers remain
    /// identical to a from-scratch build because timestamp ties keep
    /// trajectory-id order either way.
    ///
    /// # Panics
    /// Panics if the partition id space (2¹⁶) is exhausted.
    pub fn append_batch(&mut self, set: &TrajectorySet) -> usize {
        let from = self.num_trajectories();
        if set.len() <= from {
            return 0;
        }
        let batch: Vec<&tthr_trajectory::Trajectory> = (from as u32..set.len() as u32)
            .map(|id| set.get(tthr_trajectory::TrajId(id)))
            .collect();
        self.append_trajectories(&batch)
    }

    /// Appends a batch of trajectories as one new temporal partition,
    /// assigning them the next dense ids `num_trajectories()..` — the ids
    /// embedded in the [`Trajectory`](tthr_trajectory::Trajectory) values
    /// are ignored. This is the primitive behind [`SntIndex::append_batch`]
    /// and the write-ahead-log replay path
    /// ([`SntIndex::append_trajectory_batch`]).
    ///
    /// # Panics
    /// Panics if the partition id space (2¹⁶) is exhausted.
    pub fn append_trajectories(&mut self, batch: &[&tthr_trajectory::Trajectory]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        // Once the hot tail is non-empty, later appends must land *after*
        // it (batches seal strictly in absorb order), so the direct path
        // delegates — the two write paths stay interchangeable mid-stream.
        if !self.hot.is_empty() {
            return self.absorb_trajectories(batch);
        }
        let pending = self.admit(batch.iter().map(|tr| (*tr).clone()).collect());
        self.seal_batch(pending);
        self.mutation_stamp += 1;
        batch.len()
    }

    /// Absorbs a batch into the mutable hot tail — the cheap write path.
    /// Trajectories get the next dense ids and are queryable immediately,
    /// byte-identically to [`SntIndex::append_trajectories`], but no
    /// FM-index is built until [`SntIndex::compact`] seals the tail.
    /// Returns the number of trajectories absorbed.
    ///
    /// # Panics
    /// Panics if the hot batch id space (2¹⁶ − 1) is exhausted before a
    /// compaction runs.
    pub fn absorb_trajectories(&mut self, batch: &[&tthr_trajectory::Trajectory]) -> usize {
        self.absorb_trajectories_owned(batch.iter().map(|tr| (*tr).clone()).collect())
    }

    /// [`SntIndex::absorb_trajectories`] taking ownership — the hot tail
    /// keeps the trajectories anyway, so a caller holding an owned
    /// prepared batch (the service's group-commit path) skips the clone.
    pub fn absorb_trajectories_owned(&mut self, batch: Vec<tthr_trajectory::Trajectory>) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let absorbed = batch.len();
        let pending = self.admit(batch);
        let num_edges = self.estimate_tt.len();
        self.hot.absorb(pending, num_edges);
        self.mutation_stamp += 1;
        absorbed
    }

    /// Shared admission bookkeeping for both write paths: assigns the next
    /// dense ids, folds the batch into `data_min`/`data_max` and the user
    /// table, and builds the pending [`HotBatch`].
    fn admit(&mut self, trajs: Vec<tthr_trajectory::Trajectory>) -> HotBatch {
        let from = self.num_trajectories() as u32;
        for tr in &trajs {
            for entry in tr.entries() {
                self.data_max = self.data_max.max(entry.enter_time);
            }
            self.data_min = self.data_min.min(tr.start_time());
            self.user_table.push(tr.user());
        }
        let tod_bucket = self.tod.as_ref().map(|t| t.bucket_secs);
        HotBatch::build(from, trajs, self.estimate_tt.len(), tod_bucket)
    }

    /// Seals one pending batch as its own immutable partition — the exact
    /// construction direct appends have always used, so the sealed state is
    /// byte-identical to an index that appended the batch directly
    /// (identical FM partition, forest leaves, and ToD row).
    ///
    /// # Panics
    /// Panics if the partition id space (2¹⁶) is exhausted.
    fn seal_batch(&mut self, mut batch: HotBatch) {
        let hists = batch.take_hists();
        let HotBatch {
            first_id,
            trajs,
            entries,
            ..
        } = batch;
        let w = self.partitions.len();
        assert!(w < u16::MAX as usize, "partition id space exhausted");

        // FM-index over the batch's own trajectory string.
        let sigma = self.estimate_tt.len() as u32 + 1;
        let (txt, starts) = text::build_text(trajs.iter());
        let (fm, isa) = FmVariant::build(self.config.wavelet, &txt, sigma);

        // Collect the batch's leaves per edge, then append in time order.
        let num_edges = self.estimate_tt.len();
        let mut per_edge: Vec<Vec<LeafEntry>> = vec![Vec::new(); num_edges];
        for (gi, tr) in trajs.iter().enumerate() {
            let id = first_id + gi as u32;
            let base = starts[gi];
            let mut aggregate = 0.0;
            for (k, entry) in tr.entries().iter().enumerate() {
                aggregate += entry.travel_time;
                per_edge[entry.edge.index()].push(LeafEntry {
                    time: entry.enter_time,
                    aggregate,
                    travel_time: entry.travel_time,
                    isa: isa[base + k],
                    traj: id,
                    seq: k as u32,
                    partition: w as u16,
                });
            }
        }
        self.total_entries += entries;
        if let Some(tod) = &mut self.tod {
            // The batch's ToD row — the same per-entry adds, in the same
            // order, the direct path used to make here.
            tod.hists.push(hists);
        }
        for (edge_idx, mut leaves) in per_edge.into_iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            leaves.sort_by_key(|l| l.time);
            self.forest.append(edge_idx, leaves);
        }
        self.partitions.push(fm);
    }

    /// The pending hot batches as raw `(first_id, trajectories)` payloads
    /// (the snapshot wire form — lanes and histograms are rebuilt on
    /// restore).
    pub(crate) fn hot_snapshot_batches(&self) -> Vec<(u32, &[tthr_trajectory::Trajectory])> {
        self.hot
            .batches()
            .iter()
            .map(|b| (b.first_id, b.trajs.as_slice()))
            .collect()
    }

    /// Re-absorbs one snapshot hot batch during restore: the user table
    /// and data span already cover it, so only the tail state is rebuilt.
    pub(crate) fn restore_hot_batch(
        &mut self,
        first_id: u32,
        trajs: Vec<tthr_trajectory::Trajectory>,
    ) {
        let tod_bucket = self.tod.as_ref().map(|t| t.bucket_secs);
        let batch = HotBatch::build(first_id, trajs, self.estimate_tt.len(), tod_bucket);
        let num_edges = self.estimate_tt.len();
        self.hot.absorb(batch, num_edges);
        self.mutation_stamp += 1;
    }

    /// Current hot-tail accounting.
    pub fn hot_stats(&self) -> HotStats {
        HotStats {
            batches: self.hot.num_batches(),
            entries: self.hot.num_entries(),
            bytes: self.hot.size_bytes(),
        }
    }

    /// Compaction: seals every pending hot batch into its own immutable
    /// partition (in absorb order — reproducing exactly the state direct
    /// appends would have built), then applies the retention horizon if
    /// one is given. Queries before and after a compaction with no horizon
    /// answer byte-identically; only the representation moves.
    pub fn compact(&mut self, retention_horizon: Option<Timestamp>) -> CompactionOutcome {
        let mut out = CompactionOutcome::default();
        for batch in self.hot.drain_batches() {
            out.sealed_batches += 1;
            out.sealed_entries += batch.entries;
            self.seal_batch(batch);
        }
        if let Some(horizon) = retention_horizon {
            let (parts, entries) = self.apply_retention(horizon);
            out.dropped_partitions = parts;
            out.dropped_entries = entries;
        }
        if out.changed() {
            self.mutation_stamp += 1;
        }
        out
    }

    /// Drops every immutable partition whose newest leaf lies strictly
    /// before `horizon` — partition-granular retention: a batch expires
    /// only once *every* trajectory in it has its last timestamp behind
    /// the horizon, so nothing visible is ever half-dropped. Surviving
    /// partitions are renumbered densely and the forest is rebuilt on the
    /// filtered leaf sequence (relative order — including timestamp-tie
    /// order — is preserved, so answers match an index that only ever
    /// appended the surviving batches). The user table keeps its full
    /// dense id space (8 bytes per expired trajectory) so global ids
    /// never shift.
    fn apply_retention(&mut self, horizon: Timestamp) -> (usize, usize) {
        let num_parts = self.partitions.len();
        if num_parts == 0 {
            return (0, 0);
        }
        let mut max_time: Vec<Option<i64>> = vec![None; num_parts];
        let mut part_entries: Vec<usize> = vec![0; num_parts];
        self.forest.for_each_leaf(&mut |l| {
            let p = l.partition as usize;
            max_time[p] = Some(max_time[p].map_or(l.time, |m| m.max(l.time)));
            part_entries[p] += 1;
        });
        let drop: Vec<bool> = max_time
            .iter()
            .map(|m| m.is_some_and(|m| m < horizon))
            .collect();
        if !drop.iter().any(|&d| d) {
            return (0, 0);
        }
        let mut remap: Vec<u16> = vec![u16::MAX; num_parts];
        let mut next = 0u16;
        let mut dropped_parts = 0usize;
        let mut dropped_entries = 0usize;
        for (p, &dropped) in drop.iter().enumerate() {
            if dropped {
                dropped_parts += 1;
                dropped_entries += part_entries[p];
            } else {
                remap[p] = next;
                next += 1;
            }
        }
        let mut p = 0;
        self.partitions.retain(|_| {
            let keep = !drop[p];
            p += 1;
            keep
        });
        if let Some(tod) = &mut self.tod {
            let mut p = 0;
            tod.hists.retain(|_| {
                let keep = !drop[p];
                p += 1;
                keep
            });
        }
        self.forest
            .retain_remap(&|l| !drop[l.partition as usize], &|mut l| {
                l.partition = remap[l.partition as usize];
                l
            });
        self.total_entries -= dropped_entries;
        // data_min tracks the oldest *retained* leaf (data_max stays — a
        // high-water mark). With nothing left, the old floor is harmless:
        // every scan bound comes from the now-empty forest.
        let mut min_time = i64::MAX;
        self.forest
            .for_each_leaf(&mut |l| min_time = min_time.min(l.time));
        if min_time != i64::MAX {
            self.data_min = min_time;
        }
        (dropped_parts, dropped_entries)
    }

    /// Memory accounting for the Figure 10 experiments.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport {
            counts_bytes: self.partitions.iter().map(|p| p.counts_size_bytes()).sum(),
            wavelet_bytes: self.partitions.iter().map(|p| p.wavelet_size_bytes()).sum(),
            user_bytes: self.user_table.len() * std::mem::size_of::<UserId>(),
            forest_bytes: self.forest.size_bytes(),
            forest_logical_bytes: self.total_entries * LeafEntry::logical_size(true),
            forest_logical_bytes_no_partition: self.total_entries * LeafEntry::logical_size(false),
            tod_bytes: self.tod.as_ref().map(|t| t.size_bytes()).unwrap_or(0),
            total_entries: self.total_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::ControlFlow;
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_E, EDGE_F};
    use tthr_network::Path;
    use tthr_trajectory::examples::example_trajectories;
    use tthr_trajectory::{TrajId, UserId};

    fn index() -> SntIndex {
        SntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
        )
    }

    #[test]
    fn figure_4_temporal_index_of_segment_a() {
        // The paper's Figure 4: the temporal index Φ_A maps each entry
        // timestamp to (isa, d, TT, a, seq). All four example trajectories
        // enter A first (seq 0, a = TT), at t = 0, 2, 4, 6; their ISA
        // values are the ranks of the suffixes starting at text positions
        // 0, 4, 9, 13 of ABE$ACDE$ABF$ABE$ — 5, 7, 6, 4 (Figure 3).
        let idx = index();
        let phi_a = idx.temporal(EDGE_A);
        assert_eq!(phi_a.len(), 4);
        let mut rows = Vec::new();
        let _ = phi_a.scan_range(i64::MIN, i64::MAX, &mut |r| {
            rows.push((r.time, r.isa, r.traj, r.travel_time, r.aggregate, r.seq));
            ControlFlow::Continue(())
        });
        assert_eq!(
            rows,
            vec![
                (0, 5, 0, 3.0, 3.0, 0),
                (2, 7, 1, 4.0, 4.0, 0),
                (4, 6, 2, 3.0, 3.0, 0),
                (6, 4, 3, 3.0, 3.0, 0),
            ]
        );
    }

    #[test]
    fn aggregates_allow_two_scan_retrieval() {
        // Dur(tr1, ⟨A,C,D,E⟩) = a_3 − (a_0 − TT_0) = 15 − (4 − 4) = 15,
        // read off E's leaf (a = 15) and A's leaf (antecedent 0).
        let idx = index();
        let phi_e = idx.temporal(EDGE_E);
        let mut tr1_leaf = None;
        let _ = phi_e.scan_range(i64::MIN, i64::MAX, &mut |r| {
            if r.traj == 1 {
                tr1_leaf = Some(*r);
            }
            ControlFlow::Continue(())
        });
        let leaf = tr1_leaf.expect("tr1 traverses E");
        assert_eq!(leaf.aggregate, 15.0);
        assert_eq!(leaf.seq, 3);
        assert_eq!(leaf.travel_time, 5.0);
    }

    #[test]
    fn section_2_3_example_queries() {
        let idx = index();
        // Q = spq(⟨A,B,E⟩, [0,15), u = u1, 2) → {11, 10}.
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        )
        .with_user(UserId(1))
        .with_beta(2);
        assert_eq!(idx.get_travel_times(&q).sorted(), vec![10.0, 11.0]);
        // Q1 = spq(⟨A,B⟩, [0,15), ∅, 3) → {6, 6, 7} and
        // Q2 = spq(⟨E⟩, [0,15), ∅, 3) → {4, 4, 5}.
        let q1 = Spq::new(Path::new(vec![EDGE_A, EDGE_B]), TimeInterval::fixed(0, 15)).with_beta(3);
        assert_eq!(idx.get_travel_times(&q1).sorted(), vec![6.0, 6.0, 7.0]);
        let q2 = Spq::new(Path::new(vec![EDGE_E]), TimeInterval::fixed(0, 15)).with_beta(3);
        assert_eq!(idx.get_travel_times(&q2).sorted(), vec![4.0, 4.0, 5.0]);
    }

    #[test]
    fn isa_ranges_match_figure_3() {
        let idx = index();
        let ra = idx.isa_ranges(&Path::new(vec![EDGE_A]));
        assert_eq!(ra.len(), 1, "FULL config has one partition");
        assert_eq!((ra[0].start, ra[0].end), (4, 8));
        let rab = idx.isa_ranges(&Path::new(vec![EDGE_A, EDGE_B]));
        assert_eq!((rab[0].start, rab[0].end), (4, 7));
    }

    #[test]
    fn periodic_beta_miss_returns_empty_but_fixed_does_not() {
        let idx = index();
        // Only one trajectory (tr2) traverses F.
        let periodic =
            Spq::new(Path::new(vec![EDGE_F]), TimeInterval::periodic(0, 900)).with_beta(3);
        assert!(idx.get_travel_times(&periodic).is_empty());
        // A fixed interval is processed regardless of β (Procedure 5, l. 7).
        let fixed = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::fixed(0, 100)).with_beta(3);
        let res = idx.get_travel_times(&fixed);
        assert_eq!(res.sorted(), vec![6.0]);
        assert!(!res.fallback);
    }

    #[test]
    fn speed_limit_fallback_for_dataless_segment() {
        // An index over a single trajectory that never touches F: the
        // fixed-interval fallback answers with estimateTT(F) = 36 s.
        let net = example_network();
        let mut set = tthr_trajectory::TrajectorySet::new();
        set.push(
            UserId(0),
            vec![tthr_trajectory::TrajEntry::new(EDGE_A, 0, 3.0)],
        )
        .unwrap();
        let idx = SntIndex::build(&net, &set, SntConfig::default());
        let q = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::fixed(0, 100));
        let res = idx.get_travel_times(&q);
        assert!(res.fallback);
        assert!((res.values[0] - 36.0).abs() < 0.05);
        // But a periodic query on the same segment stays empty (σ must
        // keep relaxing it).
        let qp = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::periodic(0, 900));
        assert!(idx.get_travel_times(&qp).is_empty());
    }

    #[test]
    fn user_container_maps_ids() {
        let idx = index();
        assert_eq!(idx.user_of(0), UserId(1));
        assert_eq!(idx.user_of(1), UserId(2));
        assert_eq!(idx.user_of(2), UserId(2));
        assert_eq!(idx.user_of(3), UserId(1));
    }

    #[test]
    fn exclusion_is_honoured_in_counts() {
        let idx = index();
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 100),
        );
        assert_eq!(idx.count_matching(&q, u32::MAX), 2);
        let q_excl = q.without_trajectory(TrajId(0));
        assert_eq!(idx.count_matching(&q_excl, u32::MAX), 1);
    }

    #[test]
    fn memory_report_accounts_all_components() {
        let idx = index();
        let m = idx.memory_report();
        assert_eq!(m.total_entries, 13);
        assert_eq!(m.forest_logical_bytes, 13 * LeafEntry::logical_size(true));
        assert!(m.wavelet_bytes > 0);
        assert!(m.counts_bytes > 0);
        assert!(m.user_bytes > 0);
        assert!(m.tod_bytes > 0, "default config builds the ToD store");
    }

    #[test]
    fn scratch_suffix_hits_match_fresh_searches() {
        let idx = index();
        let mut scratch = SearchScratch::new();
        let abe = Path::new(vec![EDGE_A, EDGE_B, EDGE_E]);
        // Seed the suffix cache with the full path…
        let full: Vec<IsaRange> = idx.isa_ranges_with(&abe, &mut scratch).to_vec();
        assert_eq!(full, idx.isa_ranges(&abe));
        assert_eq!(scratch.cached_searches(), 1);
        // …then every suffix sub-path must answer from it, identically.
        for sub in [
            Path::new(vec![EDGE_B, EDGE_E]),
            Path::new(vec![EDGE_E]),
            abe.clone(),
        ] {
            let got: Vec<IsaRange> = idx.isa_ranges_with(&sub, &mut scratch).to_vec();
            assert_eq!(got, idx.isa_ranges(&sub), "suffix {sub:?}");
            assert_eq!(scratch.cached_searches(), 1, "answered from cache");
        }
        // A non-suffix path is a fresh search.
        let ab = Path::new(vec![EDGE_A, EDGE_B]);
        assert_eq!(
            idx.isa_ranges_with(&ab, &mut scratch).to_vec(),
            idx.isa_ranges(&ab)
        );
        assert_eq!(scratch.cached_searches(), 2);
    }

    #[test]
    fn trace_attributes_scratch_hits_and_rank_work() {
        let idx = index();
        let mut scratch = SearchScratch::new();
        let abe = Path::new(vec![EDGE_A, EDGE_B, EDGE_E]);
        let q = Spq::new(abe.clone(), TimeInterval::fixed(0, 100)).with_beta(2);

        let baseline = idx.get_travel_times(&q);
        let r = idx.get_travel_times_with(&q, &mut scratch);
        assert_eq!(
            r.sorted(),
            baseline.sorted(),
            "tracing never changes results"
        );
        let t = scratch.trace;
        assert_eq!(t.index_queries, 1);
        assert_eq!(t.scratch_misses, 1, "first search is a miss");
        assert_eq!(t.scratch_hits, 0);
        assert_eq!(t.partitions_searched as usize, idx.num_partitions());
        assert_eq!(t.rank_ops, 3, "one rank per live symbol of ⟨A,B,E⟩");
        assert!(t.wavelet_nodes >= t.rank_ops, "each rank descends ≥ 1 node");
        assert_eq!(t.search_ns, 0, "timing is off by default");
        assert_eq!(t.shard_queries, 0, "no shard routing on a bare index");

        // A suffix sub-path answers from the scratch cache: hit, no ranks.
        let be = Spq::new(Path::new(vec![EDGE_B, EDGE_E]), TimeInterval::fixed(0, 100));
        let before = scratch.trace;
        let _ = idx.get_travel_times_with(&be, &mut scratch);
        let t = scratch.trace;
        assert_eq!(t.scratch_hits, before.scratch_hits + 1);
        assert_eq!(t.rank_ops, before.rank_ops, "cache hit ranks nothing");
        assert_eq!(t.index_queries, 2);

        // Timing, when requested, accumulates wall-clock nanoseconds.
        let mut timed = SearchScratch::new();
        timed.trace = QueryTrace::timed();
        let _ = idx.get_travel_times_with(&q, &mut timed);
        assert!(timed.trace.search_ns > 0, "timed trace reads the clock");

        // count_matching traces the same way.
        let mut counting = SearchScratch::new();
        let n = idx.count_matching_with(&q, u32::MAX, &mut counting);
        assert_eq!(n, idx.count_matching(&q, u32::MAX));
        assert_eq!(counting.trace.index_queries, 1);
        assert_eq!(counting.trace.scratch_misses, 1);
    }

    #[test]
    fn scratch_invalidates_across_appends() {
        let net = example_network();
        let set = example_trajectories();
        let mut idx = SntIndex::build(&net, &set, SntConfig::default());
        let mut scratch = SearchScratch::new();
        let e = Path::new(vec![EDGE_E]);
        let before: Vec<IsaRange> = idx.isa_ranges_with(&e, &mut scratch).to_vec();

        // Append a new trajectory traversing E: the scratch, reused across
        // the append, must drop its cached states and re-search.
        let mut grown = set.clone();
        grown
            .push(
                UserId(7),
                vec![tthr_trajectory::TrajEntry::new(EDGE_E, 100, 4.0)],
            )
            .unwrap();
        idx.append_batch(&grown);
        let after: Vec<IsaRange> = idx.isa_ranges_with(&e, &mut scratch).to_vec();
        assert_eq!(after, idx.isa_ranges(&e), "post-append ranges are fresh");
        assert_eq!(after.len(), 2, "appended batch adds a partition");
        assert_ne!(before, after);
    }

    #[test]
    fn scratch_never_aliases_distinct_indexes() {
        // Two different indexes with the *same* trajectory count: one
        // shared scratch must re-search, not serve the other index's
        // cached states (each instance carries a process-unique id).
        let net = example_network();
        let full = example_trajectories();
        let mut swapped = tthr_trajectory::TrajectorySet::new();
        // Same number of trajectories, different traversals: drop E from
        // tr0's path and reuse the remaining examples verbatim.
        for (i, tr) in full.iter().enumerate() {
            let entries: Vec<_> = if i == 0 {
                tr.entries()[..2].to_vec()
            } else {
                tr.entries().to_vec()
            };
            swapped.push(tr.user(), entries).unwrap();
        }
        let a = SntIndex::build(&net, &full, SntConfig::default());
        let b = SntIndex::build(&net, &swapped, SntConfig::default());
        assert_eq!(a.num_trajectories(), b.num_trajectories());
        let abe = Path::new(vec![EDGE_A, EDGE_B, EDGE_E]);
        let mut scratch = SearchScratch::new();
        let from_a: Vec<IsaRange> = a.isa_ranges_with(&abe, &mut scratch).to_vec();
        let from_b: Vec<IsaRange> = b.isa_ranges_with(&abe, &mut scratch).to_vec();
        assert_eq!(from_a, a.isa_ranges(&abe));
        assert_eq!(from_b, b.isa_ranges(&abe));
        assert_ne!(from_a, from_b, "the two indexes answer differently");
    }

    #[test]
    fn travel_times_estimate_is_inline() {
        // The fallback estimate must not allocate: its TtValues compares
        // equal to the heap spelling but reports the same single value.
        let one = TtValues::one(36.0);
        assert_eq!(one, TtValues::from(vec![36.0]));
        assert_eq!(one.as_slice(), &[36.0]);
        assert_eq!(one.into_vec(), vec![36.0]);
        assert!(TtValues::EMPTY.is_empty());
        assert_eq!(TtValues::EMPTY.into_vec(), Vec::<f64>::new());
    }

    #[test]
    fn empty_index_answers_gracefully() {
        let net = example_network();
        let idx = SntIndex::build(
            &net,
            &tthr_trajectory::TrajectorySet::new(),
            SntConfig::default(),
        );
        assert_eq!(idx.num_partitions(), 1);
        let q = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::periodic(0, 900));
        assert!(idx.get_travel_times(&q).is_empty());
        let qf = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::fixed(0, 100));
        assert!(idx.get_travel_times(&qf).fallback);
    }
}

#[cfg(test)]
mod lifecycle_tests {
    //! The hot-tail equivalence invariant, pinned at the index level: an
    //! index with a non-empty hot tail must answer every query — travel
    //! times, counts, *and* every estimator mode — byte-identically to
    //! one that direct-appended the same batch schedule, and sealing the
    //! tail must reproduce the direct-append state down to the snapshot
    //! bytes.

    use super::*;
    use crate::cardinality::{estimate_cardinality, CardinalityMode};
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B};
    use tthr_network::{EdgeId, Path};
    use tthr_trajectory::examples::example_trajectories;
    use tthr_trajectory::{TrajEntry, TrajId, Trajectory, TrajectorySet, UserId};

    fn lcg(s: &mut u64) -> u64 {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 33
    }

    /// A deterministic batch of valid trajectories over the example
    /// network's six edges, entering within ~100 s of `first_time`.
    fn random_batch(s: &mut u64, first_time: i64, n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|_| {
                let len = 1 + (lcg(s) % 5) as usize;
                let mut t = first_time + (lcg(s) % 50) as i64;
                let mut entries = Vec::with_capacity(len);
                for _ in 0..len {
                    let e = EdgeId((lcg(s) % 6) as u32);
                    let tt = 1.0 + (lcg(s) % 80) as f64 / 8.0;
                    entries.push(TrajEntry::new(e, t, tt));
                    t += 1 + (lcg(s) % 9) as i64;
                }
                Trajectory::new(TrajId(0), UserId((lcg(s) % 3) as u32), entries).unwrap()
            })
            .collect()
    }

    /// Randomized-but-deterministic queries whose paths are sub-paths of
    /// applied trajectories (so answers are non-trivial).
    fn workload(all: &[Trajectory], s: &mut u64) -> Vec<Spq> {
        all.iter()
            .map(|tr| {
                let len = 1 + (lcg(s) as usize % tr.len().min(3));
                let start = lcg(s) as usize % (tr.len() - len + 1);
                let path = tr.path().sub_path(start..start + len);
                let enter = tr.entries()[start].enter_time;
                let interval = match lcg(s) % 4 {
                    0 => TimeInterval::fixed(0, i64::MAX / 4),
                    1 => TimeInterval::fixed(enter - 30, enter + 30),
                    2 => TimeInterval::periodic(enter.rem_euclid(86_400).min(86_000), 300),
                    _ => TimeInterval::periodic(0, 900),
                };
                let mut q = Spq::new(path, interval);
                if lcg(s).is_multiple_of(2) {
                    q = q.with_beta(1 + (lcg(s) % 4) as u32);
                }
                if lcg(s).is_multiple_of(4) {
                    q = q.with_user(tr.user());
                }
                q
            })
            .collect()
    }

    /// Byte-level equivalence on a workload: travel-time bit patterns in
    /// scan order, fallback flags, capped and uncapped counts, and every
    /// estimator mode's bit pattern.
    fn assert_identical(a: &SntIndex, b: &SntIndex, queries: &[Spq]) {
        assert_eq!(a.num_trajectories(), b.num_trajectories());
        for q in queries {
            let x = a.get_travel_times(q);
            let y = b.get_travel_times(q);
            let xb: Vec<u64> = x.values.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "travel times diverge: {q:?}");
            assert_eq!(x.fallback, y.fallback, "fallback diverges: {q:?}");
            assert_eq!(
                a.count_matching(q, u32::MAX),
                b.count_matching(q, u32::MAX),
                "uncapped count diverges: {q:?}"
            );
            assert_eq!(
                a.count_matching(q, 3),
                b.count_matching(q, 3),
                "capped count diverges: {q:?}"
            );
            assert_eq!(a.traversal_count(&q.path), b.traversal_count(&q.path));
            for mode in CardinalityMode::ALL {
                let ea = estimate_cardinality(a, q, mode);
                let eb = estimate_cardinality(b, q, mode);
                assert_eq!(ea.to_bits(), eb.to_bits(), "{mode:?} diverges: {q:?}");
            }
        }
    }

    fn configs() -> Vec<SntConfig> {
        vec![
            SntConfig::default(),
            SntConfig {
                tree: TreeKind::BPlus,
                ..SntConfig::default()
            },
            SntConfig {
                tod_bucket_secs: Some(600),
                ..SntConfig::default()
            },
            SntConfig {
                tree: TreeKind::BPlus,
                wavelet: WaveletKind::Matrix,
                tod_bucket_secs: Some(600),
                ..SntConfig::default()
            },
        ]
    }

    #[test]
    fn hot_tail_is_byte_identical_to_direct_appends() {
        for config in configs() {
            let net = example_network();
            let set = example_trajectories();
            let mut direct = SntIndex::build(&net, &set, config);
            let mut hot = SntIndex::build(&net, &set, config);
            let mut all: Vec<Trajectory> = (0..set.len())
                .map(|id| set.get(TrajId(id as u32)).clone())
                .collect();

            let mut s = 42u64;
            let mut queries = Vec::new();
            for b in 0..4i64 {
                // Overlapping time windows: hot leaves interleave (and tie)
                // with cold ones instead of appending past them.
                let batch = random_batch(&mut s, b * 40, 5);
                let refs: Vec<&Trajectory> = batch.iter().collect();
                assert_eq!(direct.append_trajectories(&refs), 5);
                assert_eq!(hot.absorb_trajectories(&refs), 5);
                all.extend(batch);
                queries = workload(&all, &mut s);
                assert_identical(&direct, &hot, &queries);
            }
            assert_eq!(hot.hot_stats().batches, 4);
            let absorbed: usize = all[set.len()..].iter().map(|t| t.len()).sum();
            assert_eq!(hot.hot_stats().entries, absorbed);

            // The hot tail survives a snapshot round trip (HOT section).
            let restored = SntIndex::from_snapshot_bytes(&hot.to_snapshot_bytes()).unwrap();
            assert_eq!(restored.hot_stats(), hot.hot_stats());
            assert_identical(&direct, &restored, &queries);

            // Sealing reproduces the direct-append state exactly.
            let out = hot.compact(None);
            assert_eq!(out.sealed_batches, 4);
            assert_eq!(out.dropped_partitions, 0);
            assert_eq!(hot.hot_stats(), HotStats::default());
            assert_eq!(
                hot.to_snapshot_bytes(),
                direct.to_snapshot_bytes(),
                "sealed snapshot differs from direct-append snapshot"
            );
            assert_identical(&direct, &hot, &queries);
        }
    }

    #[test]
    fn direct_append_after_absorb_joins_the_hot_tail() {
        // A mixed schedule — absorb, append, absorb — must order batches by
        // arrival: the direct append lands *after* the pending hot batch.
        let net = example_network();
        let set = example_trajectories();
        let mut mixed = SntIndex::build(&net, &set, SntConfig::default());
        let mut direct = SntIndex::build(&net, &set, SntConfig::default());
        let mut all: Vec<Trajectory> = (0..set.len())
            .map(|id| set.get(TrajId(id as u32)).clone())
            .collect();

        let mut s = 7u64;
        for (i, use_absorb) in [true, false, true].iter().enumerate() {
            let batch = random_batch(&mut s, i as i64 * 30, 4);
            let refs: Vec<&Trajectory> = batch.iter().collect();
            if *use_absorb {
                mixed.absorb_trajectories(&refs);
            } else {
                mixed.append_trajectories(&refs);
            }
            direct.append_trajectories(&refs);
            all.extend(batch);
        }
        assert_eq!(mixed.hot_stats().batches, 3, "the append must delegate");
        let queries = workload(&all, &mut s);
        assert_identical(&direct, &mixed, &queries);
        mixed.compact(None);
        assert_eq!(mixed.to_snapshot_bytes(), direct.to_snapshot_bytes());
    }

    #[test]
    fn retention_drops_expired_partitions() {
        let config = SntConfig {
            tod_bucket_secs: Some(600),
            ..SntConfig::default()
        };
        let net = example_network();
        let empty = TrajectorySet::new();
        let mut idx = SntIndex::build(&net, &empty, config);
        let mut s = 9u64;
        let old = random_batch(&mut s, 0, 4);
        let mid = random_batch(&mut s, 10_000, 4);
        let new = random_batch(&mut s, 20_000, 4);
        for batch in [&old, &mid, &new] {
            let refs: Vec<&Trajectory> = batch.iter().collect();
            idx.append_trajectories(&refs);
        }

        // Horizon between the old and mid batches: exactly the old batch's
        // partition expires (every trajectory in it ended long before).
        let out = idx.compact(Some(5_000));
        assert_eq!(out.dropped_partitions, 1);
        assert!(out.dropped_entries > 0);
        assert!(out.changed());
        // Expired trajectories keep their id slots: ids never shift.
        assert_eq!(idx.num_trajectories(), 12);

        // Suffix oracle: an index that only ever saw the surviving batches
        // (both keep the empty build partition, so partition structure —
        // which the Acc estimator modes read — lines up exactly).
        let mut oracle = SntIndex::build(&net, &empty, config);
        for batch in [&mid, &new] {
            let refs: Vec<&Trajectory> = batch.iter().collect();
            oracle.append_trajectories(&refs);
        }
        assert_eq!(idx.num_partitions(), oracle.num_partitions());
        let mut survivors: Vec<Trajectory> = mid.clone();
        survivors.extend(new.iter().cloned());
        for q in workload(&survivors, &mut s) {
            let x = idx.get_travel_times(&q);
            let y = oracle.get_travel_times(&q);
            let xb: Vec<u64> = x.values.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "retained index diverges from suffix oracle: {q:?}");
            assert_eq!(
                idx.count_matching(&q, u32::MAX),
                oracle.count_matching(&q, u32::MAX),
                "{q:?}"
            );
            for mode in CardinalityMode::ALL {
                assert_eq!(
                    estimate_cardinality(&idx, &q, mode).to_bits(),
                    estimate_cardinality(&oracle, &q, mode).to_bits(),
                    "{mode:?} {q:?}"
                );
            }
        }

        // Idempotent: a second compaction at the same horizon is a no-op.
        let again = idx.compact(Some(5_000));
        assert!(!again.changed());
    }

    #[test]
    fn retention_below_all_data_is_a_noop() {
        let mut idx = SntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
        );
        let before = idx.to_snapshot_bytes();
        let out = idx.compact(Some(i64::MIN));
        assert!(!out.changed());
        assert_eq!(idx.to_snapshot_bytes(), before);
    }

    #[test]
    fn compaction_invalidates_reused_scratches() {
        // Compaction adds partitions *without* changing the trajectory
        // count — a scratch stamped by trajectory count would serve stale
        // single-partition ISA ranges afterwards.
        let mut idx = SntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
        );
        let path = Path::new(vec![EDGE_A, EDGE_B]);
        let mut scratch = SearchScratch::new();
        assert_eq!(idx.isa_ranges_with(&path, &mut scratch).len(), 1);

        let tr = Trajectory::new(
            TrajId(0),
            UserId(9),
            vec![
                TrajEntry::new(EDGE_A, 50, 2.0),
                TrajEntry::new(EDGE_B, 52, 2.0),
            ],
        )
        .unwrap();
        idx.absorb_trajectories(&[&tr]);
        idx.compact(None);
        assert_eq!(
            idx.isa_ranges_with(&path, &mut scratch).len(),
            2,
            "stale scratch served pre-compaction ranges"
        );
        assert_eq!(idx.traversal_count(&path), 4);
    }
}
