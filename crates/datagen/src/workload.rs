//! Synthetic commuting workload (the ITSP data set stand-in).
//!
//! Every driver gets a home, a workplace, personal departure habits, a
//! personal driving style, and per-category route preferences. Weekdays
//! produce morning/evening commutes plus occasional errands; weekends
//! produce leisure trips (including summer-house visits). Travel times are
//! free-flow times scaled by a weekday rush-hour congestion profile,
//! per-traversal lognormal noise, and intersection turn delays — the three
//! effects that make path-level estimates beat segment-level ones.

use crate::network::SyntheticNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_shim::sample_lognormal;
use tthr_network::route::{Router, Weighting};
use tthr_network::{Category, EdgeId, RoadNetwork, Timestamp, VertexId, Zone, SECONDS_PER_DAY};
use tthr_trajectory::{TrajEntry, TrajId, TrajectorySet, UserId};

/// Minimal lognormal sampling without the `rand_distr` dependency.
mod rand_distr_shim {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Samples `exp(N(mu, sigma))` via Box–Muller.
    pub fn sample_lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }
}

/// Workload generator parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of drivers (the paper's ITSP set has 458 vehicles).
    pub num_drivers: usize,
    /// Simulated days (the ITSP set spans ~950).
    pub num_days: u32,
    /// Probability of a weekday errand trip.
    pub errand_probability: f64,
    /// Probability of a weekend leisure trip.
    pub weekend_trip_probability: f64,
    /// Lognormal σ of the per-traversal noise.
    pub noise_sigma: f64,
    /// Maximum turn delay at an intersection, in seconds.
    pub turn_penalty_max: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::medium()
    }
}

impl WorkloadConfig {
    /// Tiny workload for unit tests.
    pub fn small() -> Self {
        WorkloadConfig {
            seed: 7,
            num_drivers: 12,
            num_days: 21,
            errand_probability: 0.3,
            weekend_trip_probability: 0.5,
            noise_sigma: 0.12,
            turn_penalty_max: 8.0,
        }
    }

    /// Mid-size workload for integration tests and examples.
    pub fn medium() -> Self {
        WorkloadConfig {
            seed: 7,
            num_drivers: 120,
            num_days: 180,
            errand_probability: 0.35,
            weekend_trip_probability: 0.5,
            noise_sigma: 0.12,
            turn_penalty_max: 8.0,
        }
    }

    /// Paper-shaped workload for the benchmark harness (458 drivers,
    /// 2.5 years).
    pub fn large() -> Self {
        WorkloadConfig {
            seed: 7,
            num_drivers: 458,
            num_days: 912,
            errand_probability: 0.35,
            weekend_trip_probability: 0.5,
            noise_sigma: 0.12,
            turn_penalty_max: 8.0,
        }
    }
}

struct Driver {
    home: VertexId,
    work: VertexId,
    /// Personal departure habit, seconds of day.
    morning_sod: f64,
    evening_sod: f64,
    /// Personal speed factor (≈ lognormal around 1).
    speed_factor: f64,
    /// Extra personal factor on main roads (some drivers push on motorways,
    /// others don't) — what makes user filters informative out of town.
    main_road_factor: f64,
    home_work: Option<Vec<EdgeId>>,
    work_home: Option<Vec<EdgeId>>,
}

/// Weekday rush-hour congestion multiplier.
fn congestion_factor(sod: f64, weekday: bool, category: Category, zone: Zone) -> f64 {
    let bump = |center_h: f64, width_h: f64| {
        let d = (sod - center_h * 3600.0) / (width_h * 3600.0);
        (-0.5 * d * d).exp()
    };
    let load = if weekday {
        bump(7.75, 0.8) + bump(16.25, 1.0) + 0.25 * bump(12.5, 1.5)
    } else {
        0.4 * bump(13.0, 2.5)
    };
    let sensitivity = match (zone, category.is_main_road()) {
        (Zone::City, true) => 0.9,
        (Zone::City, false) => 0.6,
        (Zone::Rural, true) => 0.5,
        (Zone::Rural, false) => 0.25,
        _ => 0.2,
    };
    1.0 + sensitivity * load
}

/// Turn delay when moving from `prev` onto `next`: crossing or turning at
/// an intersection costs more the busier the road being entered or crossed.
fn turn_penalty(
    net: &RoadNetwork,
    rng: &mut StdRng,
    prev: EdgeId,
    next: EdgeId,
    max_penalty: f64,
    congestion: f64,
) -> f64 {
    let a = net.position(net.edge_from(prev));
    let b = net.position(net.edge_to(prev));
    let c = net.position(net.edge_to(next));
    // Straight-through needs |turn angle| near 0.
    let v1 = (b.x - a.x, b.y - a.y);
    let v2 = (c.x - b.x, c.y - b.y);
    let cross = v1.0 * v2.1 - v1.1 * v2.0;
    let dot = v1.0 * v2.0 + v1.1 * v2.1;
    let angle = cross.atan2(dot).abs();
    if angle < 0.3 && net.attrs(prev).category == net.attrs(next).category {
        return 0.0;
    }
    let base = (angle / std::f64::consts::PI) * max_penalty;
    let cat_weight = if net.attrs(next).category.is_main_road() {
        0.6 // entering a main road usually means yielding
    } else {
        1.0
    };
    rng.gen_range(0.3..1.0) * base * cat_weight * congestion
}

/// Generates the trajectory set for a synthetic network.
pub fn generate_workload(syn: &SyntheticNetwork, config: &WorkloadConfig) -> TrajectorySet {
    let net = &syn.network;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut router = Router::new(net);

    // --- Drivers ----------------------------------------------------------
    let mut drivers: Vec<Driver> = (0..config.num_drivers)
        .map(|_| {
            let home_city = rng.gen_range(0..syn.cities.len());
            let work_city = if syn.cities.len() > 1 && rng.gen_bool(0.6) {
                // Commuters crossing the corridors dominate the interesting
                // queries.
                let mut c = rng.gen_range(0..syn.cities.len());
                while c == home_city {
                    c = rng.gen_range(0..syn.cities.len());
                }
                c
            } else {
                home_city
            };
            let pick = |rng: &mut StdRng, city: usize| {
                let vs = &syn.cities[city].vertices;
                vs[rng.gen_range(0..vs.len())]
            };
            Driver {
                home: pick(&mut rng, home_city),
                work: pick(&mut rng, work_city),
                morning_sod: rng.gen_range(6.6..8.8) * 3600.0,
                evening_sod: rng.gen_range(15.4..17.6) * 3600.0,
                speed_factor: sample_lognormal(&mut rng, 0.0, 0.07).clamp(0.75, 1.3),
                main_road_factor: sample_lognormal(&mut rng, 0.0, 0.1).clamp(0.7, 1.4),
                home_work: None,
                work_home: None,
            }
        })
        .collect();

    // Pre-compute commute routes (they repeat every day).
    for d in &mut drivers {
        d.home_work = router
            .shortest_route(d.home, d.work, Weighting::TravelTime, f64::INFINITY)
            .map(|r| r.edges)
            .filter(|e| !e.is_empty());
        d.work_home = router
            .shortest_route(d.work, d.home, Weighting::TravelTime, f64::INFINITY)
            .map(|r| r.edges)
            .filter(|e| !e.is_empty());
    }

    // --- Trips ------------------------------------------------------------
    let mut set = TrajectorySet::new();
    for day in 0..config.num_days as i64 {
        let weekday = day % 7 < 5;
        for (di, driver) in drivers.iter().enumerate() {
            let user = UserId(di as u32);
            if weekday {
                if let Some(route) = driver.home_work.clone() {
                    let depart = day as f64 * SECONDS_PER_DAY as f64
                        + driver.morning_sod
                        + rng.gen_range(-480.0..480.0);
                    push_trip(
                        &mut set, net, &mut rng, config, driver, user, &route, depart,
                    );
                }
                if let Some(route) = driver.work_home.clone() {
                    let depart = day as f64 * SECONDS_PER_DAY as f64
                        + driver.evening_sod
                        + rng.gen_range(-600.0..600.0);
                    push_trip(
                        &mut set, net, &mut rng, config, driver, user, &route, depart,
                    );
                }
                if rng.gen_bool(config.errand_probability) {
                    if let Some(route) = random_route(syn, &mut rng, &mut router, driver.home) {
                        let depart =
                            day as f64 * SECONDS_PER_DAY as f64 + rng.gen_range(9.5..20.0) * 3600.0;
                        push_trip(
                            &mut set, net, &mut rng, config, driver, user, &route, depart,
                        );
                    }
                }
            } else if rng.gen_bool(config.weekend_trip_probability) {
                let dest = if !syn.summer_vertices.is_empty() && rng.gen_bool(0.4) {
                    syn.summer_vertices[rng.gen_range(0..syn.summer_vertices.len())]
                } else {
                    let city = rng.gen_range(0..syn.cities.len());
                    syn.cities[city].vertices[rng.gen_range(0..syn.cities[city].vertices.len())]
                };
                if let Some(route) = router
                    .shortest_route(driver.home, dest, Weighting::TravelTime, f64::INFINITY)
                    .map(|r| r.edges)
                    .filter(|e| !e.is_empty())
                {
                    let depart =
                        day as f64 * SECONDS_PER_DAY as f64 + rng.gen_range(9.0..17.0) * 3600.0;
                    push_trip(
                        &mut set, net, &mut rng, config, driver, user, &route, depart,
                    );
                }
            }
        }
    }
    set
}

/// A random errand route from `from` to a nearby vertex.
fn random_route(
    syn: &SyntheticNetwork,
    rng: &mut StdRng,
    router: &mut Router<'_>,
    from: VertexId,
) -> Option<Vec<EdgeId>> {
    let city = rng.gen_range(0..syn.cities.len());
    let to = syn.cities[city].vertices[rng.gen_range(0..syn.cities[city].vertices.len())];
    router
        .shortest_route(from, to, Weighting::TravelTime, f64::INFINITY)
        .map(|r| r.edges)
        .filter(|e| !e.is_empty())
}

/// Synthesizes traversal times along a route and appends the trajectory.
#[allow(clippy::too_many_arguments)]
fn push_trip(
    set: &mut TrajectorySet,
    net: &RoadNetwork,
    rng: &mut StdRng,
    config: &WorkloadConfig,
    driver: &Driver,
    user: UserId,
    route: &[EdgeId],
    depart: f64,
) {
    let mut t = depart;
    let mut prev_enter: Timestamp = Timestamp::MIN;
    let mut entries = Vec::with_capacity(route.len());
    let mut prev_edge: Option<EdgeId> = None;
    for &e in route {
        let attrs = net.attrs(e);
        let day = (t / SECONDS_PER_DAY as f64).floor() as i64;
        let sod = t - day as f64 * SECONDS_PER_DAY as f64;
        let weekday = day.rem_euclid(7) < 5;
        let congestion = congestion_factor(sod, weekday, attrs.category, attrs.zone);

        // Free-flow speed: slightly below the limit, personal style applied.
        let mut speed_kmh = net.effective_speed_limit_kmh(e) * 0.92 * driver.speed_factor;
        if attrs.category.is_main_road() {
            speed_kmh *= driver.main_road_factor;
        }
        let base = 3.6 * attrs.length_m / speed_kmh;
        let noise = sample_lognormal(rng, 0.0, config.noise_sigma);
        let turn = match prev_edge {
            Some(p) => turn_penalty(net, rng, p, e, config.turn_penalty_max, congestion),
            None => 0.0,
        };
        let tt = (base * congestion * noise + turn).max(0.3);

        let enter = (t.floor() as Timestamp).max(prev_enter + 1);
        entries.push(TrajEntry::new(e, enter, tt));
        prev_enter = enter;
        t += tt;
        prev_edge = Some(e);
    }
    if !entries.is_empty() {
        set.push(user, entries)
            .expect("synthesized trips are valid");
    }
}

/// Samples the paper's query trajectories: a `fraction` sample of all
/// trajectories that start after the median timestamp (so at least half the
/// history precedes every query) and have at least `min_len` segments
/// (Section 6).
pub fn sample_query_trajectories(
    set: &TrajectorySet,
    fraction: f64,
    min_len: usize,
    seed: u64,
) -> Vec<TrajId> {
    let Some(median) = set.median_start_time() else {
        return Vec::new();
    };
    let mut rng = StdRng::seed_from_u64(seed);
    set.iter()
        .filter(|tr| tr.start_time() > median && tr.len() >= min_len)
        .filter(|_| rng.gen_bool(fraction.clamp(0.0, 1.0)))
        .map(|tr| tr.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{generate_network, NetworkConfig};

    fn small() -> (SyntheticNetwork, TrajectorySet) {
        let syn = generate_network(&NetworkConfig::small());
        let set = generate_workload(&syn, &WorkloadConfig::small());
        (syn, set)
    }

    #[test]
    fn workload_produces_valid_trajectories() {
        let (syn, set) = small();
        assert!(set.len() > 200, "trajectories: {}", set.len());
        assert!(set.total_traversals() > 5_000);
        // Every trajectory path is traversable on the network.
        for tr in set.iter().take(500) {
            assert!(syn.network.validate_path(&tr.path()), "{:?}", tr.id());
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let syn = generate_network(&NetworkConfig::small());
        let a = generate_workload(&syn, &WorkloadConfig::small());
        let b = generate_workload(&syn, &WorkloadConfig::small());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn rush_hour_is_slower_than_night() {
        let (_, set) = small();
        // Compare average traversal times of city segments in the morning
        // rush vs at night, across the whole workload.
        let mut rush = (0.0, 0usize);
        let mut night = (0.0, 0usize);
        for tr in &set {
            for e in tr.entries() {
                let sod = e.enter_time.rem_euclid(SECONDS_PER_DAY);
                let per_meter = e.travel_time; // same segments dominate both
                if (7 * 3600..9 * 3600).contains(&sod) {
                    rush = (rush.0 + per_meter, rush.1 + 1);
                } else if !(6 * 3600..21 * 3600).contains(&sod) {
                    night = (night.0 + per_meter, night.1 + 1);
                }
            }
        }
        if rush.1 > 100 && night.1 > 100 {
            assert!(
                rush.0 / rush.1 as f64 > night.0 / night.1 as f64,
                "rush-hour traversals must be slower on average"
            );
        }
    }

    #[test]
    fn drivers_have_distinct_styles() {
        let (_, set) = small();
        // The same commute path driven by different drivers should differ
        // more across drivers than within one driver's own trips. Proxy
        // check: per-driver mean trip duration varies.
        let mut per_user: std::collections::HashMap<u32, (f64, usize)> = Default::default();
        for tr in &set {
            let e = per_user.entry(tr.user().0).or_default();
            e.0 += tr.total_duration() / tr.len() as f64;
            e.1 += 1;
        }
        let means: Vec<f64> = per_user.values().map(|(s, n)| s / *n as f64).collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo > 1.05, "driver styles should differ: {lo} vs {hi}");
    }

    #[test]
    fn query_sampling_respects_median_and_length() {
        let (_, set) = small();
        let ids = sample_query_trajectories(&set, 0.5, 10, 99);
        assert!(!ids.is_empty());
        let median = set.median_start_time().unwrap();
        for id in &ids {
            let tr = set.get(*id);
            assert!(tr.start_time() > median);
            assert!(tr.len() >= 10);
        }
        // Deterministic given the seed.
        assert_eq!(ids, sample_query_trajectories(&set, 0.5, 10, 99));
    }
}
