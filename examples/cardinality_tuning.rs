//! Cardinality-estimator tuning: compares the five estimator modes of
//! Section 4.4 on q-error and on their effect on query latency, mirroring
//! the paper's Figure 11 at example scale.
//!
//! Run with: `cargo run --release --example cardinality_tuning`

use std::time::Instant;
use tthr::core::{
    estimate_cardinality, CardinalityMode, QueryEngine, QueryEngineConfig, SntConfig, SntIndex,
    Spq, TimeInterval,
};
use tthr::datagen::{
    generate_network, generate_workload, sample_query_trajectories, NetworkConfig, WorkloadConfig,
};
use tthr::metrics::{mean, q_error};
use tthr::trajectory::Trajectory;

fn main() {
    let syn = generate_network(&NetworkConfig::small());
    let set = generate_workload(
        &syn,
        &WorkloadConfig {
            num_drivers: 40,
            num_days: 60,
            ..WorkloadConfig::small()
        },
    );
    let index = SntIndex::build(&syn.network, &set, SntConfig::default());
    let queries: Vec<&Trajectory> = sample_query_trajectories(&set, 0.3, 10, 3)
        .into_iter()
        .take(200)
        .map(|id| set.get(id))
        .collect();
    println!(
        "{} trajectories indexed, {} estimator probe queries\n",
        set.len(),
        queries.len()
    );

    // --- q-error per estimator mode (Figure 11a) ---------------------------
    println!("{:<10} {:>12} {:>12}", "mode", "median q", "mean q");
    for mode in CardinalityMode::ALL {
        let mut qs: Vec<f64> = Vec::new();
        for tr in &queries {
            // Mix periodic and fixed intervals, as both selectivity paths
            // matter.
            for interval in [
                TimeInterval::periodic_around(tr.start_time(), 1800),
                TimeInterval::fixed(0, tr.start_time()),
            ] {
                let spq = Spq::new(tr.path(), interval);
                let est = estimate_cardinality(&index, &spq, mode);
                let actual = index.count_matching(&spq, u32::MAX) as u64;
                qs.push(q_error(est, actual));
            }
        }
        qs.sort_by(f64::total_cmp);
        println!(
            "{:<10} {:>12.2} {:>12.2}",
            mode.name(),
            qs[qs.len() / 2],
            mean(qs.iter().copied())
        );
    }

    // --- Effect on trip-query latency (Figure 11b) -------------------------
    println!(
        "\n{:<12} {:>12} {:>16}",
        "estimator", "ms/query", "index scans"
    );
    for estimator in [
        None,
        Some(CardinalityMode::CssFast),
        Some(CardinalityMode::CssAcc),
    ] {
        let engine = QueryEngine::new(
            &index,
            &syn.network,
            QueryEngineConfig {
                estimator,
                ..QueryEngineConfig::default()
            },
        );
        let mut scans = 0usize;
        let start = Instant::now();
        for tr in &queries {
            let q = Spq::new(
                tr.path(),
                TimeInterval::periodic_around(tr.start_time(), 900),
            )
            .with_beta(20)
            .without_trajectory(tr.id());
            scans += engine.trip_query(&q).stats.index_queries;
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let name = estimator.map(|m| m.name()).unwrap_or("none");
        println!("{name:<12} {ms:>12.3} {scans:>16}");
    }
    println!("\nestimator gating skips temporal scans for sub-queries that cannot\nreach β, trading a cheap ISA-range + histogram probe for them");
}
