//! Cluster client tier: pooled binary-protocol connections to shard
//! nodes, and a scatter-gather router that answers trip queries over a
//! shard-per-process cluster **byte-identically** to the in-process
//! [`ShardedSntIndex`](tthr_core::ShardedSntIndex).
//!
//! # Layout
//!
//! * [`NodeClient`] — one shard node's connection pool. Per-request
//!   connect/read/write timeouts, bounded retry with exponential backoff
//!   (idempotent requests only — which, thanks to the base-stamp
//!   idempotency of [`NodeWalRecord`] application, is *every* request),
//!   and atomic connect/retry counters the fault suite asserts against.
//! * [`ClusterRouter`] — the scatter-gather tier. Holds the
//!   [`ShardRouter`] first-edge table and, per shard, an **endpoint
//!   list** (the primary plus any standbys); single-shard SPQ primitives
//!   route by the traverse path's first edge, appends fan out one
//!   planned [`NodeWalRecord`] to every shard, and
//!   [`ClusterRouter::trip_query`] runs the full shift-and-enlarge
//!   [`QueryEngine`] locally over a remote backend.
//!
//! # Exactness
//!
//! The router is exact for the same reason the in-process sharded index
//! is: shard `s` holds the complete trajectories of everything touching
//! its edges, every SPQ a trip query issues keeps the traverse path's
//! first edge, and member ids preserve global order. The cluster
//! differential suite (`tests/cluster_equivalence.rs`) checks the
//! byte-identity claim end to end against the monolith.
//!
//! # Failure semantics
//!
//! A shard that cannot be reached on any admissible endpoint within the
//! configured retry budget surfaces as
//! [`ClusterError::ShardUnavailable`] — queries never silently degrade
//! to partial answers. Inside a running [`QueryEngine`], a backend trait
//! method cannot return `Result`, so the remote backend parks the first
//! error in a slot and returns a harmless non-empty dummy (the engine
//! terminates promptly instead of relaxing forever against empty
//! answers); [`ClusterRouter::trip_query`] checks the slot before
//! returning and propagates the parked error.
//!
//! # Failover
//!
//! Every endpoint carries a circuit breaker (closed → open after
//! consecutive transport failures → half-open trials after a cooldown).
//! When a shard's preferred endpoint exhausts its retry budget, reads
//! fail over to the **freshest** reachable endpoint whose applied stamp
//! has caught up with the router's confirmed progress — a stale standby
//! is never preferred over a fresher one. Appends acquire a primary:
//! a live endpoint already in the primary role wins (so the router heals
//! back to a recovered real primary on its own); otherwise the freshest
//! *caught-up* standby is promoted via `Promote`. A standby behind
//! acknowledged progress is never promoted — asynchronous replication
//! means such a promotion would silently lose acknowledged appends, so
//! the router answers with a typed error instead. Re-sending a stamped
//! record to the new primary is safe either way: application dedupes by
//! base stamp, so an append retried across a promotion applies exactly
//! once. Before any traffic switches to a failover endpoint, the
//! connect-time consistency cross-checks (shard identity, cluster
//! shape, routing table) are re-run against it once and cached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tthr_core::node::plan_node_records;
use tthr_core::{
    CardinalityMode, IndexBackend, NodeWalRecord, QueryEngine, QueryEngineConfig, SearchScratch,
    ShardRouter, Spq, TimeInterval, TravelTimeProvider, TravelTimes, TripQuery, TtValues,
};
use tthr_metrics::{Counter, Gauge, MetricsRegistry};
use tthr_network::{RoadNetwork, Timestamp};
use tthr_rpc::{read_frame, write_frame, ErrCode, FrameError, Message, NodeMeta, Role, WireError};
use tthr_store::StoreError;
use tthr_trajectory::{TrajEntry, UserId};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of a cluster operation.
#[derive(Debug)]
pub enum ClusterError {
    /// A shard could not be served by any admissible endpoint within
    /// the configured retry budget.
    ShardUnavailable {
        /// The shard whose nodes are unreachable.
        shard: u16,
        /// The preferred endpoint's address.
        addr: SocketAddr,
        /// The final transport error after retries were exhausted.
        source: io::Error,
    },
    /// The node sent bytes that do not parse as a protocol frame.
    Frame(FrameError),
    /// The node answered with a typed protocol error.
    Remote {
        /// The error class reported by the node.
        code: ErrCode,
        /// Human-readable detail.
        message: String,
    },
    /// An append arrived out of order: the node expected base stamp
    /// `expected` but the record carried `found`.
    WalGap {
        /// The node's current global count.
        expected: u64,
        /// The record's base stamp.
        found: u64,
    },
    /// The nodes disagree about cluster shape or progress (mixed shard
    /// counts, diverged global counters, mismatched routing tables).
    Inconsistent(String),
    /// A batch failed local validation before any node was contacted.
    Invalid(String),
    /// The node answered with a well-formed frame of the wrong type.
    Unexpected(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ShardUnavailable {
                shard,
                addr,
                source,
            } => {
                write!(f, "shard {shard} unavailable at {addr}: {source}")
            }
            ClusterError::Frame(e) => write!(f, "protocol error: {e}"),
            ClusterError::Remote { code, message } => {
                write!(f, "node error ({code:?}): {message}")
            }
            ClusterError::WalGap { expected, found } => {
                write!(
                    f,
                    "append gap: node expected base {expected}, record has {found}"
                )
            }
            ClusterError::Inconsistent(m) => write!(f, "inconsistent cluster: {m}"),
            ClusterError::Invalid(m) => write!(f, "invalid batch: {m}"),
            ClusterError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::ShardUnavailable { source, .. } => Some(source),
            ClusterError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClusterError {
    fn from(e: FrameError) -> Self {
        ClusterError::Frame(e)
    }
}

// ---------------------------------------------------------------------------
// NodeClient
// ---------------------------------------------------------------------------

/// Transport knobs for one [`NodeClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-request socket read timeout.
    pub read_timeout: Duration,
    /// Per-request socket write timeout.
    pub write_timeout: Duration,
    /// Extra attempts after the first (transport errors only — protocol
    /// errors are never retried).
    pub retries: u32,
    /// Initial backoff before the first retry; doubles each retry.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(50),
        }
    }
}

/// A pooled binary-protocol client for one shard node.
///
/// Connections are checked out per request and returned on success; any
/// transport failure drops the connection *and flushes the pool* (a dead
/// server usually killed every pooled socket at once), so the retry
/// dials fresh. Checkout additionally **probes** each pooled socket with
/// a non-blocking peek and evicts the dead ones — after a node restart
/// the whole pool is stale, and without the probe every stale socket
/// would burn a request attempt (and a retry backoff sleep) before the
/// redial.
pub struct NodeClient {
    addr: SocketAddr,
    config: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    connects: AtomicU64,
    retries: AtomicU64,
    evicted: AtomicU64,
}

impl NodeClient {
    /// A client for the node at `addr`. No connection is made until the
    /// first request.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        NodeClient {
            addr,
            config,
            pool: Mutex::new(Vec::new()),
            connects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The node's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fresh TCP connections dialed so far (first use and post-failure
    /// redials both count).
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::Relaxed)
    }

    /// Retry attempts made after a transport failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Pooled connections evicted by the checkout liveness probe (stale
    /// sockets left behind by a node restart).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let conn = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        conn.set_read_timeout(Some(self.config.read_timeout))?;
        conn.set_write_timeout(Some(self.config.write_timeout))?;
        conn.set_nodelay(true)?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        Ok(conn)
    }

    /// Whether a pooled idle socket is no longer usable. A request/reply
    /// protocol owes us *nothing* between requests, so any readable state
    /// is death or desync: `Ok(0)` is the server's FIN (it restarted or
    /// closed us), `Ok(n)` is an unsolicited byte (protocol desync — a
    /// reply to nobody), and any error but `WouldBlock` is a reset.
    /// Only a clean "nothing to read yet" (`WouldBlock`) passes.
    fn is_stale(conn: &TcpStream) -> bool {
        if conn.set_nonblocking(true).is_err() {
            return true;
        }
        let mut probe = [0u8; 1];
        let stale =
            !matches!(conn.peek(&mut probe), Err(ref e) if e.kind() == ErrorKind::WouldBlock);
        stale || conn.set_nonblocking(false).is_err()
    }

    fn checkout(&self) -> io::Result<TcpStream> {
        loop {
            let Some(conn) = self.pool.lock().expect("pool lock").pop() else {
                break;
            };
            if !Self::is_stale(&conn) {
                return Ok(conn);
            }
            // A node restart kills every pooled socket at once; evicting
            // here costs a peek, while handing the dead socket out would
            // cost a failed request plus a retry backoff.
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        self.dial()
    }

    fn request_once(&self, message: &Message) -> Result<Message, WireError> {
        let mut conn = self.checkout()?;
        write_frame(&mut conn, message)?;
        match read_frame(&mut conn)? {
            Some(reply) => {
                self.pool.lock().expect("pool lock").push(conn);
                Ok(reply)
            }
            None => Err(WireError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "node closed the connection mid-request",
            ))),
        }
    }

    /// Sends one request and reads one reply, retrying transport
    /// failures up to `config.retries` times with exponential backoff.
    ///
    /// Safe for **every** message in the protocol: reads are naturally
    /// idempotent, and [`NodeWalRecord`] application dedupes re-sent
    /// appends by base stamp, so a retry after a lost response re-applies
    /// nothing. Protocol-level errors ([`WireError::Frame`]) are returned
    /// immediately — resending bytes the peer already rejected as
    /// malformed cannot succeed.
    pub fn request(&self, message: &Message) -> Result<Message, WireError> {
        let mut backoff = self.config.backoff;
        let mut last: io::Error;
        let mut attempt = 0u32;
        loop {
            match self.request_once(message) {
                Ok(reply) => return Ok(reply),
                Err(WireError::Frame(e)) => return Err(WireError::Frame(e)),
                Err(WireError::Io(e)) => {
                    // Stale pooled sockets die together with the server;
                    // flush them so the retry dials fresh.
                    self.pool.lock().expect("pool lock").clear();
                    last = e;
                }
            }
            if attempt >= self.config.retries {
                return Err(WireError::Io(last));
            }
            attempt += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker tuning, shared by every endpoint of a router.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects traffic before admitting
    /// half-open trial requests.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// The observable state of an endpoint's circuit breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, consecutive failures are being counted.
    Closed,
    /// Cooldown elapsed: trial traffic is admitted; one success closes
    /// the breaker, one failure re-opens it.
    HalfOpen,
    /// Tripped: traffic is rejected until the cooldown elapses.
    Open,
}

impl BreakerState {
    /// Encoding used by the `tthr_breaker_state` gauge:
    /// 0 closed, 1 half-open, 2 open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

enum BreakerInner {
    Closed { failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// A per-endpoint circuit breaker. Transport failures (retry budget
/// exhausted) count against it; *any* completed exchange — including a
/// typed error frame — counts as success, because a node that answers
/// is alive. An open breaker lets the router skip an endpoint that is
/// known-dead without burning a full retry budget on it, and the
/// half-open state re-admits it gradually once the cooldown elapses.
struct Breaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            inner: Mutex::new(BreakerInner::Closed { failures: 0 }),
        }
    }

    /// Whether a request may be sent through this breaker right now.
    /// An open breaker whose cooldown has elapsed transitions to
    /// half-open and admits the request as a trial. Half-open admits
    /// every caller (a trial may be skipped by staleness filters
    /// downstream; admitting only one would wedge the breaker).
    fn allow(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match *inner {
            BreakerInner::Closed { .. } | BreakerInner::HalfOpen => true,
            BreakerInner::Open { since } => {
                if since.elapsed() >= self.config.cooldown {
                    *inner = BreakerInner::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&self) {
        *self.inner.lock().expect("breaker lock") = BreakerInner::Closed { failures: 0 };
    }

    fn on_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        *inner = match *inner {
            BreakerInner::Closed { failures } if failures + 1 < self.config.failure_threshold => {
                BreakerInner::Closed {
                    failures: failures + 1,
                }
            }
            _ => BreakerInner::Open {
                since: Instant::now(),
            },
        };
    }

    fn state(&self) -> BreakerState {
        match *self.inner.lock().expect("breaker lock") {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen => BreakerState::HalfOpen,
        }
    }
}

// ---------------------------------------------------------------------------
// ClusterRouter
// ---------------------------------------------------------------------------

/// Per-node transport counters, for observability and the fault suite.
/// Reported for each shard's currently **preferred** endpoint.
#[derive(Clone, Debug)]
pub struct NodeStats {
    /// The shard this node serves.
    pub shard: u16,
    /// The node's address.
    pub addr: SocketAddr,
    /// Fresh TCP connections dialed.
    pub connects: u64,
    /// Transport retries performed.
    pub retries: u64,
    /// Stale pooled connections evicted by the checkout probe.
    pub evicted: u64,
}

/// One shard's health report, from [`ClusterRouter::health`].
#[derive(Clone, Copy, Debug)]
pub struct ShardHealth {
    /// The shard reporting.
    pub shard: u16,
    /// The endpoint that answered (the shard's preferred endpoint).
    pub addr: SocketAddr,
    /// The endpoint's replication role.
    pub role: Role,
    /// Records the endpoint has applied (global count at its stamp).
    pub applied_stamp: u64,
    /// Stamp of the endpoint's on-disk snapshot.
    pub snapshot_stamp: u64,
}

/// An endpoint's replication status, as seen by the last probe.
#[derive(Clone, Copy, Debug)]
pub struct ReplInfo {
    /// Primary or standby.
    pub role: Role,
    /// Records applied (global count at the endpoint's stamp).
    pub applied_stamp: u64,
    /// Stamp of the endpoint's on-disk snapshot.
    pub snapshot_stamp: u64,
}

/// Failover-router construction options.
#[derive(Clone, Debug, Default)]
pub struct RouterConfig {
    /// Transport knobs for every endpoint's [`NodeClient`].
    pub client: ClientConfig,
    /// Circuit-breaker tuning for every endpoint.
    pub breaker: BreakerConfig,
    /// Background health-probe cadence. `None` (the default) probes
    /// endpoints only during failover; `Some(interval)` runs a prober
    /// thread that refreshes replication status, keeps the lag gauges
    /// live, and walks open breakers back through half-open to closed
    /// while the application is idle.
    pub probe_interval: Option<Duration>,
    /// Admit read failover to an endpoint *behind* the router's
    /// confirmed progress. Off by default: a stale answer is a silent
    /// correctness violation, an unavailability error is typed.
    pub allow_stale_reads: bool,
}

/// The router's mirror of cluster-wide append progress, advanced only
/// after every node acknowledged a batch.
struct ClusterState {
    num_global: u64,
    span_min: Timestamp,
    span_max: Timestamp,
}

/// One endpoint of a shard: a client, its breaker, and its last known
/// replication status.
struct Endpoint {
    client: NodeClient,
    breaker: Breaker,
    status: Mutex<Option<ReplInfo>>,
    /// Whether the connect-time consistency cross-checks have run
    /// against this endpoint (see [`RouterCore::verify_endpoint`]).
    verified: AtomicBool,
    breaker_gauge: Gauge,
    lag_gauge: Gauge,
}

impl Endpoint {
    fn on_success(&self) {
        self.breaker.on_success();
        self.sync_breaker_gauge();
    }

    fn on_failure(&self) {
        self.breaker.on_failure();
        self.sync_breaker_gauge();
    }

    fn sync_breaker_gauge(&self) {
        self.breaker_gauge.set(self.breaker.state().gauge_value());
    }
}

/// A shard's endpoint list and its currently preferred endpoint.
struct ShardSet {
    endpoints: Vec<Endpoint>,
    /// Index into `endpoints`: where reads and appends go first.
    active: AtomicUsize,
    failovers: Counter,
}

/// The shared router guts: everything the request paths and the
/// background prober both touch.
struct RouterCore {
    shards: Vec<ShardSet>,
    routing: ShardRouter,
    registry: MetricsRegistry,
    probe_failures: Counter,
    config: RouterConfig,
    state: Mutex<ClusterState>,
}

impl RouterCore {
    /// A typed unavailability for `shard`, attributed to its preferred
    /// endpoint.
    fn unavailable(&self, shard: u16, why: String) -> ClusterError {
        let set = &self.shards[shard as usize];
        let active = set.active.load(Ordering::Acquire);
        ClusterError::ShardUnavailable {
            shard,
            addr: set.endpoints[active].client.addr(),
            source: io::Error::new(ErrorKind::NotConnected, why),
        }
    }

    /// One `Health` exchange with an endpoint, recording the result in
    /// its status slot and breaker. Returns `None` on any failure.
    fn probe_endpoint(&self, shard: u16, idx: usize) -> Option<ReplInfo> {
        let ep = &self.shards[shard as usize].endpoints[idx];
        match rpc_on(&ep.client, shard, &Message::Health) {
            Ok(Message::ReplStatus {
                role,
                applied_stamp,
                snapshot_stamp,
            }) => {
                let info = ReplInfo {
                    role,
                    applied_stamp,
                    snapshot_stamp,
                };
                *ep.status.lock().expect("status lock") = Some(info);
                ep.on_success();
                Some(info)
            }
            _ => {
                ep.on_failure();
                self.probe_failures.inc();
                None
            }
        }
    }

    /// One probing sweep over every endpoint whose breaker admits it.
    /// Keeps the lag gauges live and walks recovered endpoints' open
    /// breakers back to closed (via the half-open trial the probe is).
    fn probe_all(&self) {
        let need = self.state.lock().expect("state lock").num_global;
        for (shard, set) in self.shards.iter().enumerate() {
            for (idx, ep) in set.endpoints.iter().enumerate() {
                if !ep.breaker.allow() {
                    ep.sync_breaker_gauge();
                    continue;
                }
                if let Some(info) = self.probe_endpoint(shard as u16, idx) {
                    ep.lag_gauge
                        .set(need.saturating_sub(info.applied_stamp) as i64);
                }
            }
        }
    }

    /// Re-runs the connect-time consistency cross-checks against an
    /// endpoint the router is about to fail over to: shard identity,
    /// cluster shape, and routing-table equality. Construction only
    /// verified each shard's *first* endpoint; switching traffic to an
    /// unverified one without these checks would let a misconfigured
    /// standby (wrong shard, wrong cluster) answer queries. The result
    /// is cached per endpoint — verification is one-time, not
    /// per-request. (Counts and spans are deliberately *not* compared:
    /// a standby legitimately lags; the stamp filters of the failover
    /// paths bound that.)
    fn verify_endpoint(&self, shard: u16, ep: &Endpoint) -> Result<(), ClusterError> {
        if ep.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        let meta = match rpc_on(&ep.client, shard, &Message::GetMeta)? {
            Message::Meta(meta) => meta,
            other => {
                return Err(ClusterError::Unexpected(format!(
                    "GetMeta answered with {other:?}"
                )))
            }
        };
        if meta.shard != shard {
            return Err(ClusterError::Inconsistent(format!(
                "endpoint {} serves shard {}, expected {shard}",
                ep.client.addr(),
                meta.shard
            )));
        }
        if meta.num_shards as usize != self.shards.len() {
            return Err(ClusterError::Inconsistent(format!(
                "endpoint {} believes the cluster has {} shards, router has {}",
                ep.client.addr(),
                meta.num_shards,
                self.shards.len()
            )));
        }
        let routing = match rpc_on(&ep.client, shard, &Message::GetRouting)? {
            Message::Routing(routing) => routing,
            other => {
                return Err(ClusterError::Unexpected(format!(
                    "GetRouting answered with {other:?}"
                )))
            }
        };
        if routing != self.routing {
            return Err(ClusterError::Inconsistent(format!(
                "endpoint {} disagrees on the routing table",
                ep.client.addr()
            )));
        }
        ep.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// Routes a read to the shard's preferred endpoint, failing over on
    /// transport exhaustion. Typed remote errors are final — the node
    /// answered, so retrying elsewhere cannot change the outcome.
    fn query(&self, shard: u16, message: &Message) -> Result<Message, ClusterError> {
        let set = &self.shards[shard as usize];
        let active = set.active.load(Ordering::Acquire);
        let mut last: Option<ClusterError> = None;
        if set.endpoints[active].breaker.allow() {
            let ep = &set.endpoints[active];
            match rpc_on(&ep.client, shard, message) {
                Ok(reply) => {
                    ep.on_success();
                    return Ok(reply);
                }
                Err(e @ ClusterError::ShardUnavailable { .. }) => {
                    ep.on_failure();
                    last = Some(e);
                }
                Err(e) => {
                    ep.on_success();
                    return Err(e);
                }
            }
        }
        self.failover_read(shard, message, active, last)
    }

    /// The read failover path: probe every other admissible endpoint,
    /// try them freshest-first (never preferring a stale standby over a
    /// fresher one), filter out endpoints behind the router's confirmed
    /// count (unless stale reads are admitted), verify, and make the
    /// first endpoint that answers the new preferred one.
    fn failover_read(
        &self,
        shard: u16,
        message: &Message,
        active: usize,
        mut last: Option<ClusterError>,
    ) -> Result<Message, ClusterError> {
        let set = &self.shards[shard as usize];
        let need = self.state.lock().expect("state lock").num_global;
        let mut candidates: Vec<(usize, ReplInfo)> = Vec::new();
        for (idx, ep) in set.endpoints.iter().enumerate() {
            if idx == active || !ep.breaker.allow() {
                continue;
            }
            if let Some(info) = self.probe_endpoint(shard, idx) {
                ep.lag_gauge
                    .set(need.saturating_sub(info.applied_stamp) as i64);
                candidates.push((idx, info));
            }
        }
        candidates.sort_by_key(|&(_, info)| std::cmp::Reverse(info.applied_stamp));
        for (idx, info) in candidates {
            // `>=`, not `==`: an endpoint can legitimately be *ahead* of
            // the router's confirmed count after a lost append ack;
            // stamped idempotency makes reading it safe.
            if info.applied_stamp < need && !self.config.allow_stale_reads {
                last = Some(self.unavailable(
                    shard,
                    format!(
                        "freshest reachable standby at stamp {} is behind confirmed {need}",
                        info.applied_stamp
                    ),
                ));
                continue;
            }
            let ep = &set.endpoints[idx];
            if let Err(e) = self.verify_endpoint(shard, ep) {
                last = Some(e);
                continue;
            }
            match rpc_on(&ep.client, shard, message) {
                Ok(reply) => {
                    ep.on_success();
                    if set.active.swap(idx, Ordering::AcqRel) != idx {
                        set.failovers.inc();
                    }
                    return Ok(reply);
                }
                Err(e @ ClusterError::ShardUnavailable { .. }) => {
                    ep.on_failure();
                    last = Some(e);
                }
                Err(e) => {
                    ep.on_success();
                    return Err(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            self.unavailable(shard, "no admissible endpoint (breakers open)".into())
        }))
    }

    /// Finds — or creates, via `Promote` — a primary for `shard` whose
    /// applied stamp has reached `need`, makes it the preferred
    /// endpoint, and returns its index.
    ///
    /// A live endpoint already in the primary role wins over promoting
    /// anything (so after a transient partition the router converges
    /// back to the real primary without issuing `Promote`). Otherwise
    /// the freshest caught-up standby is promoted. An endpoint behind
    /// `need` is **never** promoted: asynchronous replication means that
    /// promotion would silently drop acknowledged appends — refusing
    /// with a typed error keeps the loss visible and retryable.
    fn acquire_primary(&self, shard: u16, need: u64) -> Result<usize, ClusterError> {
        let set = &self.shards[shard as usize];
        let mut candidates: Vec<(usize, ReplInfo)> = Vec::new();
        for (idx, ep) in set.endpoints.iter().enumerate() {
            if !ep.breaker.allow() {
                continue;
            }
            if let Some(info) = self.probe_endpoint(shard, idx) {
                ep.lag_gauge
                    .set(need.saturating_sub(info.applied_stamp) as i64);
                candidates.push((idx, info));
            }
        }
        candidates.sort_by_key(|&(idx, info)| {
            (
                std::cmp::Reverse(info.applied_stamp),
                info.role != Role::Primary,
                idx,
            )
        });
        let mut last: Option<ClusterError> = None;
        let mut best_behind: Option<u64> = None;
        for (idx, info) in candidates {
            if info.applied_stamp < need {
                best_behind =
                    Some(best_behind.map_or(info.applied_stamp, |b| b.max(info.applied_stamp)));
                continue;
            }
            let ep = &set.endpoints[idx];
            if let Err(e) = self.verify_endpoint(shard, ep) {
                last = Some(e);
                continue;
            }
            if info.role != Role::Primary {
                match rpc_on(&ep.client, shard, &Message::Promote) {
                    Ok(Message::ReplStatus {
                        role: Role::Primary,
                        ..
                    }) => ep.on_success(),
                    Ok(other) => {
                        last = Some(ClusterError::Unexpected(format!(
                            "Promote answered with {other:?}"
                        )));
                        continue;
                    }
                    Err(e @ ClusterError::ShardUnavailable { .. }) => {
                        ep.on_failure();
                        last = Some(e);
                        continue;
                    }
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            if set.active.swap(idx, Ordering::AcqRel) != idx {
                set.failovers.inc();
            }
            return Ok(idx);
        }
        Err(last.unwrap_or_else(|| {
            let why = match best_behind {
                Some(stamp) => format!(
                    "no caught-up endpoint to promote: freshest reachable at stamp {stamp}, \
                     confirmed progress {need} (refusing lossy promotion)"
                ),
                None => "no reachable endpoint to promote".into(),
            };
            self.unavailable(shard, why)
        }))
    }

    /// Sends one planned record to the shard's primary, redirecting
    /// through [`RouterCore::acquire_primary`] when the preferred
    /// endpoint is gone or answers `NotPrimary` (it was demoted, or the
    /// router failed reads over to a standby earlier). The re-send after
    /// promotion is safe: application dedupes by base stamp, so a record
    /// the dead primary already replicated applies exactly once.
    fn append_record(
        &self,
        shard: u16,
        record: &NodeWalRecord,
        need: u64,
    ) -> Result<(), ClusterError> {
        let set = &self.shards[shard as usize];
        let active = set.active.load(Ordering::Acquire);
        if set.endpoints[active].breaker.allow() {
            let ep = &set.endpoints[active];
            match rpc_on(&ep.client, shard, &Message::Append(record.clone())) {
                Ok(Message::Appended { .. }) => {
                    ep.on_success();
                    return Ok(());
                }
                Ok(other) => {
                    ep.on_success();
                    return Err(ClusterError::Unexpected(format!(
                        "Append answered with {other:?}"
                    )));
                }
                Err(ClusterError::Remote {
                    code: ErrCode::NotPrimary,
                    ..
                }) => {
                    // The endpoint is alive but a standby — fall through
                    // to the promotion path.
                    ep.on_success();
                }
                Err(e @ ClusterError::ShardUnavailable { .. }) => {
                    ep.on_failure();
                    drop(e);
                }
                Err(e) => {
                    ep.on_success();
                    return Err(e);
                }
            }
        }
        let idx = self.acquire_primary(shard, need)?;
        let ep = &set.endpoints[idx];
        match rpc_on(&ep.client, shard, &Message::Append(record.clone())) {
            Ok(Message::Appended { .. }) => {
                ep.on_success();
                Ok(())
            }
            Ok(other) => Err(ClusterError::Unexpected(format!(
                "Append answered with {other:?}"
            ))),
            Err(e @ ClusterError::ShardUnavailable { .. }) => {
                ep.on_failure();
                Err(e)
            }
            Err(e) => Err(e),
        }
    }
}

/// The scatter-gather query tier over a shard-per-process cluster.
///
/// Owns the road network (trip-query planning is local — only SPQ
/// primitives cross the wire), the first-edge routing table, and per
/// shard an endpoint list (primary first, then standbys) with automatic
/// failover — see the module docs. Dropping the router stops its
/// background prober thread, if one was configured.
pub struct ClusterRouter {
    network: RoadNetwork,
    engine_config: QueryEngineConfig,
    core: Arc<RouterCore>,
    prober_stop: Arc<AtomicBool>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.prober_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
    }
}

impl ClusterRouter {
    /// Connects to a cluster with one endpoint per shard (no standbys)
    /// using default failover tuning. See
    /// [`ClusterRouter::connect_with_standbys`].
    pub fn connect(
        network: RoadNetwork,
        addrs: &[SocketAddr],
        engine_config: QueryEngineConfig,
        client_config: ClientConfig,
    ) -> Result<Self, ClusterError> {
        let groups: Vec<Vec<SocketAddr>> = addrs.iter().map(|&a| vec![a]).collect();
        Self::connect_with_standbys(
            network,
            &groups,
            engine_config,
            RouterConfig {
                client: client_config,
                ..RouterConfig::default()
            },
        )
    }

    /// Connects to every shard's first endpoint (its primary),
    /// cross-checks the cluster's shape, and assembles the routing tier.
    /// Each group lists one shard's endpoints: the primary first, then
    /// any standbys (probed and verified lazily, on failover or by the
    /// background prober).
    ///
    /// Groups may be listed in any order — each primary reports its
    /// shard id and the constructor sorts them into place. Fails with
    /// [`ClusterError::Inconsistent`] if the primaries disagree on shard
    /// count, global progress, or data span; if any shard is missing or
    /// duplicated; or if the routing table does not match `network`.
    pub fn connect_with_standbys(
        network: RoadNetwork,
        groups: &[Vec<SocketAddr>],
        engine_config: QueryEngineConfig,
        config: RouterConfig,
    ) -> Result<Self, ClusterError> {
        if groups.is_empty() {
            return Err(ClusterError::Inconsistent("no node addresses given".into()));
        }
        if let Some(empty) = groups.iter().position(|group| group.is_empty()) {
            return Err(ClusterError::Inconsistent(format!(
                "shard group {empty} lists no endpoints"
            )));
        }
        let mut metas: Vec<(NodeMeta, Vec<NodeClient>)> = Vec::with_capacity(groups.len());
        for group in groups {
            let clients: Vec<NodeClient> = group
                .iter()
                .map(|&addr| NodeClient::new(addr, config.client.clone()))
                .collect();
            let meta = match rpc_on(&clients[0], 0, &Message::GetMeta)? {
                Message::Meta(meta) => meta,
                other => {
                    return Err(ClusterError::Unexpected(format!(
                        "GetMeta answered with {other:?}"
                    )))
                }
            };
            metas.push((meta, clients));
        }
        let first = metas[0].0.clone();
        let (num_global, span_min, span_max) = (first.num_global, first.span_min, first.span_max);
        for (meta, clients) in &metas {
            if meta.num_shards as usize != groups.len() {
                return Err(ClusterError::Inconsistent(format!(
                    "node {} believes the cluster has {} shards, {} endpoint groups given",
                    clients[0].addr(),
                    meta.num_shards,
                    groups.len()
                )));
            }
            if meta.num_global != num_global {
                return Err(ClusterError::Inconsistent(format!(
                    "diverged global counters: {} vs {}",
                    meta.num_global, num_global
                )));
            }
            if (meta.span_min, meta.span_max) != (span_min, span_max) {
                return Err(ClusterError::Inconsistent(format!(
                    "diverged data spans: [{}, {}] vs [{span_min}, {span_max}]",
                    meta.span_min, meta.span_max
                )));
            }
        }
        metas.sort_by_key(|(meta, _)| meta.shard);
        for (expected, (meta, clients)) in metas.iter().enumerate() {
            if meta.shard as usize != expected {
                return Err(ClusterError::Inconsistent(format!(
                    "shard {expected} missing or duplicated (node {} serves shard {})",
                    clients[0].addr(),
                    meta.shard
                )));
            }
        }
        let num_edges = first.num_edges;
        let routing = match rpc_on(&metas[0].1[0], metas[0].0.shard, &Message::GetRouting)? {
            Message::Routing(routing) => routing,
            other => {
                return Err(ClusterError::Unexpected(format!(
                    "GetRouting answered with {other:?}"
                )))
            }
        };
        if routing.num_shards() != groups.len() {
            return Err(ClusterError::Inconsistent(format!(
                "routing table covers {} shards, cluster has {}",
                routing.num_shards(),
                groups.len()
            )));
        }
        if routing.num_edges() as u64 != num_edges || routing.num_edges() != network.num_edges() {
            return Err(ClusterError::Inconsistent(format!(
                "routing table covers {} edges, nodes report {}, network has {}",
                routing.num_edges(),
                num_edges,
                network.num_edges()
            )));
        }

        let registry = MetricsRegistry::new();
        let probe_failures = registry.counter(
            "tthr_probe_failures_total",
            "Failed endpoint health probes (transport or protocol)",
            &[],
        );
        let mut shards = Vec::with_capacity(metas.len());
        for (shard, (_, clients)) in metas.into_iter().enumerate() {
            let shard_label = shard.to_string();
            let failovers = registry.counter(
                "tthr_failovers_total",
                "Preferred-endpoint switches (read failover or append promotion)",
                &[("shard", shard_label.as_str())],
            );
            let mut endpoints = Vec::with_capacity(clients.len());
            for (idx, client) in clients.into_iter().enumerate() {
                let addr_label = client.addr().to_string();
                let endpoint = Endpoint {
                    breaker: Breaker::new(config.breaker.clone()),
                    status: Mutex::new(None),
                    // The cross-checks above ran against each group's
                    // first endpoint; the rest verify before first use.
                    verified: AtomicBool::new(idx == 0),
                    breaker_gauge: registry.gauge(
                        "tthr_breaker_state",
                        "Circuit-breaker state per endpoint (0 closed, 1 half-open, 2 open)",
                        &[("endpoint", addr_label.as_str())],
                    ),
                    lag_gauge: registry.gauge(
                        "tthr_repl_lag_records",
                        "Confirmed records the endpoint has not applied yet",
                        &[
                            ("shard", shard_label.as_str()),
                            ("endpoint", addr_label.as_str()),
                        ],
                    ),
                    client,
                };
                endpoint.sync_breaker_gauge();
                endpoints.push(endpoint);
            }
            shards.push(ShardSet {
                endpoints,
                active: AtomicUsize::new(0),
                failovers,
            });
        }
        let probe_interval = config.probe_interval;
        let core = Arc::new(RouterCore {
            shards,
            routing,
            registry,
            probe_failures,
            config,
            state: Mutex::new(ClusterState {
                num_global,
                span_min,
                span_max,
            }),
        });
        let prober_stop = Arc::new(AtomicBool::new(false));
        let prober = probe_interval.map(|every| {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&prober_stop);
            std::thread::Builder::new()
                .name("tthr-router-probe".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        core.probe_all();
                        // Sleep in slices so Drop joins promptly.
                        let mut slept = Duration::ZERO;
                        while slept < every && !stop.load(Ordering::Relaxed) {
                            let slice = Duration::from_millis(20).min(every - slept);
                            std::thread::sleep(slice);
                            slept += slice;
                        }
                    }
                })
                .expect("spawn router prober")
        });
        Ok(ClusterRouter {
            network,
            engine_config,
            core,
            prober_stop,
            prober,
        })
    }

    /// Number of shards in the cluster.
    pub fn num_shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Cluster-wide trajectory count the router has confirmed.
    pub fn num_global(&self) -> u64 {
        self.core.state.lock().expect("state lock").num_global
    }

    /// The road network the cluster indexes.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// The first-edge routing table.
    pub fn routing(&self) -> &ShardRouter {
        &self.core.routing
    }

    /// The router's metrics registry: failovers, breaker states,
    /// replication lag, probe failures.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.core.registry
    }

    /// Renders the router's metrics in Prometheus text exposition format.
    pub fn render_metrics(&self) -> String {
        self.core.registry.render()
    }

    /// Per-node transport counters, one entry per shard, reported for
    /// the shard's currently preferred endpoint.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.core
            .shards
            .iter()
            .enumerate()
            .map(|(shard, set)| {
                let active = set.active.load(Ordering::Acquire);
                let node = &set.endpoints[active].client;
                NodeStats {
                    shard: shard as u16,
                    addr: node.addr(),
                    connects: node.connects(),
                    retries: node.retries(),
                    evicted: node.evicted(),
                }
            })
            .collect()
    }

    /// Per-endpoint breaker states for one shard, in configured order.
    pub fn breaker_states(&self, shard: u16) -> Vec<(SocketAddr, BreakerState)> {
        self.core.shards[shard as usize]
            .endpoints
            .iter()
            .map(|ep| (ep.client.addr(), ep.breaker.state()))
            .collect()
    }

    /// Runs one probing sweep over every endpoint, as the background
    /// prober would. Useful without a prober thread (tests, CLIs).
    pub fn probe_now(&self) {
        self.core.probe_all();
    }

    /// Pings every shard (following failover like any read); the first
    /// unreachable shard is the error. Returns each shard's role and
    /// replication stamps as reported by the endpoint that answered.
    pub fn health(&self) -> Result<Vec<ShardHealth>, ClusterError> {
        let mut out = Vec::with_capacity(self.core.shards.len());
        for shard in 0..self.core.shards.len() as u16 {
            let reply = self.core.query(shard, &Message::Health)?;
            let set = &self.core.shards[shard as usize];
            let active = set.active.load(Ordering::Acquire);
            match reply {
                Message::ReplStatus {
                    role,
                    applied_stamp,
                    snapshot_stamp,
                } => out.push(ShardHealth {
                    shard,
                    addr: set.endpoints[active].client.addr(),
                    role,
                    applied_stamp,
                    snapshot_stamp,
                }),
                other => {
                    return Err(ClusterError::Unexpected(format!(
                        "Health answered with {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Asks every shard's preferred endpoint to rotate its snapshot
    /// (compacting its WAL).
    pub fn snapshot_all(&self) -> Result<(), ClusterError> {
        for shard in 0..self.core.shards.len() as u16 {
            match self.core.query(shard, &Message::Snapshot)? {
                Message::Ok => {}
                other => {
                    return Err(ClusterError::Unexpected(format!(
                        "Snapshot answered with {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn shard_for(&self, spq: &Spq) -> u16 {
        self.core.routing.shard_of(spq.path.first()) as u16
    }

    /// `getTravelTimes` routed to the owning shard — byte-identical to
    /// the in-process sharded index by the first-edge exactness argument.
    pub fn travel_times(&self, spq: &Spq) -> Result<TravelTimes, ClusterError> {
        let shard = self.shard_for(spq);
        match self.core.query(shard, &Message::TravelTimes(spq.clone()))? {
            Message::TravelTimesResult { values, fallback } => Ok(TravelTimes {
                values: tt_values(values),
                fallback,
            }),
            other => Err(ClusterError::Unexpected(format!(
                "TravelTimes answered with {other:?}"
            ))),
        }
    }

    /// Capped exact count routed to the owning shard.
    pub fn count_matching(&self, spq: &Spq, cap: u32) -> Result<usize, ClusterError> {
        let shard = self.shard_for(spq);
        match self.core.query(
            shard,
            &Message::Count {
                spq: spq.clone(),
                cap,
            },
        )? {
            Message::CountResult(n) => Ok(n as usize),
            other => Err(ClusterError::Unexpected(format!(
                "Count answered with {other:?}"
            ))),
        }
    }

    /// Cardinality estimate routed to the owning shard.
    pub fn estimate(&self, spq: &Spq, mode: CardinalityMode) -> Result<f64, ClusterError> {
        let shard = self.shard_for(spq);
        match self.core.query(
            shard,
            &Message::Estimate {
                spq: spq.clone(),
                mode,
            },
        )? {
            Message::EstimateResult(v) => Ok(v),
            other => Err(ClusterError::Unexpected(format!(
                "Estimate answered with {other:?}"
            ))),
        }
    }

    /// The σ fallback interval `[min(data_min, 0), data_max + 1)`,
    /// mirroring the sharded index's global-span bookkeeping.
    pub fn full_interval(&self) -> TimeInterval {
        let state = self.core.state.lock().expect("state lock");
        TimeInterval::fixed(state.span_min.min(0), state.span_max + 1)
    }

    /// Runs the full trip-query driver (Procedure 6) over the cluster:
    /// planning, splitting, and estimator gating happen locally; every
    /// SPQ primitive the engine issues is routed to its owning shard.
    ///
    /// Any node failure mid-query aborts the whole trip query with the
    /// first error — never a partial answer.
    pub fn trip_query(&self, spq: &Spq) -> Result<TripQuery, ClusterError> {
        let backend = RemoteBackend {
            cluster: self,
            error: RefCell::new(None),
        };
        let engine = QueryEngine::new(&backend, &self.network, self.engine_config.clone());
        let result = engine.trip_query(spq);
        match backend.error.into_inner() {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// Appends a batch cluster-wide: plans one [`NodeWalRecord`] per
    /// shard at the current global base stamp and requires **every**
    /// shard's acknowledgement before bumping the router's counters.
    /// A shard whose primary died redirects through promotion — see
    /// the module docs; a record retried across that still applies
    /// exactly once thanks to base-stamp idempotency.
    ///
    /// Returns the number of trajectories appended. On partial failure
    /// the counters stay put; because record application is idempotent
    /// by base stamp, simply calling `append_batch` again with the same
    /// batch heals the cluster (nodes that already applied skip, the
    /// rest catch up).
    pub fn append_batch(
        &self,
        trajectories: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<u64, ClusterError> {
        let mut state = self.core.state.lock().expect("state lock");
        let records: Vec<NodeWalRecord> = plan_node_records(
            &self.core.routing,
            state.num_global,
            state.span_min,
            state.span_max,
            trajectories,
        )
        .map_err(|e: StoreError| ClusterError::Invalid(e.to_string()))?;
        let need = state.num_global;
        for (shard, record) in records.iter().enumerate() {
            self.core.append_record(shard as u16, record, need)?;
        }
        let planned = &records[0];
        state.num_global = planned.new_total;
        state.span_min = planned.span_min;
        state.span_max = planned.span_max;
        Ok(trajectories.len() as u64)
    }
}

/// One request/reply exchange with typed error mapping: transport
/// exhaustion becomes [`ClusterError::ShardUnavailable`], protocol
/// damage becomes [`ClusterError::Frame`], and a well-formed `Err` frame
/// becomes [`ClusterError::Remote`] / [`ClusterError::WalGap`].
fn rpc_on(node: &NodeClient, shard: u16, message: &Message) -> Result<Message, ClusterError> {
    match node.request(message) {
        Ok(Message::Err {
            code: ErrCode::WalGap,
            expected,
            found,
            ..
        }) => Err(ClusterError::WalGap { expected, found }),
        Ok(Message::Err { code, message, .. }) => Err(ClusterError::Remote { code, message }),
        Ok(reply) => Ok(reply),
        Err(WireError::Io(source)) => Err(ClusterError::ShardUnavailable {
            shard,
            addr: node.addr(),
            source,
        }),
        Err(WireError::Frame(e)) => Err(ClusterError::Frame(e)),
    }
}

fn tt_values(values: Vec<f64>) -> TtValues {
    match values.len() {
        0 => TtValues::EMPTY,
        1 => TtValues::one(values[0]),
        _ => TtValues::from(values),
    }
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

/// [`IndexBackend`] over the cluster for one trip query.
///
/// Trait methods cannot return `Result`, so the first [`ClusterError`]
/// is parked in `error` and a harmless *non-empty* dummy is returned:
/// an empty answer would make σ relax the interval indefinitely, while
/// a single fallback value / saturated count / infinite estimate makes
/// the engine finish promptly. The caller checks the slot afterwards
/// and discards the poisoned result.
struct RemoteBackend<'a> {
    cluster: &'a ClusterRouter,
    error: RefCell<Option<ClusterError>>,
}

impl RemoteBackend<'_> {
    fn park(&self, e: ClusterError) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

impl TravelTimeProvider for RemoteBackend<'_> {
    fn travel_times(&self, spq: &Spq) -> TravelTimes {
        match self.cluster.travel_times(spq) {
            Ok(tt) => tt,
            Err(e) => {
                self.park(e);
                TravelTimes {
                    values: TtValues::one(1.0),
                    fallback: true,
                }
            }
        }
    }

    fn travel_times_with(&self, spq: &Spq, _scratch: &mut SearchScratch) -> TravelTimes {
        self.travel_times(spq)
    }
}

impl IndexBackend for RemoteBackend<'_> {
    fn count_matching(&self, spq: &Spq, cap: u32) -> usize {
        match self.cluster.count_matching(spq, cap) {
            Ok(n) => n,
            Err(e) => {
                self.park(e);
                cap as usize
            }
        }
    }

    fn estimate(&self, spq: &Spq, mode: CardinalityMode) -> f64 {
        match self.cluster.estimate(spq, mode) {
            Ok(v) => v,
            Err(e) => {
                self.park(e);
                f64::INFINITY
            }
        }
    }

    fn full_interval(&self) -> TimeInterval {
        self.cluster.full_interval()
    }
}

// ---------------------------------------------------------------------------
// In-process plumbing tests (cluster-level coverage lives in the
// repo-root differential suites).
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn localhost(listener: &TcpListener) -> SocketAddr {
        listener.local_addr().expect("ephemeral addr")
    }

    /// A one-shot stub node: accepts one connection, answers each
    /// request with the next canned reply, then closes.
    fn stub_node(replies: Vec<Vec<u8>>) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = localhost(&listener);
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            for reply in replies {
                // Drain one request frame (length-prefixed) first.
                let mut header = [0u8; 8];
                if conn.read_exact(&mut header).is_err() {
                    return;
                }
                let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
                let mut body = vec![0u8; len as usize];
                if conn.read_exact(&mut body).is_err() {
                    return;
                }
                if conn.write_all(&reply).is_err() {
                    return;
                }
            }
        });
        (addr, handle)
    }

    fn quick_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            retries: 2,
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn request_round_trips_against_a_stub_node() {
        let (addr, handle) = stub_node(vec![tthr_rpc::encode_frame(&Message::CountResult(7))]);
        let client = NodeClient::new(addr, quick_config());
        let reply = client.request(&Message::Health).expect("reply");
        assert_eq!(reply, Message::CountResult(7));
        assert_eq!(client.connects(), 1);
        assert_eq!(client.retries(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn unreachable_node_exhausts_retries_with_io_error() {
        // Bind-then-drop guarantees a connection-refused port.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            localhost(&listener)
        };
        let client = NodeClient::new(addr, quick_config());
        match client.request(&Message::Health) {
            Err(WireError::Io(_)) => {}
            other => panic!("expected transport failure, got {other:?}"),
        }
        assert_eq!(client.retries(), 2, "both retries were spent");
    }

    #[test]
    fn garbage_reply_is_a_typed_frame_error_without_retry() {
        // A "frame" whose CRC cannot match: valid length, corrupt body.
        let mut garbage = tthr_rpc::encode_frame(&Message::Ok);
        let last = garbage.len() - 1;
        garbage[last] ^= 0xff;
        let (addr, handle) = stub_node(vec![garbage]);
        let client = NodeClient::new(addr, quick_config());
        match client.request(&Message::Health) {
            Err(WireError::Frame(_)) => {}
            other => panic!("expected frame error, got {other:?}"),
        }
        assert_eq!(client.retries(), 0, "protocol errors are not retried");
        handle.join().unwrap();
    }

    #[test]
    fn remote_err_frames_map_to_typed_cluster_errors() {
        let walgap = tthr_rpc::encode_frame(&Message::Err {
            code: ErrCode::WalGap,
            expected: 10,
            found: 7,
            message: "gap".into(),
        });
        let (addr, handle) = stub_node(vec![walgap]);
        let client = NodeClient::new(addr, quick_config());
        match rpc_on(&client, 3, &Message::Health) {
            Err(ClusterError::WalGap {
                expected: 10,
                found: 7,
            }) => {}
            other => panic!("expected WalGap, got {other:?}"),
        }
        handle.join().unwrap();
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let breaker = Breaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(10),
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow());
        breaker.on_failure();
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "one failure is below the threshold"
        );
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow(), "open breaker rejects before the cooldown");
        std::thread::sleep(Duration::from_millis(15));
        assert!(
            breaker.allow(),
            "cooldown elapsed: half-open trial admitted"
        );
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open, "failed trial re-opens");
        std::thread::sleep(Duration::from_millis(15));
        assert!(breaker.allow());
        breaker.on_success();
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "successful trial closes"
        );
        assert!(breaker.allow());
    }

    #[test]
    fn breaker_counts_consecutive_failures_not_cumulative_ones() {
        let breaker = Breaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(10),
        });
        breaker.on_failure();
        breaker.on_failure();
        breaker.on_success();
        breaker.on_failure();
        breaker.on_failure();
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "a success resets the consecutive-failure count"
        );
        breaker.on_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
    }
}
