//! The backend abstraction [`QueryService`] is generic over.
//!
//! [`QueryService`]: crate::QueryService
//!
//! A backend is an index the service can query (via
//! [`IndexBackend`]), append to, and persist. Two implementations ship:
//!
//! * [`SntIndex`] — the paper's monolithic index. Appends rebuild nothing
//!   but stall every reader behind the service's single write lock, and
//!   invalidation clears the whole result cache.
//! * [`ShardedSntIndex`] — `K` network-partitioned shards. An append
//!   touches only the shards its trajectories cross, so the service can
//!   invalidate just those shards' cache entries; readers of untouched
//!   shards keep their warm entries ([`AppendEffect::touched_shards`]).
//!
//! The trait also owns the on-disk formats: each backend serializes its
//! own snapshot container and WAL record flavor, and replays its own
//! records on [`QueryService::open_with`](crate::QueryService::open_with)
//! — stamp-checked, so replay stays idempotent across the snapshot/WAL
//! overlap a crash can leave behind.

use tthr_core::{
    CompactionOutcome, HotStats, IndexBackend, ShardStats, ShardedSntIndex, ShardedWalBatch,
    SntIndex, Spq, WalBatch,
};
use tthr_network::Timestamp;
use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};
use tthr_trajectory::{TrajEntry, TrajId, Trajectory, TrajectorySet, UserId};

/// What one append did to the backend — the service scopes cache
/// invalidation with it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppendEffect {
    /// Trajectories appended (0 = no-op, nothing to invalidate).
    pub appended: usize,
    /// Index shards the append wrote, or `None` when the whole index
    /// changed (the monolithic backend): `None` forces a full cache
    /// clear, `Some(shards)` evicts only queries routing to those shards.
    pub touched_shards: Option<Vec<usize>>,
}

/// An index a [`QueryService`](crate::QueryService) can serve, append to,
/// and persist.
pub trait ServiceBackend: IndexBackend + Send + Sync + Sized + 'static {
    /// Whether appends mutate the backend through `&self` under its own
    /// fine-grained locking ([`Self::apply_append_shared`]), so the
    /// service applies them under its *read* lock and readers of
    /// untouched shards never stall. `false` routes appends through the
    /// service's exclusive write lock and [`Self::apply_append`].
    const SHARED_APPENDS: bool = false;

    /// Excludes other appenders (and snapshots racing appenders) without
    /// blocking readers. Returns `Some` exactly when
    /// [`Self::SHARED_APPENDS`]; the service holds the guard across the
    /// WAL write and the apply, so concurrent `append_batch` calls
    /// serialize and log in apply order.
    fn append_permit(&self) -> Option<std::sync::MutexGuard<'_, ()>> {
        None
    }

    /// Appends through `&self` under the backend's internal locks. Only
    /// called when [`Self::SHARED_APPENDS`]; the caller holds
    /// [`Self::append_permit`].
    fn apply_append_shared(&self, _set: &TrajectorySet) -> AppendEffect {
        unreachable!("apply_append_shared requires SHARED_APPENDS")
    }

    /// Number of trajectories currently indexed (the global id space).
    fn num_trajectories(&self) -> usize;

    /// Temporal partitions currently held (summed across shards for the
    /// sharded backend) — reported in
    /// [`SnapshotInfo`](crate::SnapshotInfo).
    fn num_partitions(&self) -> usize;

    /// Appends the new trajectories of `set` (ids `≥ num_trajectories()`)
    /// as one batch.
    fn apply_append(&mut self, set: &TrajectorySet) -> AppendEffect;

    /// Validates a raw `(user, entries)` payload batch against this index
    /// and materializes it with the next dense ids, **without** applying
    /// it — so the service can reject a bad batch before the WAL record is
    /// written ([`QueryService::append_new`](crate::QueryService::append_new)).
    fn prepare_payload(
        &self,
        payload: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<Vec<Trajectory>, StoreError>;

    /// [`Self::prepare_payload`] with the first assigned id (`from`)
    /// given explicitly instead of read from the index. The group-commit
    /// leader stamps a queue of batches arithmetically — batch *k*'s
    /// `from` accounts for the not-yet-applied batches before it — so ids
    /// stay dense across a multi-batch commit. Validation is independent
    /// of `from`; only the materialized ids differ.
    fn prepare_payload_at(
        &self,
        payload: &[(UserId, Vec<TrajEntry>)],
        from: usize,
    ) -> Result<Vec<Trajectory>, StoreError>;

    /// Appends a batch previously validated by
    /// [`Self::prepare_payload`] under the exclusive write lock.
    fn apply_prepared(&mut self, batch: &[Trajectory]) -> AppendEffect;

    /// Appends a prepared batch through `&self` under the backend's
    /// internal locks. Only called when [`Self::SHARED_APPENDS`]; the
    /// caller holds [`Self::append_permit`].
    fn apply_prepared_shared(&self, _batch: &[Trajectory]) -> AppendEffect {
        unreachable!("apply_prepared_shared requires SHARED_APPENDS")
    }

    /// Absorbs the new trajectories of `set` into the backend's mutable
    /// hot tail instead of sealing them into an immutable partition — the
    /// cheap write path [`IngestConfig`](crate::IngestConfig) routes
    /// appends through. Answers stay byte-identical to
    /// [`Self::apply_append`]; only [`Self::compact`] pays the
    /// FM-index/wavelet construction cost later.
    fn absorb_append(&mut self, set: &TrajectorySet) -> AppendEffect;

    /// [`Self::absorb_append`] through `&self` under the backend's
    /// internal locks. Only called when [`Self::SHARED_APPENDS`]; the
    /// caller holds [`Self::append_permit`].
    fn absorb_append_shared(&self, _set: &TrajectorySet) -> AppendEffect {
        unreachable!("absorb_append_shared requires SHARED_APPENDS")
    }

    /// Absorbs a batch previously validated by [`Self::prepare_payload`]
    /// into the hot tail under the exclusive write lock. Takes the batch
    /// by value: the tail keeps the trajectories, so an owning caller
    /// (the group-commit leader) hands them over instead of cloning.
    fn absorb_prepared(&mut self, batch: Vec<Trajectory>) -> AppendEffect;

    /// [`Self::absorb_prepared`] through `&self` under the backend's
    /// internal locks. Only called when [`Self::SHARED_APPENDS`]; the
    /// caller holds [`Self::append_permit`].
    fn absorb_prepared_shared(&self, _batch: Vec<Trajectory>) -> AppendEffect {
        unreachable!("absorb_prepared_shared requires SHARED_APPENDS")
    }

    /// Seals every pending hot batch into its own immutable partition (in
    /// absorb order, byte-identical to the index direct appends would have
    /// built) and drops partitions fully expired by `horizon`, under the
    /// exclusive write lock.
    fn compact(&mut self, horizon: Option<Timestamp>) -> CompactionOutcome;

    /// [`Self::compact`] through `&self` under the backend's internal
    /// locks (one shard write-locked at a time, so readers of other
    /// shards proceed undisturbed). Only called when
    /// [`Self::SHARED_APPENDS`]; the caller holds
    /// [`Self::append_permit`].
    fn compact_shared(&self, _horizon: Option<Timestamp>) -> CompactionOutcome {
        unreachable!("compact_shared requires SHARED_APPENDS")
    }

    /// Pending hot-tail accounting (batches, entries, heap bytes; summed
    /// across shards for the sharded backend).
    fn hot_stats(&self) -> HotStats;

    /// Newest entry timestamp the backend has ever indexed — the
    /// high-water mark the service's retention horizon is computed from.
    fn max_data_time(&self) -> Timestamp;

    /// Encodes the WAL record logging a raw payload batch appended at
    /// trajectory count `from` (the payload flavor of
    /// [`Self::encode_wal_record`]; both replay through
    /// [`Self::replay_wal_record`]).
    fn encode_wal_payload(&self, payload: &[(UserId, Vec<TrajEntry>)], from: usize) -> Vec<u8>;

    /// The index shard a query routes to, or `None` when the backend is
    /// unpartitioned. Used to decide which cache entries an append
    /// invalidates; must agree with how [`AppendEffect::touched_shards`]
    /// numbers shards.
    fn route_shard(&self, spq: &Spq) -> Option<usize>;

    /// Per-shard observability counters, indexed like
    /// [`Self::route_shard`]'s shard numbers; `None` for unpartitioned
    /// backends. The service mirrors these into `{shard=…}` labeled
    /// registry series at scrape time.
    fn shard_stats(&self) -> Option<Vec<ShardStats>> {
        None
    }

    /// Encodes the WAL record logging the delta `set[from..]`.
    fn encode_wal_record(&self, set: &TrajectorySet, from: usize) -> Vec<u8>;

    /// Replays one WAL record: skips records the snapshot already covers
    /// (base stamp < current trajectory count), applies records that line
    /// up exactly, and reports a [`StoreError::WalGap`] for records that
    /// skip ahead.
    fn replay_wal_record(&mut self, record: &[u8]) -> Result<(), StoreError>;

    /// Streams the backend's snapshot container into a writer.
    fn write_snapshot_to<W: std::io::Write>(&self, out: &mut W) -> Result<(), StoreError>;

    /// Reassembles a backend from snapshot bytes (validating magic,
    /// version, CRCs, and cross-section invariants).
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError>;
}

/// The delta of a grown set: references to the members with ids `from..`
/// (the ones an append/absorb of `set` at trajectory count `from` adds).
fn new_members(set: &TrajectorySet, from: usize) -> Vec<&Trajectory> {
    (from as u32..set.len() as u32)
        .map(|id| set.get(TrajId(id)))
        .collect()
}

impl ServiceBackend for SntIndex {
    fn num_trajectories(&self) -> usize {
        SntIndex::num_trajectories(self)
    }

    fn num_partitions(&self) -> usize {
        SntIndex::num_partitions(self)
    }

    fn apply_append(&mut self, set: &TrajectorySet) -> AppendEffect {
        AppendEffect {
            appended: self.append_batch(set),
            touched_shards: None,
        }
    }

    fn prepare_payload(
        &self,
        payload: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<Vec<Trajectory>, StoreError> {
        self.prepare_append_batch(payload)
    }

    fn prepare_payload_at(
        &self,
        payload: &[(UserId, Vec<TrajEntry>)],
        from: usize,
    ) -> Result<Vec<Trajectory>, StoreError> {
        self.prepare_append_batch_at(from as u32, payload)
    }

    fn apply_prepared(&mut self, batch: &[Trajectory]) -> AppendEffect {
        let refs: Vec<&Trajectory> = batch.iter().collect();
        AppendEffect {
            appended: self.append_trajectories(&refs),
            touched_shards: None,
        }
    }

    fn absorb_append(&mut self, set: &TrajectorySet) -> AppendEffect {
        let refs = new_members(set, SntIndex::num_trajectories(self));
        AppendEffect {
            appended: self.absorb_trajectories(&refs),
            touched_shards: None,
        }
    }

    fn absorb_prepared(&mut self, batch: Vec<Trajectory>) -> AppendEffect {
        AppendEffect {
            appended: self.absorb_trajectories_owned(batch),
            touched_shards: None,
        }
    }

    fn compact(&mut self, horizon: Option<Timestamp>) -> CompactionOutcome {
        SntIndex::compact(self, horizon)
    }

    fn hot_stats(&self) -> HotStats {
        SntIndex::hot_stats(self)
    }

    fn max_data_time(&self) -> Timestamp {
        self.data_max()
    }

    fn encode_wal_payload(&self, payload: &[(UserId, Vec<TrajEntry>)], from: usize) -> Vec<u8> {
        let mut w = ByteWriter::new();
        WalBatch {
            base: from as u64,
            trajectories: payload.to_vec(),
        }
        .persist(&mut w);
        w.into_bytes()
    }

    fn route_shard(&self, _spq: &Spq) -> Option<usize> {
        None
    }

    fn encode_wal_record(&self, set: &TrajectorySet, from: usize) -> Vec<u8> {
        let mut w = ByteWriter::new();
        WalBatch::delta(set, from).persist(&mut w);
        w.into_bytes()
    }

    fn replay_wal_record(&mut self, record: &[u8]) -> Result<(), StoreError> {
        let mut r = ByteReader::new(record);
        let batch = WalBatch::restore(&mut r)?;
        r.expect_exhausted("wal record")?;
        let have = SntIndex::num_trajectories(self) as u64;
        if batch.base < have {
            return Ok(()); // batch predates the snapshot
        }
        if batch.base > have {
            return Err(StoreError::WalGap {
                expected: have,
                found: batch.base,
            });
        }
        self.append_trajectory_batch(&batch.trajectories)?;
        Ok(())
    }

    fn write_snapshot_to<W: std::io::Write>(&self, out: &mut W) -> Result<(), StoreError> {
        SntIndex::write_snapshot_to(self, out)
    }

    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        SntIndex::from_snapshot_bytes(bytes)
    }
}

impl ServiceBackend for ShardedSntIndex {
    const SHARED_APPENDS: bool = true;

    fn append_permit(&self) -> Option<std::sync::MutexGuard<'_, ()>> {
        Some(ShardedSntIndex::append_permit(self))
    }

    fn apply_append_shared(&self, set: &TrajectorySet) -> AppendEffect {
        let effect = self.append_batch(set);
        AppendEffect {
            appended: effect.appended,
            touched_shards: Some(effect.touched),
        }
    }

    fn num_trajectories(&self) -> usize {
        ShardedSntIndex::num_trajectories(self)
    }

    fn num_partitions(&self) -> usize {
        ShardedSntIndex::num_partitions(self)
    }

    fn apply_append(&mut self, set: &TrajectorySet) -> AppendEffect {
        self.apply_append_shared(set)
    }

    fn prepare_payload(
        &self,
        payload: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<Vec<Trajectory>, StoreError> {
        self.prepare_append_batch(payload)
    }

    fn prepare_payload_at(
        &self,
        payload: &[(UserId, Vec<TrajEntry>)],
        from: usize,
    ) -> Result<Vec<Trajectory>, StoreError> {
        self.prepare_append_batch_at(from as u32, payload)
    }

    fn apply_prepared(&mut self, batch: &[Trajectory]) -> AppendEffect {
        self.apply_prepared_shared(batch)
    }

    fn apply_prepared_shared(&self, batch: &[Trajectory]) -> AppendEffect {
        let refs: Vec<&Trajectory> = batch.iter().collect();
        let effect = ShardedSntIndex::append_trajectories(self, &refs);
        AppendEffect {
            appended: effect.appended,
            touched_shards: Some(effect.touched),
        }
    }

    fn absorb_append(&mut self, set: &TrajectorySet) -> AppendEffect {
        self.absorb_append_shared(set)
    }

    fn absorb_append_shared(&self, set: &TrajectorySet) -> AppendEffect {
        let refs = new_members(set, ShardedSntIndex::num_trajectories(self));
        let effect = ShardedSntIndex::absorb_trajectories(self, &refs);
        AppendEffect {
            appended: effect.appended,
            touched_shards: Some(effect.touched),
        }
    }

    fn absorb_prepared(&mut self, batch: Vec<Trajectory>) -> AppendEffect {
        self.absorb_prepared_shared(batch)
    }

    fn absorb_prepared_shared(&self, batch: Vec<Trajectory>) -> AppendEffect {
        // Sharded absorption clones per touched shard anyway (a
        // trajectory lands whole on every shard it touches), so the
        // by-value batch is only borrowed here.
        let refs: Vec<&Trajectory> = batch.iter().collect();
        let effect = ShardedSntIndex::absorb_trajectories(self, &refs);
        AppendEffect {
            appended: effect.appended,
            touched_shards: Some(effect.touched),
        }
    }

    fn compact(&mut self, horizon: Option<Timestamp>) -> CompactionOutcome {
        ShardedSntIndex::compact(self, horizon)
    }

    fn compact_shared(&self, horizon: Option<Timestamp>) -> CompactionOutcome {
        ShardedSntIndex::compact(self, horizon)
    }

    fn hot_stats(&self) -> HotStats {
        ShardedSntIndex::hot_stats(self)
    }

    fn max_data_time(&self) -> Timestamp {
        self.data_max()
    }

    fn encode_wal_payload(&self, payload: &[(UserId, Vec<TrajEntry>)], from: usize) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.plan_wal_payload(WalBatch {
            base: from as u64,
            trajectories: payload.to_vec(),
        })
        .persist(&mut w);
        w.into_bytes()
    }

    fn route_shard(&self, spq: &Spq) -> Option<usize> {
        Some(self.router().shard_of(spq.path.first()))
    }

    fn shard_stats(&self) -> Option<Vec<ShardStats>> {
        Some(ShardedSntIndex::shard_stats(self))
    }

    fn encode_wal_record(&self, set: &TrajectorySet, from: usize) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.plan_wal_batch(set, from).persist(&mut w);
        w.into_bytes()
    }

    fn replay_wal_record(&mut self, record: &[u8]) -> Result<(), StoreError> {
        let mut r = ByteReader::new(record);
        let tagged = ShardedWalBatch::restore(&mut r)?;
        r.expect_exhausted("sharded wal record")?;
        let have = ShardedSntIndex::num_trajectories(self) as u64;
        if tagged.batch.base < have {
            return Ok(());
        }
        if tagged.batch.base > have {
            return Err(StoreError::WalGap {
                expected: have,
                found: tagged.batch.base,
            });
        }
        let effect = self.append_trajectory_batch(&tagged.batch.trajectories)?;
        // The record carries the routing the writer observed; a
        // disagreement means the snapshot's routing table is not the one
        // the log was written against.
        let applied: Vec<u16> = effect.touched.iter().map(|&s| s as u16).collect();
        if applied != tagged.touched {
            return Err(StoreError::corrupt(format!(
                "wal record routed to shards {:?} but the routing table maps it to {:?}",
                tagged.touched, applied
            )));
        }
        Ok(())
    }

    fn write_snapshot_to<W: std::io::Write>(&self, out: &mut W) -> Result<(), StoreError> {
        ShardedSntIndex::write_snapshot_to(self, out)
    }

    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        ShardedSntIndex::from_snapshot_bytes(bytes)
    }
}
