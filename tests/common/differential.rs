//! The monolith-vs-sharded differential oracle.
//!
//! [`DiffHarness`] builds one monolithic [`QueryService`] and one
//! [`ShardedQueryService`] per shard count in [`SHARD_COUNTS`] from the
//! same datagen stream, then drives them through identical operations —
//! SPQs, trip queries, appends, snapshot/reopen cycles — asserting
//! **byte-identical** answers at every step (float bit patterns in index
//! scan order, trip stats, histograms).
//!
//! On a divergence the harness does not just panic: it first *minimizes*
//! the offending query — greedily dropping predicates and shrinking the
//! path while the divergence persists — and then reports the minimal
//! query together with its per-edge shard assignment, so a routing or
//! stitching bug is immediately localizable.
//!
//! [`QueryGen`] supplies the randomized-but-deterministic workload on top
//! of the proptest shim's [`TestRng`]/[`Strategy`] machinery.

use proptest::{Strategy, TestRng};
use std::path::PathBuf;
use std::sync::Arc;
use tthr::core::{
    QueryEngineConfig, ShardedSntIndex, SntConfig, SntIndex, Spq, TimeInterval, TripQuery,
};
use tthr::datagen::{generate_network, generate_workload, NetworkConfig, WorkloadConfig};
use tthr::network::RoadNetwork;
use tthr::service::{IngestConfig, QueryService, ServiceConfig, ShardedQueryService};
use tthr::trajectory::{TrajId, TrajectorySet};

use super::{prefix_set, value_bits as bits};

/// The shard counts every differential run compares against the monolith.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// Monolith + sharded services over one shared trajectory stream.
pub struct DiffHarness {
    network: Arc<RoadNetwork>,
    /// The full datagen stream; `applied` trajectories are indexed so far.
    full: TrajectorySet,
    applied: usize,
    config: ServiceConfig,
    monolith: QueryService,
    sharded: Vec<(usize, ShardedQueryService)>,
    /// In hot-tail mode, a direct-append monolith (ingest lifecycle off)
    /// fed the same batch schedule — the "re-indexed everything the old
    /// way" oracle the merged read path must match byte-for-byte.
    oracle: Option<QueryService>,
    /// Scratch directory for snapshot/reopen cycles (removed on drop).
    dir: PathBuf,
    snapshots: usize,
    /// Latest snapshot directories (monolith, then one per shard count),
    /// set once `snapshot` ran — `reopen` restarts from them.
    latest: Option<(PathBuf, Vec<PathBuf>)>,
    /// Largest number of distinct shards one append batch touched on the
    /// max-K service (proves the suite exercised multi-shard batches).
    pub max_shards_per_batch: usize,
}

impl DiffHarness {
    /// Builds the services over the first third of a small synthetic
    /// world; the rest of the stream feeds [`DiffHarness::append_next`].
    pub fn new(name: &str, engine: QueryEngineConfig) -> DiffHarness {
        Self::with_ingest(name, engine, IngestConfig::default())
    }

    /// As [`DiffHarness::new`] with an explicit ingest lifecycle config.
    /// With `ingest.hot_tail` on, every service absorbs appends into its
    /// hot tail and an extra direct-append **oracle** monolith (lifecycle
    /// off) is built over the same stream; every check also asserts the
    /// hot-tail monolith answers byte-identically to that oracle.
    pub fn with_ingest(name: &str, engine: QueryEngineConfig, ingest: IngestConfig) -> DiffHarness {
        let syn = generate_network(&NetworkConfig::small());
        let full = generate_workload(&syn, &WorkloadConfig::small());
        let network = Arc::new(syn.network);
        let applied = full.len() / 3;
        let initial = prefix_set(&full, applied);
        let oracle = ingest.hot_tail.then(|| {
            QueryService::new(
                SntIndex::build(&network, &initial, SntConfig::default()),
                Arc::clone(&network),
                ServiceConfig {
                    num_threads: 2,
                    cache_capacity: 4096,
                    engine: engine.clone(),
                    ..ServiceConfig::default()
                },
            )
        });
        let config = ServiceConfig {
            num_threads: 2,
            cache_capacity: 4096,
            engine,
            ingest,
            ..ServiceConfig::default()
        };
        let monolith = QueryService::new(
            SntIndex::build(&network, &initial, SntConfig::default()),
            Arc::clone(&network),
            config.clone(),
        );
        let sharded = SHARD_COUNTS
            .iter()
            .map(|&k| {
                let index = ShardedSntIndex::build(&network, &initial, SntConfig::default(), k);
                (
                    k,
                    QueryService::new(index, Arc::clone(&network), config.clone()),
                )
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("tthr-diff-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiffHarness {
            network,
            full,
            applied,
            config,
            monolith,
            sharded,
            oracle,
            dir,
            snapshots: 0,
            latest: None,
            max_shards_per_batch: 0,
        }
    }

    /// Trajectories indexed so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Whether the stream still has unappended trajectories.
    pub fn can_append(&self) -> bool {
        self.applied < self.full.len()
    }

    /// The full stream (query generation samples paths from the applied
    /// prefix).
    pub fn stream(&self) -> &TrajectorySet {
        &self.full
    }

    /// Appends up to `n` more trajectories from the stream to every
    /// service as one batch and cross-checks the append outcome.
    pub fn append_next(&mut self, n: usize) -> usize {
        let to = (self.applied + n.max(1)).min(self.full.len());
        if to == self.applied {
            return 0;
        }
        let grown = prefix_set(&self.full, to);
        // Track batch fan-out on the widest-partitioned service before
        // applying: how many distinct shards does this one batch touch?
        if let Some((_, svc)) = self.sharded.iter().find(|(k, _)| *k == max_k()) {
            let touched = svc.with_index(|index| {
                let mut shards: Vec<usize> = (self.applied..to)
                    .flat_map(|id| {
                        self.full
                            .get(TrajId(id as u32))
                            .entries()
                            .iter()
                            .map(|e| index.router().shard_of(e.edge))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                shards.sort_unstable();
                shards.dedup();
                shards.len()
            });
            self.max_shards_per_batch = self.max_shards_per_batch.max(touched);
        }
        let appended = to - self.applied;
        assert_eq!(
            self.monolith.append_batch(&grown).expect("monolith append"),
            appended
        );
        for (k, svc) in &self.sharded {
            assert_eq!(
                svc.append_batch(&grown).expect("sharded append"),
                appended,
                "K={k} appended a different count"
            );
        }
        if let Some(oracle) = &self.oracle {
            assert_eq!(
                oracle.append_batch(&grown).expect("oracle append"),
                appended
            );
        }
        self.applied = to;
        appended
    }

    /// Compacts every lifecycle-enabled service (seals the hot tail into
    /// the immutable levels) and asserts each tail drained. The oracle is
    /// deliberately **not** compacted — it has no hot tail; subsequent
    /// checks prove sealing changed no answer. Returns the entries the
    /// monolith sealed (sharded services seal more: a trajectory is
    /// replicated into every shard it touches).
    pub fn compact_all(&mut self) -> usize {
        let sealed = self.monolith.compact_now().expect("monolith compact");
        assert_eq!(self.monolith.hot_stats().entries, 0);
        for (k, svc) in &self.sharded {
            svc.compact_now()
                .unwrap_or_else(|e| panic!("K={k} compact: {e}"));
            assert_eq!(svc.hot_stats().entries, 0, "K={k} kept a hot tail");
        }
        sealed.sealed_entries
    }

    /// The monolith's hot-tail backlog (0 outside hot-tail mode).
    pub fn hot_entries(&self) -> usize {
        self.monolith.hot_stats().entries
    }

    /// Snapshots every service into fresh directories and attaches
    /// write-ahead logging (later appends are WAL-logged there).
    pub fn snapshot(&mut self) {
        self.snapshots += 1;
        let mono_dir = self.dir.join(format!("mono-{}", self.snapshots));
        self.monolith.save_snapshot(&mono_dir).expect("snapshot");
        let mut shard_dirs = Vec::new();
        for (k, svc) in &self.sharded {
            let d = self.dir.join(format!("k{k}-{}", self.snapshots));
            svc.save_snapshot(&d).expect("sharded snapshot");
            shard_dirs.push(d);
        }
        self.latest = Some((mono_dir, shard_dirs));
    }

    /// Restarts every service from its latest snapshot directory,
    /// replaying whatever WAL records accumulated since [`Self::snapshot`]
    /// ran. No-op when no snapshot was taken yet.
    pub fn reopen(&mut self) {
        let Some((mono_dir, shard_dirs)) = self.latest.clone() else {
            return;
        };
        self.monolith =
            QueryService::open(&mono_dir, Arc::clone(&self.network), self.config.clone())
                .expect("monolith reopen");
        for ((k, svc), d) in self.sharded.iter_mut().zip(&shard_dirs) {
            *svc =
                ShardedQueryService::open_with(d, Arc::clone(&self.network), self.config.clone())
                    .unwrap_or_else(|e| panic!("sharded K={k} reopen: {e}"));
        }
        // Reopened services must still hold the full applied prefix.
        let want = self.applied;
        self.monolith
            .with_index(|i| assert_eq!(i.num_trajectories(), want));
        for (k, svc) in &self.sharded {
            svc.with_index(|i| assert_eq!(i.num_trajectories(), want, "K={k} lost trajectories"));
        }
    }

    /// Asserts every sharded service answers the SPQ byte-identically to
    /// the monolith; on divergence, minimizes and reports.
    pub fn check_spq(&self, spq: &Spq) {
        let want = self.monolith.get_travel_times(spq);
        if let Some(oracle) = &self.oracle {
            let direct = oracle.get_travel_times(spq);
            assert!(
                bits(&direct.values) == bits(&want.values) && direct.fallback == want.fallback,
                "hot-tail monolith diverged from the direct-append oracle\n\
                 query: {spq:?}\n\
                 oracle:   values {:?} (fallback {})\n\
                 hot-tail: values {:?} (fallback {})\n\
                 hot backlog: {:?}",
                direct.values,
                direct.fallback,
                want.values,
                want.fallback,
                self.monolith.hot_stats(),
            );
        }
        for (k, svc) in &self.sharded {
            let got = svc.get_travel_times(spq);
            if bits(&want.values) != bits(&got.values) || want.fallback != got.fallback {
                self.report_spq_divergence(*k, svc, spq);
            }
        }
    }

    /// Asserts every sharded service answers the trip query identically
    /// to the monolith (stats, histogram, per-sub results).
    pub fn check_trip(&self, spq: &Spq) {
        let want = self.monolith.trip_query(spq);
        if let Some(oracle) = &self.oracle {
            let direct = oracle.trip_query(spq);
            assert!(
                trips_equal(&direct, &want),
                "hot-tail monolith trip diverged from the direct-append oracle\n\
                 query: {spq:?}\n\
                 oracle stats:   {:?}\n\
                 hot-tail stats: {:?}\n\
                 hot backlog: {:?}",
                direct.stats,
                want.stats,
                self.monolith.hot_stats(),
            );
        }
        for (k, svc) in &self.sharded {
            let got = svc.trip_query(spq);
            if !trips_equal(&want, &got) {
                // Minimize at the SPQ level when possible: a diverging trip
                // almost always contains a diverging sub-query.
                let fails =
                    |q: &Spq| !trips_equal(&self.monolith.trip_query(q), &svc.trip_query(q));
                let minimal = minimize(&fails, spq.clone());
                panic!(
                    "sharded K={k} trip query diverged from the monolith\n\
                     original query: {spq:?}\n\
                     minimal failing query: {minimal:?}\n\
                     edge→shard assignment: {:?}\n\
                     monolith: {:?}\n\
                     sharded:  {:?}",
                    self.shard_assignment(svc, &minimal),
                    self.monolith.trip_query(&minimal).stats,
                    svc.trip_query(&minimal).stats,
                );
            }
        }
    }

    /// Runs both checks on a slice of queries (`spq` for every query,
    /// `trip` for every `trip_every`-th).
    pub fn check_all(&self, queries: &[Spq], trip_every: usize) {
        for (i, q) in queries.iter().enumerate() {
            self.check_spq(q);
            if trip_every > 0 && i % trip_every == 0 {
                self.check_trip(q);
            }
        }
    }

    fn shard_assignment(&self, svc: &ShardedQueryService, spq: &Spq) -> Vec<(u32, usize)> {
        svc.with_index(|index| {
            spq.path
                .edges()
                .iter()
                .map(|&e| (e.0, index.router().shard_of(e)))
                .collect()
        })
    }

    fn report_spq_divergence(&self, k: usize, svc: &ShardedQueryService, spq: &Spq) -> ! {
        let fails = |q: &Spq| {
            let a = self.monolith.get_travel_times(q);
            let b = svc.get_travel_times(q);
            bits(&a.values) != bits(&b.values) || a.fallback != b.fallback
        };
        let minimal = minimize(&fails, spq.clone());
        let want = self.monolith.get_travel_times(&minimal);
        let got = svc.get_travel_times(&minimal);
        panic!(
            "sharded K={k} diverged from the monolith\n\
             original query: {spq:?}\n\
             minimal failing query: {minimal:?}\n\
             edge→shard assignment: {:?}\n\
             monolith: values {:?} (fallback {})\n\
             sharded:  values {:?} (fallback {})",
            self.shard_assignment(svc, &minimal),
            want.values,
            want.fallback,
            got.values,
            got.fallback,
        );
    }
}

impl Drop for DiffHarness {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn max_k() -> usize {
    *SHARD_COUNTS.iter().max().expect("non-empty")
}

/// Structural equality of two trip answers: identical processing
/// counters, convolved histogram, and per-sub-query results (paths,
/// value bit patterns, means, fallback flags).
pub fn trips_equal(a: &TripQuery, b: &TripQuery) -> bool {
    a.stats == b.stats
        && a.histogram == b.histogram
        && a.subs.len() == b.subs.len()
        && a.subs.iter().zip(&b.subs).all(|(x, y)| {
            x.path == y.path
                && bits(&x.values) == bits(&y.values)
                && x.mean.to_bits() == y.mean.to_bits()
                && x.fallback == y.fallback
        })
}

/// Greedy minimizer: repeatedly applies the first shrinking step that
/// still fails, until no candidate fails.
fn minimize(fails: &dyn Fn(&Spq) -> bool, mut q: Spq) -> Spq {
    loop {
        let mut reduced = None;
        for cand in shrink_candidates(&q) {
            if fails(&cand) {
                reduced = Some(cand);
                break;
            }
        }
        match reduced {
            Some(c) => q = c,
            None => return q,
        }
    }
}

/// One-step simplifications of a query, cheapest first: drop predicates,
/// simplify the interval, then shrink the path from either end.
fn shrink_candidates(q: &Spq) -> Vec<Spq> {
    let mut cands = Vec::new();
    if q.beta.is_some() {
        let mut c = q.clone();
        c.beta = None;
        cands.push(c);
    }
    if q.exclude.is_some() {
        let mut c = q.clone();
        c.exclude = None;
        cands.push(c);
    }
    if !q.filter.is_empty() {
        let mut c = q.clone();
        c.filter = tthr::core::Filter::None;
        cands.push(c);
    }
    if q.interval.is_periodic() {
        let mut c = q.clone();
        c.interval = TimeInterval::fixed(0, i64::MAX / 4);
        cands.push(c);
    }
    let l = q.path.len();
    if l > 1 {
        for range in [0..l / 2, l / 2..l, 0..l - 1, 1..l] {
            let mut c = q.clone();
            c.path = q.path.sub_path(range);
            cands.push(c);
        }
    }
    cands
}

/// Deterministic randomized query/op generation over the proptest shim.
pub struct QueryGen {
    rng: TestRng,
}

impl QueryGen {
    /// Seeds from the test name (the shim's per-test convention), plus an
    /// optional environment override `TTHR_DIFF_SEED` so CI can pin (or a
    /// soak run can vary) the stream without editing the test.
    pub fn new(name: &str) -> QueryGen {
        let seed = std::env::var("TTHR_DIFF_SEED").unwrap_or_default();
        QueryGen {
            rng: TestRng::from_name(&format!("{name}-{seed}")),
        }
    }

    /// A uniform draw from a range (proptest-shim strategy sampling).
    pub fn range(&mut self, r: std::ops::Range<usize>) -> usize {
        r.sample(&mut self.rng)
    }

    /// A random SPQ whose path is a sub-path of an already-applied
    /// trajectory (so answers are non-trivial), with randomized interval
    /// flavor, β, user filter, and exclusion.
    pub fn spq(&mut self, h: &DiffHarness) -> Spq {
        self.spq_from(h.stream(), h.applied())
    }

    /// As [`QueryGen::spq`] over an explicit set prefix.
    pub fn spq_from(&mut self, set: &TrajectorySet, applied: usize) -> Spq {
        assert!(applied > 0, "cannot sample from an empty prefix");
        let tr = set.get(TrajId(self.range(0..applied) as u32));
        let max_len = tr.len().min(6);
        let len = 1 + self.range(0..max_len);
        let start = self.range(0..tr.len() - len + 1);
        let path = tr.path().sub_path(start..start + len);
        let enter = tr.entries()[start].enter_time;

        let interval = match self.range(0..5) {
            0 => TimeInterval::fixed(0, i64::MAX / 4),
            1 => {
                let w = 60 + self.range(0..7200) as i64;
                TimeInterval::fixed(enter - w, enter + w)
            }
            2 => TimeInterval::periodic_around(enter, [900, 1800, 3600][self.range(0..3)]),
            3 => TimeInterval::periodic(
                (self.range(0..24) * 3600) as i64,
                [900, 1800, 2700][self.range(0..3)],
            ),
            // Degenerate window far from the data: exercises relaxation
            // all the way to the fallback.
            _ => TimeInterval::periodic(3 * 3600, 900),
        };

        let mut q = Spq::new(path, interval);
        if self.range(0..10) < 6 {
            q = q.with_beta(1 + self.range(0..12) as u32);
        }
        if self.range(0..10) < 3 {
            // The path owner's user half the time, an arbitrary user else.
            let user = if self.range(0..2) == 0 {
                tr.user()
            } else {
                set.get(TrajId(self.range(0..applied) as u32)).user()
            };
            q = q.with_user(user);
        }
        if self.range(0..10) < 2 {
            // Exclude the source trajectory (the paper's own-answer
            // exclusion) or a random one.
            let ex = if self.range(0..2) == 0 {
                tr.id()
            } else {
                TrajId(self.range(0..applied) as u32)
            };
            q = q.without_trajectory(ex);
        }
        q
    }
}
