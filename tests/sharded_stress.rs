//! Concurrency stress for the sharded service: 8 reader threads against
//! 1 appender performing single-shard appends.
//!
//! Invariants checked while the threads race:
//!
//! * **No torn reads** — every answer a reader observes equals the
//!   complete answer of *some* index generation (never a mix of two), and
//!   answers on shards the appender never writes are byte-stable for the
//!   whole run.
//! * **Scoped invalidation** — after the final append, the untouched
//!   shards' cache entries are still resident: re-querying them is pure
//!   hits (hit-rate on untouched shards stays flat, misses do not move).

mod common;

use common::{small_world, value_bits as bits};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tthr::core::{ShardedSntIndex, SntConfig, SntIndex, Spq, TimeInterval};
use tthr::service::{QueryService, ServiceConfig, ShardedQueryService};
use tthr::trajectory::{TrajEntry, TrajectorySet, UserId};

const SHARDS: usize = 4;
const ROUNDS: usize = 6;
const READERS: usize = 8;
const READER_ITERS: usize = 60;

/// Copies `set` and appends `extra` single-shard trajectories one per
/// generation: `generations[g]` holds the set after `g` appends.
fn generations(set: &TrajectorySet, extra: &[(UserId, Vec<TrajEntry>)]) -> Vec<TrajectorySet> {
    let mut gens = Vec::with_capacity(extra.len() + 1);
    let mut current = set.clone();
    gens.push(current.clone());
    for (user, entries) in extra {
        current.push(*user, entries.clone()).expect("valid extra");
        gens.push(current.clone());
    }
    gens
}

#[test]
fn readers_race_single_shard_appender_without_torn_reads() {
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let service: ShardedQueryService = QueryService::new(
        ShardedSntIndex::build(&network, &set, SntConfig::default(), SHARDS),
        Arc::clone(&network),
        ServiceConfig {
            num_threads: READERS,
            ..ServiceConfig::default()
        },
    );
    let shard_of = |e| service.with_index(|i| i.router().shard_of(e));

    // The appender writes only shard `target`: the shard of the first
    // trajectory's first edge (guaranteed non-empty traffic).
    let target = shard_of(set.get(tthr::trajectory::TrajId(0)).entries()[0].edge);

    // Per-round extra trajectories: maximal entry runs lying entirely in
    // the target shard, lifted from real trajectories (so they stay
    // connected paths).
    let mut extra: Vec<(UserId, Vec<TrajEntry>)> = Vec::new();
    'outer: for tr in set.iter() {
        let entries = tr.entries();
        let mut run_start = None;
        for (i, e) in entries.iter().enumerate() {
            if shard_of(e.edge) == target {
                run_start.get_or_insert(i);
            } else if let Some(s) = run_start.take() {
                extra.push((tr.user(), entries[s..i].to_vec()));
            }
            if extra.len() >= ROUNDS {
                break 'outer;
            }
        }
        if let Some(s) = run_start {
            extra.push((tr.user(), entries[s..].to_vec()));
            if extra.len() >= ROUNDS {
                break;
            }
        }
    }
    assert!(extra.len() >= ROUNDS, "world too small to stage appends");
    extra.truncate(ROUNDS);
    let gens = generations(&set, &extra);

    // Probe queries: several per untouched shard, several on the target.
    let mut untouched: Vec<Spq> = Vec::new();
    let mut touched: Vec<Spq> = Vec::new();
    let mut per_shard = [0usize; SHARDS];
    for tr in set.iter() {
        for (i, e) in tr.entries().iter().enumerate() {
            let s = shard_of(e.edge);
            if per_shard[s] >= 4 {
                continue;
            }
            per_shard[s] += 1;
            let len = (tr.len() - i).min(3);
            let q = Spq::new(
                tr.path().sub_path(i..i + len),
                TimeInterval::fixed(0, i64::MAX / 4),
            );
            if s == target {
                touched.push(q);
            } else {
                untouched.push(q);
            }
        }
        if per_shard.iter().all(|&c| c >= 4) {
            break;
        }
    }
    assert!(!untouched.is_empty() && !touched.is_empty());

    // Expected answers per generation via an incrementally-appended
    // monolith (byte-equality monolith vs sharded is pinned elsewhere).
    let mut reference = SntIndex::build(&network, &set, SntConfig::default());
    let mut touched_expected: Vec<Vec<Vec<u64>>> = Vec::new(); // [gen][query]
    for g in 0..=ROUNDS {
        touched_expected.push(
            touched
                .iter()
                .map(|q| bits(&reference.get_travel_times(q).values))
                .collect(),
        );
        if g < ROUNDS {
            assert_eq!(reference.append_batch(&gens[g + 1]), 1);
        }
    }
    let pristine: Vec<Vec<u64>> = untouched
        .iter()
        .map(|q| bits(&service.get_travel_times(q).values))
        .collect();
    // Prime the touched queries too, so the appends have entries to evict.
    for q in &touched {
        let _ = service.get_travel_times(q);
    }

    // ---- Race phase: 8 readers vs 1 appender (rounds 1..ROUNDS-1) -----
    let torn = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                for _ in 0..READER_ITERS {
                    for (q, want) in untouched.iter().zip(&pristine) {
                        let got = bits(&service.get_travel_times(q).values);
                        if &got != want {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    for (qi, q) in touched.iter().enumerate() {
                        let got = bits(&service.get_travel_times(q).values);
                        let legal = touched_expected.iter().any(|gen| gen[qi] == got);
                        if !legal {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        scope.spawn(|| {
            for g in gens.iter().take(ROUNDS).skip(1) {
                assert_eq!(service.append_batch(g).expect("append"), 1);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
    });
    assert_eq!(
        torn.load(Ordering::Relaxed),
        0,
        "readers observed answers matching no complete index generation"
    );

    // ---- Final append with no readers racing: cache scoping is exact ---
    // Re-prime the touched queries (the racing appends may have evicted
    // them after the readers' last pass), so the final append provably
    // has same-shard entries to drop.
    for q in &touched {
        let _ = service.get_travel_times(q);
    }
    let entries_before = service.stats().cache.entries;
    assert_eq!(service.append_batch(&gens[ROUNDS]).expect("append"), 1);
    let stats = service.stats();
    assert!(
        stats.cache.entries >= untouched.len(),
        "untouched entries evicted: {} < {}",
        stats.cache.entries,
        untouched.len()
    );
    assert!(
        stats.cache.entries < entries_before || touched.is_empty(),
        "append evicted nothing although the touched shard was cached"
    );

    // Untouched shards' hit-rate stays flat: re-queries are pure hits.
    let before = service.stats().cache;
    for (q, want) in untouched.iter().zip(&pristine) {
        assert_eq!(&bits(&service.get_travel_times(q).values), want);
    }
    let after = service.stats().cache;
    assert_eq!(after.hits, before.hits + untouched.len() as u64);
    assert_eq!(
        after.misses, before.misses,
        "an untouched entry was evicted"
    );

    // Touched queries recompute and land on the final generation.
    for (qi, q) in touched.iter().enumerate() {
        assert_eq!(
            bits(&service.get_travel_times(q).values),
            touched_expected[ROUNDS][qi],
            "touched query {qi} did not reach the final generation"
        );
    }
}
