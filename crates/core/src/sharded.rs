//! Multi-index sharding: a partitioned SNT-index with exact routing and
//! per-shard locking.
//!
//! The monolithic [`SntIndex`] serves every query and absorbs every append
//! through one structure — in the service layer that means one `RwLock`
//! write stall per append and one giant blob per rebuild. This module
//! partitions the *road network* into `K` edge groups (a zone/grid
//! partitioner in the spirit of the π_Z strategy of
//! [`crate::partition`]) and builds one full `SntIndex` per group over
//! exactly the trajectories that touch the group's edges. Each shard sits
//! behind its **own** `RwLock`, so an append write-locks only the shards
//! its batch routes to — readers of every other shard proceed without
//! stalling (`benches/sharded.rs` measures the effect).
//!
//! # Why routing by first edge is exact
//!
//! A shard `s` holds the **complete** trajectory (all entries, original
//! aggregates) of every trajectory that traverses at least one edge of
//! `s`. Any trajectory matching an SPQ traverses the query path strictly,
//! so in particular it traverses the path's first edge — hence it is a
//! member of `shard(P[0])`. Routing every index operation whose pattern
//! starts at edge `e` to `shard(e)` therefore loses no candidates, and
//! because shard membership preserves the global trajectory order (and
//! temporal trees break timestamp ties by insertion order), scans return
//! the same leaves in the same order as the monolith: answers are
//! **byte-identical**, including β-capped prefixes, fallback estimates,
//! counting queries, and the cardinality estimator's per-partition sums.
//! The differential harness in `tests/sharded_equivalence.rs` pins this
//! contract for K ∈ {1, 2, 7} across query/append/snapshot/reopen
//! interleavings.
//!
//! The cost is bounded duplication: a trajectory crossing `m` shards is
//! indexed `m` times (the partition-by-fingerprint trade-off of Chapuis
//! et al.); the zone/grid partitioner keeps `m` small because real paths
//! are spatially local.
//!
//! # Concurrency contract
//!
//! Every query method takes `&self` and locks exactly one shard for
//! reading, so a single SPQ is always answered from one atomic shard
//! state. Appends also take `&self` (write-locking only the touched
//! shards) but are **not self-serializing**: concurrent appenders, and
//! snapshots racing appenders, must hold the [`ShardedSntIndex::append_permit`]
//! mutex — `tthr-service` does this for you and additionally validates
//! result-cache inserts and trip-query assembly against an append
//! generation counter.
//!
//! # Temporal-partitioning caveat
//!
//! [`ShardedSntIndex::build`] requires `config.partition_days == None`
//! (the paper's `FULL` configuration, the default): per-shard day
//! bucketing would anchor at each shard's own `data_min`, shifting bucket
//! boundaries relative to the monolith and with them the tie order of
//! equal-timestamp scans. Appends still create one temporal partition per
//! batch — identically in the monolith and in every touched shard.

use crate::interval::TimeInterval;
use crate::persist::WalBatch;
use crate::snt::{SntConfig, SntIndex, TravelTimes};
use crate::spq::Spq;
use crate::{CardinalityMode, IndexBackend, TravelTimeProvider};
use std::borrow::Cow;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard};
use tthr_network::{EdgeId, RoadNetwork, Timestamp};
use tthr_store::snapshot::{SectionId, SnapshotArchive, SnapshotBuilder};
use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};
use tthr_trajectory::{TrajEntry, TrajId, Trajectory, TrajectorySet, UserId};

/// Header section of a sharded snapshot: shard count, routing-table shape,
/// trajectory count, data span, construction config.
pub const SECTION_SHARDED_META: SectionId = SectionId(101);
/// The edge → shard routing table.
pub const SECTION_ROUTING: SectionId = SectionId(102);
/// Section id of shard `s` is `SHARD_SECTION_BASE + s`; the payload is the
/// shard's member list followed by its full monolithic snapshot container.
pub const SHARD_SECTION_BASE: u32 = 1000;

/// A static edge → shard assignment over a road network.
///
/// Built by sorting edges by `(zone, x, y, id)` of their source vertex and
/// chunking the order into `K` near-equal contiguous groups: shards are
/// zone-coherent and spatially contiguous (a grid-column sweep within each
/// zone class), so trajectories — which are spatially local — cross few
/// shards, and shard sizes are balanced to ±1 edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    /// `shard_of_edge[e] = s` for every edge id `e`.
    shard_of_edge: Vec<u16>,
    num_shards: usize,
}

impl ShardRouter {
    /// Partitions `network`'s edges into `num_shards` groups.
    ///
    /// # Panics
    /// Panics if `num_shards` is 0 or exceeds `u16::MAX`.
    pub fn build(network: &RoadNetwork, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard");
        assert!(num_shards <= u16::MAX as usize, "shard id space is u16");
        let mut order: Vec<EdgeId> = network.edge_ids().collect();
        let key = |e: EdgeId| {
            let p = network.position(network.edge_from(e));
            (network.attrs(e).zone as u8, p.x, p.y, e.0)
        };
        order.sort_by(|&a, &b| {
            let (za, xa, ya, ia) = key(a);
            let (zb, xb, yb, ib) = key(b);
            za.cmp(&zb)
                .then(xa.total_cmp(&xb))
                .then(ya.total_cmp(&yb))
                .then(ia.cmp(&ib))
        });
        let mut shard_of_edge = vec![0u16; network.num_edges()];
        let n = order.len();
        for (rank, e) in order.into_iter().enumerate() {
            // Contiguous chunks of ⌈n/K⌉ / ⌊n/K⌋ edges.
            shard_of_edge[e.index()] = ((rank * num_shards) / n.max(1)) as u16;
        }
        ShardRouter {
            shard_of_edge,
            num_shards,
        }
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of edges in the routing table.
    pub fn num_edges(&self) -> usize {
        self.shard_of_edge.len()
    }

    /// The shard owning an edge.
    ///
    /// # Panics
    /// Panics if the edge id is outside the routed network.
    pub fn shard_of(&self, e: EdgeId) -> usize {
        self.shard_of_edge[e.index()] as usize
    }

    /// Sorted, deduplicated shard ids touched by a sequence of entries —
    /// the shards that must index a trajectory traversing them. Public
    /// because the cluster tier's router plans per-node append subsets
    /// with exactly this partition (see [`crate::node`]).
    pub fn shards_touched(&self, entries: &[TrajEntry]) -> Vec<u16> {
        let mut shards: Vec<u16> = entries
            .iter()
            .map(|en| self.shard_of_edge[en.edge.index()])
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// Wire form: shard count (u32) + the per-edge table.
impl Persist for ShardRouter {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.num_shards as u32);
        w.put_seq(&self.shard_of_edge);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let num_shards = r.get_u32()? as usize;
        if num_shards == 0 || num_shards > u16::MAX as usize {
            return Err(StoreError::corrupt(format!(
                "routing table claims {num_shards} shards"
            )));
        }
        let shard_of_edge: Vec<u16> = r.get_seq()?;
        if let Some(bad) = shard_of_edge.iter().find(|&&s| (s as usize) >= num_shards) {
            return Err(StoreError::corrupt(format!(
                "routing table entry {bad} out of range for {num_shards} shards"
            )));
        }
        Ok(ShardRouter {
            shard_of_edge,
            num_shards,
        })
    }
}

/// The effect of one sharded append: how many trajectories were added and
/// which shards absorbed leaves. Untouched shards were never even
/// write-locked — the service layer uses this to scope cache
/// invalidation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedAppend {
    /// Trajectories appended (0 leaves every shard unchanged).
    pub appended: usize,
    /// Sorted ids of the shards that received leaves.
    pub touched: Vec<usize>,
}

/// One sharded write-ahead-log record: the monolithic [`WalBatch`] tagged
/// with the shard ids the batch routes to under the writing service's
/// routing table. Replay re-derives the routing and rejects a record whose
/// tag disagrees — the snapshot's routing table and the log would then
/// describe different partitionings, and applying the batch could silently
/// skew shard membership.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedWalBatch {
    /// Sorted shard ids the batch touches.
    pub touched: Vec<u16>,
    /// The appended trajectories with their base stamp.
    pub batch: WalBatch,
}

/// Wire form: the touched-shard tag, then the monolithic batch record.
impl Persist for ShardedWalBatch {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_seq(&self.touched);
        self.batch.persist(w);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let touched: Vec<u16> = r.get_seq()?;
        let batch = WalBatch::restore(r)?;
        Ok(ShardedWalBatch { touched, batch })
    }
}

/// One shard's state: the index and its member list, guarded together so
/// a reader always sees the exclusion-id translation that matches the
/// index content.
struct ShardState {
    index: SntIndex,
    /// `members[local] = global` trajectory id, ascending — shard-local
    /// dense ids preserve the global order, which is what keeps timestamp
    /// tie-breaks identical to the monolith.
    members: Vec<u32>,
}

/// A partitioned SNT-index: `K` independently locked [`SntIndex`] shards
/// plus a thin routing table (see the module docs for the exactness
/// argument and the concurrency contract).
pub struct ShardedSntIndex {
    config: SntConfig,
    router: ShardRouter,
    shards: Vec<RwLock<ShardState>>,
    /// Serializes appenders (and snapshots against appenders) without
    /// blocking readers; see [`ShardedSntIndex::append_permit`].
    append_serial: Mutex<()>,
    num_trajectories: AtomicUsize,
    data_min: AtomicI64,
    data_max: AtomicI64,
    /// Observational per-shard counters (never read on the query path);
    /// one per shard, indexed like `shards`.
    shard_counters: Vec<ShardCounters>,
}

/// Lifetime counters one shard accumulates; exposed as [`ShardStats`].
#[derive(Default)]
struct ShardCounters {
    /// Append batches that write-locked this shard.
    appends: AtomicU64,
    /// Trajectories those batches added to this shard.
    appended_trajectories: AtomicU64,
    /// Nanoseconds appenders spent waiting to acquire this shard's write
    /// lock (reader contention made visible).
    lock_wait_ns: AtomicU64,
}

/// Point-in-time statistics of one shard, read through
/// [`ShardedSntIndex::shard_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Trajectories currently indexed by the shard (members list length).
    pub trajectories: u64,
    /// Append batches that touched the shard since construction.
    pub appends: u64,
    /// Trajectories appended to the shard since construction.
    pub appended_trajectories: u64,
    /// Total nanoseconds appenders waited on the shard's write lock.
    pub lock_wait_ns: u64,
}

impl ShardedSntIndex {
    /// Builds `num_shards` shards over a trajectory set.
    ///
    /// Every shard indexes the full entry sequence of each member
    /// trajectory (aggregates and FM-text are those of the whole
    /// trajectory), so answers match the monolith bit for bit.
    ///
    /// # Panics
    /// Panics if `num_shards` is 0 or `config.partition_days` is set (see
    /// the module docs for why per-shard day bucketing breaks the
    /// byte-equality contract).
    pub fn build(
        network: &RoadNetwork,
        trajectories: &TrajectorySet,
        config: SntConfig,
        num_shards: usize,
    ) -> Self {
        assert!(
            config.partition_days.is_none(),
            "sharded builds require the FULL temporal configuration \
             (partition_days = None): per-shard day buckets would anchor \
             at shard-local data_min and break monolith byte-equality"
        );
        let router = ShardRouter::build(network, num_shards);
        let k = router.num_shards();
        let mut subsets: Vec<TrajectorySet> = (0..k).map(|_| TrajectorySet::new()).collect();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut data_min = Timestamp::MAX;
        let mut data_max = Timestamp::MIN;
        for tr in trajectories {
            data_min = data_min.min(tr.start_time());
            let last = tr.entries().last().expect("trajectories are non-empty");
            data_max = data_max.max(last.enter_time);
            for &s in &router.shards_touched(tr.entries()) {
                subsets[s as usize]
                    .push(tr.user(), tr.entries().to_vec())
                    .expect("member of a valid set");
                members[s as usize].push(tr.id().0);
            }
        }
        if trajectories.is_empty() {
            data_min = 0;
            data_max = 0;
        }
        let shards = subsets
            .iter()
            .zip(members)
            .map(|(subset, members)| {
                RwLock::new(ShardState {
                    index: SntIndex::build(network, subset, config),
                    members,
                })
            })
            .collect();
        ShardedSntIndex {
            config,
            router,
            shards,
            append_serial: Mutex::new(()),
            num_trajectories: AtomicUsize::new(trajectories.len()),
            data_min: AtomicI64::new(data_min),
            data_max: AtomicI64::new(data_max),
            shard_counters: (0..k).map(|_| ShardCounters::default()).collect(),
        }
    }

    /// The construction configuration.
    pub fn config(&self) -> &SntConfig {
        &self.config
    }

    /// The edge → shard routing table.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Runs a closure against one shard's index (read-locked).
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&SntIndex) -> R) -> R {
        f(&self.read_shard(s).index)
    }

    /// Global trajectory ids indexed by shard `s`, ascending.
    pub fn shard_members(&self, s: usize) -> Vec<u32> {
        self.read_shard(s).members.clone()
    }

    /// Point-in-time per-shard statistics (one entry per shard). Counter
    /// fields are lifetime totals since this in-memory instance was
    /// constructed (restores start from zero); `trajectories` is the
    /// shard's current membership size.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len())
            .map(|s| {
                let c = &self.shard_counters[s];
                ShardStats {
                    trajectories: self.read_shard(s).members.len() as u64,
                    appends: c.appends.load(Ordering::Relaxed),
                    appended_trajectories: c.appended_trajectories.load(Ordering::Relaxed),
                    lock_wait_ns: c.lock_wait_ns.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Number of trajectories appended across the index's lifetime (the
    /// global id space; shard-local counts are larger in sum whenever
    /// trajectories cross shard boundaries).
    pub fn num_trajectories(&self) -> usize {
        self.num_trajectories.load(Ordering::Acquire)
    }

    /// Total temporal partitions across all shards (each shard counts its
    /// initial build plus one per touching batch).
    pub fn num_partitions(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.read_shard(s).index.num_partitions())
            .sum()
    }

    /// Earliest trajectory start time across all shards.
    pub fn data_min(&self) -> Timestamp {
        self.data_min.load(Ordering::Acquire)
    }

    /// Latest segment entry time across all shards (`t_max`).
    pub fn data_max(&self) -> Timestamp {
        self.data_max.load(Ordering::Acquire)
    }

    /// Excludes other appenders — and snapshots from racing appenders —
    /// while held; readers are unaffected. [`ShardedSntIndex::append_batch`]
    /// and the snapshot writers do **not** take this internally (so a
    /// holder can compose append + WAL logging atomically, the way
    /// `tthr-service` does); anyone running concurrent appenders must
    /// hold it across each append, and snapshots taken while an appender
    /// may run must hold it too.
    pub fn append_permit(&self) -> MutexGuard<'_, ()> {
        self.append_serial.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn read_shard(&self, s: usize) -> RwLockReadGuard<'_, ShardState> {
        self.shards[s].read().unwrap_or_else(|e| e.into_inner())
    }

    /// Translates the global exclusion id into the shard-local id space
    /// (or drops it when the excluded trajectory has no occurrences in
    /// the shard — it then cannot match the query anyway, because
    /// matching implies membership).
    fn translate<'q>(members: &[u32], spq: &'q Spq) -> Cow<'q, Spq> {
        match spq.exclude {
            None => Cow::Borrowed(spq),
            Some(TrajId(global)) => {
                let mut q = spq.clone();
                q.exclude = members
                    .binary_search(&global)
                    .ok()
                    .map(|local| TrajId(local as u32));
                Cow::Owned(q)
            }
        }
    }

    /// `getTravelTimes` routed to the owning shard — byte-identical to the
    /// monolith over the same history (Procedure 5 semantics). Locks one
    /// shard for reading: the answer always reflects one atomic shard
    /// state.
    pub fn get_travel_times(&self, spq: &Spq) -> TravelTimes {
        self.get_travel_times_with(spq, &mut crate::SearchScratch::new())
    }

    /// [`ShardedSntIndex::get_travel_times`] through a per-query
    /// [`SearchScratch`](crate::SearchScratch). Each shard's inner index
    /// tags the scratch with its own process-unique id (plus its
    /// trajectory count), so a relaxation chain whose sub-paths route to
    /// different shards — or races an append — can never be served cached
    /// ranges from the wrong index state.
    pub fn get_travel_times_with(
        &self,
        spq: &Spq,
        scratch: &mut crate::SearchScratch,
    ) -> TravelTimes {
        let s = self.router.shard_of(spq.path.first());
        scratch.trace.note_shard(s);
        let shard = self.read_shard(s);
        shard
            .index
            .get_travel_times_with(&Self::translate(&shard.members, spq), scratch)
    }

    /// Exact predicate-matching traversal count, routed like a query.
    pub fn count_matching(&self, spq: &Spq, cap: u32) -> usize {
        let shard = self.read_shard(self.router.shard_of(spq.path.first()));
        shard
            .index
            .count_matching(&Self::translate(&shard.members, spq), cap)
    }

    /// [`ShardedSntIndex::count_matching`] through a per-shard-tagged
    /// scratch.
    pub fn count_matching_with(
        &self,
        spq: &Spq,
        cap: u32,
        scratch: &mut crate::SearchScratch,
    ) -> usize {
        let s = self.router.shard_of(spq.path.first());
        scratch.trace.note_shard(s);
        let shard = self.read_shard(s);
        shard
            .index
            .count_matching_with(&Self::translate(&shard.members, spq), cap, scratch)
    }

    /// Exact traversal count of a path (ISA-mode cardinality), routed to
    /// the shard of the path's first edge.
    pub fn traversal_count(&self, path: &tthr_network::Path) -> usize {
        self.read_shard(self.router.shard_of(path.first()))
            .index
            .traversal_count(path)
    }

    /// Appends all trajectories of `set` with ids `≥ num_trajectories()`
    /// as one batch: each touched shard gains one temporal partition
    /// holding the batch members that cross it; untouched shards are not
    /// even write-locked. See the module docs (and
    /// [`ShardedSntIndex::append_permit`]) for the multi-appender
    /// serialization contract.
    pub fn append_batch(&self, set: &TrajectorySet) -> ShardedAppend {
        let from = self.num_trajectories();
        if set.len() <= from {
            return ShardedAppend::default();
        }
        let batch: Vec<&Trajectory> = (from as u32..set.len() as u32)
            .map(|id| set.get(TrajId(id)))
            .collect();
        self.append_trajectories(&batch)
    }

    /// Appends a batch with the next dense global ids (embedded ids are
    /// ignored, mirroring [`SntIndex::append_trajectories`]).
    pub fn append_trajectories(&self, batch: &[&Trajectory]) -> ShardedAppend {
        self.ingest(batch, false)
    }

    /// Absorbs a batch into every touched shard's hot tail — the sharded
    /// counterpart of [`SntIndex::absorb_trajectories`]. Routing,
    /// membership, and counters behave exactly like
    /// [`ShardedSntIndex::append_trajectories`]; only the per-shard write
    /// primitive differs, so answers stay byte-identical to the monolith
    /// absorbing the same batch.
    pub fn absorb_trajectories(&self, batch: &[&Trajectory]) -> ShardedAppend {
        self.ingest(batch, true)
    }

    fn ingest(&self, batch: &[&Trajectory], absorb: bool) -> ShardedAppend {
        if batch.is_empty() {
            return ShardedAppend::default();
        }
        let from = self.num_trajectories() as u32;
        let k = self.shards.len();
        let mut per_shard: Vec<Vec<&Trajectory>> = vec![Vec::new(); k];
        let mut new_members: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (i, tr) in batch.iter().enumerate() {
            let global = from + i as u32;
            self.data_min.fetch_min(tr.start_time(), Ordering::AcqRel);
            let last = tr.entries().last().expect("trajectories are non-empty");
            self.data_max.fetch_max(last.enter_time, Ordering::AcqRel);
            for &s in &self.router.shards_touched(tr.entries()) {
                per_shard[s as usize].push(tr);
                new_members[s as usize].push(global);
            }
        }
        let mut touched = Vec::new();
        for (s, refs) in per_shard.iter().enumerate() {
            if refs.is_empty() {
                continue;
            }
            // Only this shard's readers wait, and only for this append.
            let wait = std::time::Instant::now();
            let mut shard = self.shards[s].write().unwrap_or_else(|e| e.into_inner());
            let counters = &self.shard_counters[s];
            counters
                .lock_wait_ns
                .fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
            counters.appends.fetch_add(1, Ordering::Relaxed);
            counters
                .appended_trajectories
                .fetch_add(refs.len() as u64, Ordering::Relaxed);
            shard.members.extend_from_slice(&new_members[s]);
            if absorb {
                shard.index.absorb_trajectories(refs);
            } else {
                shard.index.append_trajectories(refs);
            }
            touched.push(s);
        }
        self.num_trajectories
            .store(from as usize + batch.len(), Ordering::Release);
        ShardedAppend {
            appended: batch.len(),
            touched,
        }
    }

    /// Validates a raw batch of `(user, entries)` payloads and
    /// materializes them with the next dense global ids, **without**
    /// applying them — the sharded counterpart of
    /// [`SntIndex::prepare_append_batch`].
    pub fn prepare_append_batch(
        &self,
        trajectories: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<Vec<Trajectory>, StoreError> {
        self.prepare_append_batch_at(self.num_trajectories() as u32, trajectories)
    }

    /// [`ShardedSntIndex::prepare_append_batch`] with the first assigned
    /// global id given explicitly — the sharded counterpart of
    /// [`SntIndex::prepare_append_batch_at`], used by group-commit leaders
    /// stamping queued batches ahead of their application.
    pub fn prepare_append_batch_at(
        &self,
        from: u32,
        trajectories: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<Vec<Trajectory>, StoreError> {
        crate::persist::prepare_batch(from, self.router.num_edges(), trajectories)
    }

    /// Applies one WAL batch (validated like
    /// [`SntIndex::append_trajectory_batch`]): out-of-range edges and
    /// invalid trajectories are typed errors and leave the index
    /// untouched.
    pub fn append_trajectory_batch(
        &self,
        trajectories: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<ShardedAppend, StoreError> {
        let owned = self.prepare_append_batch(trajectories)?;
        let refs: Vec<&Trajectory> = owned.iter().collect();
        Ok(self.append_trajectories(&refs))
    }

    /// The absorb counterpart of
    /// [`ShardedSntIndex::append_trajectory_batch`]: validates the raw
    /// payload, then absorbs it into the touched shards' hot tails.
    pub fn absorb_trajectory_batch(
        &self,
        trajectories: &[(UserId, Vec<TrajEntry>)],
    ) -> Result<ShardedAppend, StoreError> {
        let owned = self.prepare_append_batch(trajectories)?;
        let refs: Vec<&Trajectory> = owned.iter().collect();
        Ok(self.absorb_trajectories(&refs))
    }

    /// Compacts every shard — seals pending hot batches and applies the
    /// retention horizon — write-locking one shard at a time, so readers
    /// of other shards proceed undisturbed. Callers running concurrent
    /// appenders must hold [`ShardedSntIndex::append_permit`] across the
    /// call, like any other multi-writer operation.
    pub fn compact(&self, retention_horizon: Option<Timestamp>) -> crate::CompactionOutcome {
        let mut out = crate::CompactionOutcome::default();
        for s in 0..self.shards.len() {
            let mut shard = self.shards[s].write().unwrap_or_else(|e| e.into_inner());
            out.merge(&shard.index.compact(retention_horizon));
        }
        out
    }

    /// Aggregated hot-tail accounting across all shards.
    pub fn hot_stats(&self) -> crate::HotStats {
        let mut out = crate::HotStats::default();
        for s in 0..self.shards.len() {
            let st = self.read_shard(s).index.hot_stats();
            out.batches += st.batches;
            out.entries += st.entries;
            out.bytes += st.bytes;
        }
        out
    }

    /// The WAL record for the delta `set[from..]`: the batch plus its
    /// shard-routing tag under the current routing table.
    pub fn plan_wal_batch(&self, set: &TrajectorySet, from: usize) -> ShardedWalBatch {
        self.plan_wal_payload(WalBatch::delta(set, from))
    }

    /// The WAL record for a raw payload batch appended at the current
    /// trajectory count: the batch plus its shard-routing tag under the
    /// current routing table.
    pub fn plan_wal_payload(&self, batch: WalBatch) -> ShardedWalBatch {
        let mut touched: Vec<u16> = batch
            .trajectories
            .iter()
            .flat_map(|(_, entries)| self.router.shards_touched(entries))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        ShardedWalBatch { touched, batch }
    }

    /// Serializes the sharded index into one snapshot container:
    /// [`SECTION_SHARDED_META`], [`SECTION_ROUTING`], then one section per
    /// shard (id [`SHARD_SECTION_BASE`]` + s`) holding the shard's member
    /// list and its complete monolithic snapshot bytes.
    ///
    /// Shards are read-locked one at a time; hold
    /// [`ShardedSntIndex::append_permit`] if an appender may run
    /// concurrently, or the sections could straddle an append.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_builder().into_bytes()
    }

    /// Streams the snapshot container into a writer (the sharded
    /// counterpart of [`SntIndex::write_snapshot_to`]); the same
    /// appender-quiescence note as [`ShardedSntIndex::to_snapshot_bytes`]
    /// applies.
    pub fn write_snapshot_to<W: std::io::Write>(&self, out: &mut W) -> Result<(), StoreError> {
        self.snapshot_builder().write_to(out)
    }

    fn snapshot_builder(&self) -> SnapshotBuilder {
        let mut builder = SnapshotBuilder::new();

        let mut meta = ByteWriter::new();
        self.config.persist(&mut meta);
        meta.put_u32(self.shards.len() as u32);
        meta.put_len(self.num_trajectories());
        meta.put_i64(self.data_min());
        meta.put_i64(self.data_max());
        meta.put_len(self.router.num_edges());
        builder.add_section(SECTION_SHARDED_META, meta.into_bytes());

        let mut routing = ByteWriter::new();
        self.router.persist(&mut routing);
        builder.add_section(SECTION_ROUTING, routing.into_bytes());

        for s in 0..self.shards.len() {
            let shard = self.read_shard(s);
            let mut w = ByteWriter::new();
            w.put_seq(&shard.members);
            let bytes = shard.index.to_snapshot_bytes();
            w.put_len(bytes.len());
            w.put_bytes(&bytes);
            builder.add_section(SectionId(SHARD_SECTION_BASE + s as u32), w.into_bytes());
        }
        builder
    }

    /// Reassembles a sharded index from a snapshot container, verifying
    /// the per-section CRCs (via [`SnapshotArchive`]) plus the
    /// cross-section invariants: routing-table shape, shard configs,
    /// member-list monotonicity, member counts against each shard's
    /// trajectory count, and global-id coverage.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let archive = SnapshotArchive::from_bytes(bytes)?;

        let mut meta = archive.section(SECTION_SHARDED_META)?;
        let config = SntConfig::restore(&mut meta)?;
        let k = meta.get_u32()? as usize;
        let num_trajectories = meta.get_u64()? as usize;
        let data_min = meta.get_i64()?;
        let data_max = meta.get_i64()?;
        let num_edges = meta.get_u64()? as usize;
        meta.expect_exhausted("sharded meta section")?;
        if k == 0 || k > u16::MAX as usize {
            return Err(StoreError::corrupt(format!("meta claims {k} shards")));
        }
        // Every trajectory appears in at least one member list (≥ 4 bytes
        // in the container), so a count beyond the container length is
        // corrupt — reject it before sizing the coverage bitmap, or a
        // crafted meta section could force a huge allocation instead of a
        // typed error.
        if num_trajectories > bytes.len() {
            return Err(StoreError::corrupt(format!(
                "meta claims {num_trajectories} trajectories in a {}-byte container",
                bytes.len()
            )));
        }

        let mut routing = archive.section(SECTION_ROUTING)?;
        let router = ShardRouter::restore(&mut routing)?;
        routing.expect_exhausted("routing section")?;
        if router.num_shards() != k {
            return Err(StoreError::corrupt(format!(
                "meta promises {k} shards, routing table has {}",
                router.num_shards()
            )));
        }
        if router.num_edges() != num_edges {
            return Err(StoreError::corrupt(format!(
                "meta promises {num_edges} edges, routing table has {}",
                router.num_edges()
            )));
        }

        let mut shards = Vec::with_capacity(k);
        let mut covered = vec![false; num_trajectories];
        for s in 0..k {
            let mut r = archive.section(SectionId(SHARD_SECTION_BASE + s as u32))?;
            let members: Vec<u32> = r.get_seq()?;
            let len = r.get_len(1)?;
            let shard_bytes = r.get_bytes(len)?;
            let index = SntIndex::from_snapshot_bytes(shard_bytes)?;
            r.expect_exhausted("shard section")?;
            if !members.windows(2).all(|w| w[0] < w[1]) {
                return Err(StoreError::corrupt(format!(
                    "shard {s} member list is not strictly ascending"
                )));
            }
            if let Some(&bad) = members.iter().find(|&&g| g as usize >= num_trajectories) {
                return Err(StoreError::corrupt(format!(
                    "shard {s} member {bad} out of range for {num_trajectories} trajectories"
                )));
            }
            if index.num_trajectories() != members.len() {
                return Err(StoreError::corrupt(format!(
                    "shard {s} indexes {} trajectories but lists {} members",
                    index.num_trajectories(),
                    members.len()
                )));
            }
            if *index.config() != config {
                return Err(StoreError::corrupt(format!(
                    "shard {s} config disagrees with the sharded meta config"
                )));
            }
            for &g in &members {
                covered[g as usize] = true;
            }
            shards.push(RwLock::new(ShardState { index, members }));
        }
        if let Some(orphan) = covered.iter().position(|&c| !c) {
            return Err(StoreError::corrupt(format!(
                "trajectory {orphan} belongs to no shard"
            )));
        }
        Ok(ShardedSntIndex {
            config,
            router,
            shards,
            append_serial: Mutex::new(()),
            num_trajectories: AtomicUsize::new(num_trajectories),
            data_min: AtomicI64::new(data_min),
            data_max: AtomicI64::new(data_max),
            shard_counters: (0..k).map(|_| ShardCounters::default()).collect(),
        })
    }
}

impl TravelTimeProvider for ShardedSntIndex {
    fn travel_times(&self, spq: &Spq) -> TravelTimes {
        self.get_travel_times(spq)
    }

    fn travel_times_with(&self, spq: &Spq, scratch: &mut crate::SearchScratch) -> TravelTimes {
        self.get_travel_times_with(spq, scratch)
    }
}

impl IndexBackend for ShardedSntIndex {
    fn count_matching(&self, spq: &Spq, cap: u32) -> usize {
        ShardedSntIndex::count_matching(self, spq, cap)
    }

    fn count_matching_with(
        &self,
        spq: &Spq,
        cap: u32,
        scratch: &mut crate::SearchScratch,
    ) -> usize {
        ShardedSntIndex::count_matching_with(self, spq, cap, scratch)
    }

    fn estimate(&self, spq: &Spq, mode: CardinalityMode) -> f64 {
        // The owning shard sees every traversal of the path's first edge,
        // so its ISA counts and per-partition ToD histograms match the
        // monolith's term for term (absent partitions contribute 0).
        let shard = self.read_shard(self.router.shard_of(spq.path.first()));
        crate::cardinality::estimate_cardinality(
            &shard.index,
            &Self::translate(&shard.members, spq),
            mode,
        )
    }

    fn full_interval(&self) -> TimeInterval {
        // The *global* span, so σ's terminal fallback query is literally
        // the same Spq the monolith derives.
        TimeInterval::fixed(self.data_min().min(0), self.data_max() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_E, EDGE_F};
    use tthr_network::Path;
    use tthr_trajectory::examples::example_trajectories;

    fn monolith() -> SntIndex {
        SntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
        )
    }

    fn sharded(k: usize) -> ShardedSntIndex {
        ShardedSntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
            k,
        )
    }

    fn workload() -> Vec<Spq> {
        vec![
            Spq::new(
                Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
                TimeInterval::fixed(0, 15),
            )
            .with_beta(2),
            Spq::new(Path::new(vec![EDGE_A, EDGE_B]), TimeInterval::fixed(0, 15)).with_beta(3),
            Spq::new(Path::new(vec![EDGE_E]), TimeInterval::fixed(0, 15)).with_beta(3),
            Spq::new(Path::new(vec![EDGE_F]), TimeInterval::periodic(0, 900)).with_beta(3),
            Spq::new(Path::new(vec![EDGE_B, EDGE_E]), TimeInterval::fixed(0, 100))
                .with_user(tthr_trajectory::UserId(1)),
            Spq::new(
                Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
                TimeInterval::fixed(0, 100),
            )
            .without_trajectory(TrajId(0)),
        ]
    }

    fn assert_matches_monolith(mono: &SntIndex, sharded: &ShardedSntIndex) {
        for spq in workload() {
            let a = mono.get_travel_times(&spq);
            let b = sharded.get_travel_times(&spq);
            let ab: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "{spq:?}");
            assert_eq!(a.fallback, b.fallback, "{spq:?}");
            assert_eq!(
                mono.count_matching(&spq, u32::MAX),
                sharded.count_matching(&spq, u32::MAX),
                "{spq:?}"
            );
        }
    }

    #[test]
    fn router_covers_every_edge_with_balanced_shards() {
        let net = example_network();
        for k in [1usize, 2, 3, 6, 7] {
            let router = ShardRouter::build(&net, k);
            assert_eq!(router.num_edges(), net.num_edges());
            let mut sizes = vec![0usize; k];
            for e in net.edge_ids() {
                sizes[router.shard_of(e)] += 1;
            }
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "k={k}: sizes {sizes:?}");
        }
    }

    #[test]
    fn router_round_trips_through_persist() {
        let router = ShardRouter::build(&example_network(), 3);
        let mut w = ByteWriter::new();
        router.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(ShardRouter::restore(&mut r).unwrap(), router);
        r.expect_exhausted("router").unwrap();
    }

    #[test]
    fn sharded_answers_match_monolith_for_all_k() {
        let mono = monolith();
        for k in [1usize, 2, 7] {
            assert_matches_monolith(&mono, &sharded(k));
        }
    }

    #[test]
    fn exclusion_translates_into_shard_local_ids() {
        // tr0 and tr3 traverse ⟨A,B,E⟩; excluding tr0 must drop exactly
        // one answer regardless of how local ids shifted.
        let mono = monolith();
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 100),
        )
        .without_trajectory(TrajId(0));
        for k in [2usize, 7] {
            let idx = sharded(k);
            assert_eq!(
                idx.get_travel_times(&q).sorted(),
                mono.get_travel_times(&q).sorted(),
                "k={k}"
            );
        }
    }

    #[test]
    fn append_batch_reports_touched_shards_only() {
        let idx = sharded(7);
        let before: Vec<usize> = (0..7)
            .map(|s| idx.with_shard(s, |i| i.num_partitions()))
            .collect();
        let mut grown = example_trajectories();
        grown
            .push(
                tthr_trajectory::UserId(9),
                vec![TrajEntry::new(EDGE_F, 40, 6.0)],
            )
            .unwrap();
        let effect = idx.append_batch(&grown);
        assert_eq!(effect.appended, 1);
        assert_eq!(effect.touched, vec![idx.router().shard_of(EDGE_F)]);
        for (s, partitions_before) in before.iter().enumerate() {
            let want = partitions_before + usize::from(effect.touched.contains(&s));
            assert_eq!(idx.with_shard(s, |i| i.num_partitions()), want, "shard {s}");
        }
        // The appended traversal is served.
        let q = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::fixed(0, 100));
        assert_eq!(idx.get_travel_times(&q).sorted(), vec![6.0, 6.0]);
    }

    #[test]
    fn trace_records_shard_routing_and_stats_count_appends() {
        let idx = sharded(7);
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 100),
        );
        let mut scratch = crate::SearchScratch::new();
        let _ = idx.get_travel_times_with(&q, &mut scratch);
        let expected = idx.router().shard_of(EDGE_A);
        assert_eq!(scratch.trace.shard_queries, 1);
        assert_eq!(scratch.trace.shard_fanout(), 1);
        assert_eq!(scratch.trace.shard_mask, 1u64 << (expected % 64));

        // Fresh instance: stats start at zero, trajectories reflect
        // membership, and an append bumps only the touched shard.
        let stats = idx.shard_stats();
        assert_eq!(stats.len(), 7);
        for (s, st) in stats.iter().enumerate() {
            assert_eq!(st.appends, 0, "shard {s}");
            assert_eq!(st.trajectories as usize, idx.shard_members(s).len());
        }
        let mut grown = example_trajectories();
        grown
            .push(
                tthr_trajectory::UserId(9),
                vec![TrajEntry::new(EDGE_F, 40, 6.0)],
            )
            .unwrap();
        idx.append_batch(&grown);
        let touched = idx.router().shard_of(EDGE_F);
        for (s, st) in idx.shard_stats().iter().enumerate() {
            let want = u64::from(s == touched);
            assert_eq!(st.appends, want, "shard {s}");
            assert_eq!(st.appended_trajectories, want, "shard {s}");
            assert_eq!(st.trajectories as usize, idx.shard_members(s).len());
        }
    }

    #[test]
    fn append_matches_monolith_after_multi_shard_batch() {
        let mut mono = monolith();
        let idx = sharded(7);
        let mut grown = example_trajectories();
        grown
            .push(
                tthr_trajectory::UserId(8),
                vec![
                    TrajEntry::new(EDGE_A, 20, 3.0),
                    TrajEntry::new(EDGE_B, 23, 3.0),
                    TrajEntry::new(EDGE_E, 26, 5.0),
                ],
            )
            .unwrap();
        grown
            .push(
                tthr_trajectory::UserId(9),
                vec![TrajEntry::new(EDGE_F, 22, 7.0)],
            )
            .unwrap();
        assert_eq!(mono.append_batch(&grown), 2);
        let effect = idx.append_batch(&grown);
        assert_eq!(effect.appended, 2);
        assert!(effect.touched.len() >= 2, "batch crosses shards");
        assert_matches_monolith(&mono, &idx);
        assert_eq!(idx.num_trajectories(), 6);
    }

    #[test]
    fn concurrent_readers_see_atomic_shard_states_during_appends() {
        // 4 reader threads hammer one untouched-shard query and one
        // touched-shard query while the appender (holding the permit, as
        // the contract requires) applies 5 single-edge batches to F.
        let idx = std::sync::Arc::new(sharded(6));
        let qa = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::fixed(0, 1000));
        let qf = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::fixed(0, 1000));
        let stable = idx.get_travel_times(&qa).sorted();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let idx = std::sync::Arc::clone(&idx);
                let (qa, qf, stable) = (qa.clone(), qf.clone(), stable.clone());
                scope.spawn(move || {
                    for _ in 0..400 {
                        assert_eq!(idx.get_travel_times(&qa).sorted(), stable);
                        // F starts with one traversal and gains one per
                        // batch; any prefix generation is a legal answer.
                        let n = idx.get_travel_times(&qf).len();
                        assert!((1..=6).contains(&n), "torn read: {n} values");
                    }
                });
            }
            let idx = std::sync::Arc::clone(&idx);
            scope.spawn(move || {
                let mut grown = example_trajectories();
                for round in 0..5 {
                    grown
                        .push(
                            tthr_trajectory::UserId(9),
                            vec![TrajEntry::new(EDGE_F, 50 + round, 6.0)],
                        )
                        .unwrap();
                    let _permit = idx.append_permit();
                    assert_eq!(idx.append_batch(&grown).appended, 1);
                }
            });
        });
        assert_eq!(idx.get_travel_times(&qf).len(), 6);
    }

    #[test]
    fn snapshot_round_trip_preserves_answers_and_appends() {
        let idx = sharded(3);
        let bytes = idx.to_snapshot_bytes();
        let restored = ShardedSntIndex::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.num_shards(), 3);
        assert_eq!(restored.num_trajectories(), 4);
        assert_eq!(restored.router(), idx.router());
        assert_matches_monolith(&monolith(), &restored);

        // Both copies accept the same append and stay in agreement.
        let mut grown = example_trajectories();
        grown
            .push(
                tthr_trajectory::UserId(7),
                vec![TrajEntry::new(EDGE_A, 50, 3.0)],
            )
            .unwrap();
        assert_eq!(idx.append_batch(&grown).appended, 1);
        assert_eq!(restored.append_batch(&grown).appended, 1);
        let q = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::fixed(0, 100));
        assert_eq!(
            idx.get_travel_times(&q).sorted(),
            restored.get_travel_times(&q).sorted()
        );
    }

    #[test]
    fn corrupt_member_lists_are_typed_errors() {
        let idx = sharded(2);
        let bytes = idx.to_snapshot_bytes();
        let archive = SnapshotArchive::from_bytes(&bytes).unwrap();

        // Rebuild the container with shard 0's member list replaced by a
        // descending one; every CRC is regenerated, so only the
        // cross-validation can catch it.
        let mut rebuilt = SnapshotBuilder::new();
        for id in [SECTION_SHARDED_META, SECTION_ROUTING] {
            let mut r = archive.section(id).unwrap();
            rebuilt.add_section(id, r.get_bytes(r.remaining()).unwrap().to_vec());
        }
        for s in 0..2u32 {
            let mut r = archive.section(SectionId(SHARD_SECTION_BASE + s)).unwrap();
            let mut member: Vec<u32> = r.get_seq().unwrap();
            let rest = r.get_bytes(r.remaining()).unwrap();
            if s == 0 {
                member.reverse();
            }
            let mut w = ByteWriter::new();
            w.put_seq(&member);
            w.put_bytes(rest);
            rebuilt.add_section(SectionId(SHARD_SECTION_BASE + s), w.into_bytes());
        }
        let result = ShardedSntIndex::from_snapshot_bytes(&rebuilt.into_bytes());
        let err = result
            .err()
            .expect("descending member list must be rejected");
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn wal_batch_round_trips_with_shard_tag() {
        let idx = sharded(7);
        let mut grown = example_trajectories();
        grown
            .push(
                tthr_trajectory::UserId(3),
                vec![
                    TrajEntry::new(EDGE_A, 60, 3.0),
                    TrajEntry::new(EDGE_B, 63, 3.0),
                ],
            )
            .unwrap();
        let record = idx.plan_wal_batch(&grown, 4);
        assert_eq!(record.batch.base, 4);
        assert!(!record.touched.is_empty());
        let mut w = ByteWriter::new();
        record.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored = ShardedWalBatch::restore(&mut r).unwrap();
        r.expect_exhausted("sharded wal batch").unwrap();
        assert_eq!(restored, record);
    }

    #[test]
    fn single_shard_configuration_degenerates_to_the_monolith() {
        let idx = sharded(1);
        assert_eq!(idx.num_shards(), 1);
        assert_eq!(idx.shard_members(0).len(), 4);
        assert_matches_monolith(&monolith(), &idx);
    }

    #[test]
    #[should_panic(expected = "partition_days")]
    fn day_partitioned_config_is_rejected() {
        let _ = ShardedSntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig {
                partition_days: Some(1),
                ..SntConfig::default()
            },
            2,
        );
    }
}
