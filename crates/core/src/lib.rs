//! The paper's primary contribution: an SNT-index adapted for travel-time
//! histogram retrieval, with online strict-path-query processing.
//!
//! Layer map (bottom-up):
//!
//! * [`text`] — trajectory-string construction over `Σ = E ∪ {$}`.
//! * [`SntIndex`] — per-partition FM-indexes + extended temporal forests +
//!   the `U` user table + optional time-of-day histogram store; implements
//!   `buildMap` / `probeMap` / `getTravelTimes` (Procedures 3–5).
//! * [`PartitionMethod`] / [`partition_query`] — the π strategies
//!   (Section 3.2).
//! * [`SplitMethod`] / [`Splitter`] — the greedy relaxation σ (Procedure 1).
//! * [`CardinalityMode`] / [`estimate_cardinality`] — the five estimator
//!   modes (Section 4.4).
//! * [`QueryEngine`] — the trip-query driver with shift-and-enlarge and
//!   estimator gating (Procedure 6), generic over [`IndexBackend`].
//! * [`ShardedSntIndex`] — K network-partitioned, independently locked
//!   [`SntIndex`] shards with exact first-edge routing: byte-identical
//!   answers, per-shard append isolation (the `sharded` module docs give
//!   the exactness argument).
//! * [`baseline`] — the speed-limit and segment-level reference estimators.
//!
//! ```
//! use tthr_core::{SntConfig, SntIndex, Spq, TimeInterval};
//! use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_E};
//! use tthr_network::Path;
//! use tthr_trajectory::examples::example_trajectories;
//!
//! // Section 2.3's example query: spq(⟨A,B,E⟩, [0,15), ∅, 2) → {tr0, tr3}.
//! let network = example_network();
//! let index = SntIndex::build(&network, &example_trajectories(), SntConfig::default());
//! let spq = Spq::new(
//!     Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
//!     TimeInterval::fixed(0, 15),
//! )
//! .with_beta(2);
//! assert_eq!(index.get_travel_times(&spq).sorted(), vec![10.0, 11.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod cardinality;
mod engine;
mod hot;
mod interval;
pub mod node;
mod partition;
pub mod persist;
mod probe;
mod sharded;
mod snt;
mod split;
mod spq;
pub mod text;
mod trace;

pub use cardinality::{estimate_cardinality, CardinalityMode};
pub use engine::{
    BetaPolicy, ChainOutcome, IndexBackend, QueryEngine, QueryEngineConfig, QueryStats, SubResult,
    TravelTimeProvider, TripQuery,
};
pub use interval::TimeInterval;
pub use node::{NodeWalRecord, ShardNodeState};
pub use partition::{partition_query, PartitionMethod};
pub use persist::WalBatch;
pub use probe::ProbeTable;
pub use sharded::{
    ShardRouter, ShardStats, ShardedAppend, ShardedSntIndex, ShardedWalBatch, SECTION_ROUTING,
    SECTION_SHARDED_META, SHARD_SECTION_BASE,
};
pub use snt::{
    CompactionOutcome, HotStats, MemoryReport, SearchScratch, SntConfig, SntIndex, TravelTimes,
    TreeKind, TtValues, WaveletKind,
};
pub use split::{SplitMethod, Splitter};
pub use spq::{Filter, Spq};
pub use trace::QueryTrace;

// The service layer shares one index across worker threads; a regression
// dropping these auto-traits (e.g. by storing an `Rc` somewhere inside the
// index) must fail to compile, not deadlock review.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SntIndex>();
    assert_send_sync::<ShardedSntIndex>();
    assert_send_sync::<QueryEngine<'static>>();
    assert_send_sync::<QueryEngine<'static, ShardedSntIndex>>();
    assert_send_sync::<Spq>();
    assert_send_sync::<TimeInterval>();
    assert_send_sync::<Filter>();
    assert_send_sync::<snt::TravelTimes>();
    assert_send_sync::<TripQuery>();
    assert_send_sync::<ChainOutcome>();
};
