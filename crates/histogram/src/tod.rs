//! Per-segment time-of-day histograms for selectivity estimation.

use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};

/// Seconds in a day.
const DAY: i64 = 86_400;

/// A histogram of traversal counts over the time of day.
///
/// The accurate cardinality estimator modes (`BT-Acc`, `CSS-Acc`) replace
/// the uniform time-of-day assumption with
/// `sel = B(Hₑ, [ts, te)) / B(Hₑ, [0, 24h))` (paper, Section 4.4,
/// formula 2). One such histogram is kept per segment (and per temporal
/// partition when partitioning is enabled), which is exactly the memory
/// trade-off Figure 10b quantifies.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeOfDayHistogram {
    bucket_secs: u32,
    counts: Vec<u32>,
    total: u64,
}

impl TimeOfDayHistogram {
    /// Creates an empty histogram with the given bucket width in seconds.
    ///
    /// # Panics
    /// Panics unless the bucket width is positive and divides 24 hours.
    pub fn new(bucket_secs: u32) -> Self {
        assert!(
            bucket_secs > 0 && DAY % bucket_secs as i64 == 0,
            "bucket width must divide 24 hours"
        );
        TimeOfDayHistogram {
            bucket_secs,
            counts: vec![0; (DAY / bucket_secs as i64) as usize],
            total: 0,
        }
    }

    /// Bucket width in seconds.
    #[inline]
    pub fn bucket_secs(&self) -> u32 {
        self.bucket_secs
    }

    /// Records a traversal at an absolute timestamp.
    pub fn add(&mut self, timestamp: i64) {
        let sod = timestamp.rem_euclid(DAY);
        self.counts[(sod / self.bucket_secs as i64) as usize] += 1;
        self.total += 1;
    }

    /// Total traversals `B(H, [0, 24h))`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `B(H, [start, end))` over seconds-of-day, with midnight wrap-around
    /// when `start ≥ end` (a periodic interval like 23:50–00:20).
    pub fn count_range(&self, start_sod: i64, end_sod: i64) -> u64 {
        let start = start_sod.rem_euclid(DAY);
        // An end on a day boundary means "until midnight", not an empty
        // window — unless the window itself is zero-length.
        let mut end = end_sod.rem_euclid(DAY);
        if end == 0 && end_sod != start_sod {
            end = DAY;
        }
        if start < end {
            self.sum_buckets(start, end)
        } else if start == end {
            // A zero-length window counts nothing; full-day windows are
            // passed as [0, 86400).
            0
        } else {
            self.sum_buckets(start, DAY) + self.sum_buckets(0, end)
        }
    }

    /// Selectivity of a time-of-day window: `B(H, [s, e)) / B(H, [0, 24h))`.
    /// Returns 0 for an empty histogram.
    pub fn selectivity(&self, start_sod: i64, end_sod: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_range(start_sod, end_sod) as f64 / self.total as f64
    }

    /// Sums buckets whose lower edge lies in `[lo, hi)`, `0 ≤ lo ≤ hi ≤ DAY`.
    fn sum_buckets(&self, lo: i64, hi: i64) -> u64 {
        let w = self.bucket_secs as i64;
        let from = ((lo + w - 1) / w) as usize;
        let to = (((hi + w - 1) / w) as usize).min(self.counts.len());
        if from >= to {
            return 0;
        }
        self.counts[from..to].iter().map(|&c| c as u64).sum()
    }

    /// Heap size in bytes (Figure 10b accounting).
    pub fn size_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u32>()
    }
}

/// Wire form: bucket width (`u32`) then the bucket counts; the total is a
/// sum and is recomputed on restore.
impl Persist for TimeOfDayHistogram {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.bucket_secs);
        w.put_seq(&self.counts);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let bucket_secs = r.get_u32()?;
        if bucket_secs == 0 || DAY % bucket_secs as i64 != 0 {
            return Err(StoreError::corrupt(format!(
                "tod bucket width {bucket_secs} does not divide 24 hours"
            )));
        }
        let counts: Vec<u32> = r.get_seq()?;
        if counts.len() as i64 != DAY / bucket_secs as i64 {
            return Err(StoreError::corrupt(format!(
                "tod histogram has {} buckets for width {bucket_secs}",
                counts.len()
            )));
        }
        let total = counts.iter().map(|&c| c as u64).sum();
        Ok(TimeOfDayHistogram {
            bucket_secs,
            counts,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_time_of_day() {
        let mut h = TimeOfDayHistogram::new(3600); // hourly buckets
        h.add(8 * 3600 + 100); // 08:01
        h.add(8 * 3600 + 200);
        h.add(17 * 3600); // 17:00
        h.add(DAY + 8 * 3600); // next day, 08:00
        assert_eq!(h.total(), 4);
        assert_eq!(h.count_range(8 * 3600, 9 * 3600), 3);
        assert_eq!(h.count_range(17 * 3600, 18 * 3600), 1);
        assert_eq!(h.count_range(0, DAY), 4);
    }

    #[test]
    fn midnight_wraparound() {
        let mut h = TimeOfDayHistogram::new(600);
        h.add(23 * 3600 + 55 * 60); // 23:55
        h.add(10 * 60); // 00:10
        h.add(12 * 3600); // noon
                          // Window 23:50 → 00:20 catches the two boundary traversals.
        assert_eq!(h.count_range(23 * 3600 + 50 * 60, 20 * 60), 2);
        assert!((h.selectivity(23 * 3600 + 50 * 60, 20 * 60) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn selectivity_of_empty_histogram_is_zero() {
        let h = TimeOfDayHistogram::new(900);
        assert_eq!(h.selectivity(0, 3600), 0.0);
    }

    #[test]
    fn negative_timestamps_wrap() {
        let mut h = TimeOfDayHistogram::new(3600);
        h.add(-3600); // 23:00 the day before epoch
        assert_eq!(h.count_range(23 * 3600, DAY), 1);
    }

    #[test]
    #[should_panic(expected = "divide 24 hours")]
    fn bucket_width_must_divide_day() {
        let _ = TimeOfDayHistogram::new(7);
    }

    #[test]
    fn size_scales_with_bucket_width() {
        // Figure 10b: smaller buckets = more memory.
        let fine = TimeOfDayHistogram::new(60);
        let coarse = TimeOfDayHistogram::new(600);
        assert!(fine.size_bytes() > coarse.size_bytes());
        assert_eq!(fine.size_bytes(), 1440 * 4);
    }

    #[test]
    fn persist_round_trip_recomputes_total() {
        let mut h = TimeOfDayHistogram::new(600);
        for t in [0i64, 3600, 3600, DAY - 1, 2 * DAY + 12 * 3600] {
            h.add(t);
        }
        let mut w = tthr_store::ByteWriter::new();
        h.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = tthr_store::ByteReader::new(&bytes);
        let restored = TimeOfDayHistogram::restore(&mut r).unwrap();
        r.expect_exhausted("tod histogram").unwrap();
        assert_eq!(restored, h);
        assert_eq!(restored.total(), 5);
    }

    #[test]
    fn persist_rejects_bad_bucket_width() {
        let mut w = tthr_store::ByteWriter::new();
        w.put_u32(7); // does not divide 86 400
        w.put_seq::<u32>(&[]);
        let bytes = w.into_bytes();
        let result = TimeOfDayHistogram::restore(&mut tthr_store::ByteReader::new(&bytes));
        assert!(matches!(
            result,
            Err(tthr_store::StoreError::Corrupt { .. })
        ));
    }

    proptest::proptest! {
        #[test]
        fn count_range_matches_reference(
            times in proptest::collection::vec(0i64..(3 * DAY), 0..200),
            windows in proptest::collection::vec((0i64..DAY, 0i64..DAY), 1..10),
        ) {
            let w = 600u32;
            let mut h = TimeOfDayHistogram::new(w);
            for &t in &times {
                h.add(t);
            }
            for (s, e) in windows {
                // Reference: count timestamps whose bucket's lower edge lies
                // in the (possibly wrapped) window.
                let bucket_edge = |t: i64| (t.rem_euclid(DAY) / w as i64) * w as i64;
                let ceil_edge = |t: i64| ((t + w as i64 - 1) / w as i64) * w as i64;
                let in_window = |edge: i64| if s < e {
                    // Buckets fully identified by lower edge; the window is
                    // rounded up to bucket boundaries on both sides.
                    edge >= ceil_edge(s) && edge < ceil_edge(e)
                } else if s == e {
                    false
                } else {
                    edge >= ceil_edge(s) || edge < ceil_edge(e)
                };
                let want = times.iter().filter(|&&t| in_window(bucket_edge(t))).count() as u64;
                proptest::prop_assert_eq!(h.count_range(s, e), want, "window [{}, {})", s, e);
            }
        }
    }
}
