//! Property battery for the binary frame codec, mirroring the HTTP
//! parser's (`crates/server/tests/http_parser.rs`): one-shot and
//! incremental decoding agree on every split boundary for **every** frame
//! type, single-byte corruption maps to a typed [`FrameError`] (never a
//! panic, never a silently different message), and raw fuzz bytes never
//! panic either decoder.

use proptest::collection;
use tthr_core::node::NodeWalRecord;
use tthr_core::{CardinalityMode, ShardRouter, Spq, TimeInterval};
use tthr_network::examples::example_network;
use tthr_network::{EdgeId, Path};
use tthr_rpc::{
    decode_frame, encode_frame, read_frame, Decode, ErrCode, FrameError, Message, NodeMeta, Role,
    WireError, FRAME_HEADER,
};
use tthr_trajectory::{TrajEntry, TrajId, UserId};

/// The raw ingredients one proptest case draws; every frame type is built
/// from the same bag so a single case covers the whole tag space.
#[allow(clippy::too_many_arguments)]
fn build_messages(
    edges: Vec<u32>,
    periodic: bool,
    istart: i64,
    ilen: i64,
    filter: u8,
    beta: Option<u32>,
    exclude: Option<u32>,
    cap: u32,
    mode: u8,
    base: u64,
    raw_entries: Vec<(u32, i64, i64)>,
    k: usize,
    values: Vec<f64>,
    fallback: bool,
    code: u8,
    text: Vec<u8>,
) -> Vec<Message> {
    let interval = if periodic {
        TimeInterval::periodic(istart.rem_euclid(86_400), ilen.clamp(1, 86_400))
    } else {
        TimeInterval::fixed(istart, istart + ilen.max(1))
    };
    let mut spq = Spq::new(
        Path::new(edges.iter().map(|&e| EdgeId(e)).collect()),
        interval,
    );
    if filter == 1 {
        spq = spq.with_user(UserId(cap % 97));
    }
    spq.beta = beta;
    spq.exclude = exclude.map(TrajId);
    let mode = CardinalityMode::ALL[mode as usize % CardinalityMode::ALL.len()];
    let entries: Vec<TrajEntry> = raw_entries
        .iter()
        .map(|&(e, t, tt)| TrajEntry::new(EdgeId(e), t, tt as f64))
        .collect();
    let record = NodeWalRecord {
        base,
        new_total: base + 2,
        span_min: istart,
        span_max: istart + ilen.max(1),
        members: vec![base as u32, base as u32 + 1],
        trajectories: vec![(UserId(3), entries.clone()), (UserId(4), entries)],
    };
    let meta = NodeMeta {
        shard: (k - 1) as u16,
        num_shards: k as u32,
        num_edges: 50,
        num_global: base + 2,
        num_members: base,
        num_partitions: 1 + base % 5,
        span_min: istart,
        span_max: istart + ilen.max(1),
    };
    let codes = [
        ErrCode::BadRequest,
        ErrCode::Corrupt,
        ErrCode::WalGap,
        ErrCode::Internal,
        ErrCode::NotPrimary,
    ];
    let message: String = text.iter().map(|&b| (b'a' + b % 26) as char).collect();
    vec![
        Message::Health,
        Message::GetMeta,
        Message::GetRouting,
        Message::TravelTimes(spq.clone()),
        Message::Count {
            spq: spq.clone(),
            cap,
        },
        Message::Estimate { spq, mode },
        Message::Append(record.clone()),
        Message::Snapshot,
        Message::FetchSnapshot { offset: base },
        Message::TailWal { from_stamp: base },
        Message::Promote,
        Message::Ok,
        Message::Meta(meta),
        Message::Routing(ShardRouter::build(&example_network(), k)),
        Message::TravelTimesResult { values, fallback },
        Message::CountResult(base),
        Message::EstimateResult(istart as f64 + 0.5),
        Message::Appended {
            appended: base % 7,
            total: base,
        },
        Message::SnapshotChunk {
            stamp: base,
            offset: text.len() as u64,
            total: text.len() as u64 + base % 64 + 1,
            data: vec![0xAB; (base % 64) as usize],
        },
        Message::WalRecords {
            records: vec![record],
            end_stamp: base + 2,
        },
        Message::ReplStatus {
            role: if fallback {
                Role::Standby
            } else {
                Role::Primary
            },
            applied_stamp: base + 1,
            snapshot_stamp: base,
        },
        Message::Err {
            code: codes[code as usize % codes.len()],
            expected: base,
            found: base + 1,
            message,
        },
    ]
}

macro_rules! all_messages {
    ($($p:ident),*) => {
        build_messages($($p),*)
    };
}

proptest::proptest! {
    /// One-shot decode inverts encode for every frame type, and every
    /// strict prefix of every frame is `Incomplete` — the incremental
    /// decoder can never mis-parse a partially received frame.
    #[test]
    fn round_trip_every_variant_at_every_split(
        edges in collection::vec(0u32..50, 1..5),
        periodic in proptest::bool::ANY,
        istart in -1000i64..1000,
        ilen in 1i64..5000,
        filter in 0u8..2,
        beta_some in proptest::bool::ANY,
        beta in 0u32..50,
        excl_some in proptest::bool::ANY,
        excl in 0u32..50,
        cap in 0u32..100000,
        mode in 0u8..5,
        base in 0u64..1000,
        raw_entries in collection::vec((0u32..50, 0i64..100000, 1i64..500), 1..4),
        k in 1usize..5,
        values in collection::vec(0.5f64..5000.0, 0..6),
        fallback in proptest::bool::ANY,
        code in 0u8..8,
        text in collection::vec(0u8..255, 0..24),
    ) {
        let beta = beta_some.then_some(beta);
        let exclude = excl_some.then_some(excl);
        let messages = all_messages!(
            edges, periodic, istart, ilen, filter, beta, exclude, cap, mode,
            base, raw_entries, k, values, fallback, code, text
        );
        assert_eq!(messages.len(), 22, "every tag is exercised");
        for message in messages {
            let frame = encode_frame(&message);
            match decode_frame(&frame) {
                Ok(Decode::Done { message: got, consumed }) => {
                    proptest::prop_assert_eq!(&got, &message);
                    proptest::prop_assert_eq!(consumed, frame.len());
                }
                other => panic!("complete frame must decode: {other:?}"),
            }
            for cut in 0..frame.len() {
                match decode_frame(&frame[..cut]) {
                    Ok(Decode::Incomplete) => {}
                    other => panic!("strict prefix of {cut} bytes: {other:?}"),
                }
            }
            // The blocking reader agrees with the incremental decoder.
            let mut cursor: &[u8] = &frame;
            let got = read_frame(&mut cursor).unwrap().expect("one frame");
            proptest::prop_assert_eq!(&got, &message);
            proptest::prop_assert!(cursor.is_empty());
        }
    }

    /// Pipelined frames decode one at a time with exact `consumed`
    /// offsets, in order, regardless of where the stream is split.
    #[test]
    fn pipelined_frames_decode_in_order(
        count_a in 0u64..1000,
        count_b in 0u64..1000,
        split in 0usize..60,
    ) {
        let first = encode_frame(&Message::CountResult(count_a));
        let second = encode_frame(&Message::Appended { appended: count_b, total: count_b + 1 });
        let mut stream = first.clone();
        stream.extend_from_slice(&second);
        // Whatever prefix of the stream has arrived, decoding yields
        // either Incomplete or the first frame — never the second.
        let cut = split % stream.len();
        match decode_frame(&stream[..cut]).unwrap() {
            Decode::Incomplete => proptest::prop_assert!(cut < first.len() + FRAME_HEADER),
            Decode::Done { message, consumed } => {
                proptest::prop_assert_eq!(&message, &Message::CountResult(count_a));
                proptest::prop_assert_eq!(consumed, first.len());
            }
        }
        let Decode::Done { message, consumed } = decode_frame(&stream).unwrap() else {
            panic!("complete stream");
        };
        proptest::prop_assert_eq!(&message, &Message::CountResult(count_a));
        let Decode::Done { message, consumed: used } = decode_frame(&stream[consumed..]).unwrap()
        else {
            panic!("second frame complete");
        };
        proptest::prop_assert_eq!(&message, &Message::Appended { appended: count_b, total: count_b + 1 });
        proptest::prop_assert_eq!(consumed + used, stream.len());
    }

    /// Flipping any single byte of a valid frame never panics and never
    /// yields a different message: the CRC (or the length/tag/payload
    /// validation) catches it with a typed error, or — when the flip
    /// enlarges the claimed length — the decoder just waits for bytes
    /// that will never come.
    #[test]
    fn single_byte_corruption_is_typed(
        base in 0u64..1000,
        cap in 1u32..1000,
        edges in collection::vec(0u32..50, 1..4),
        flip_at in 0usize..4096,
        flip_to in 1u8..255,
    ) {
        let spq = Spq::new(
            Path::new(edges.iter().map(|&e| EdgeId(e)).collect()),
            TimeInterval::fixed(0, 100),
        );
        for message in [
            Message::Count { spq: spq.clone(), cap },
            Message::Append(NodeWalRecord {
                base,
                new_total: base + 1,
                span_min: 0,
                span_max: 10,
                members: vec![base as u32],
                trajectories: vec![(UserId(1), vec![TrajEntry::new(EdgeId(0), 1, 2.0)])],
            }),
            Message::Err {
                code: ErrCode::WalGap,
                expected: base,
                found: base + 1,
                message: "gap".into(),
            },
        ] {
            let mut frame = encode_frame(&message);
            let at = flip_at % frame.len();
            frame[at] ^= flip_to;
            match decode_frame(&frame) {
                // A flip that grows the length field legitimately reads
                // as an incomplete longer frame.
                Ok(Decode::Incomplete) => proptest::prop_assert!(at < 4),
                Ok(Decode::Done { message: got, .. }) => {
                    panic!("corrupt frame decoded as {got:?}")
                }
                Err(
                    FrameError::Length { .. }
                    | FrameError::Crc { .. }
                    | FrameError::Tag(_)
                    | FrameError::Body(_),
                ) => {}
                Err(FrameError::Truncated) => panic!("incremental decode never reports Truncated"),
            }
            // The blocking reader is typed too (corrupt frame or torn
            // stream, depending on where the flip landed).
            let mut cursor: &[u8] = &frame;
            match read_frame(&mut cursor) {
                Ok(Some(got)) => panic!("corrupt frame read as {got:?}"),
                Ok(None) => panic!("a non-empty stream is not a clean EOF"),
                Err(WireError::Frame(_)) => {}
                Err(WireError::Io(e)) => panic!("in-memory read cannot fail with i/o: {e}"),
            }
        }
    }

    /// Arbitrary bytes never panic either decoder.
    #[test]
    fn raw_fuzz_never_panics(fuzz in collection::vec(0u8..255, 0..256)) {
        let _ = decode_frame(&fuzz);
        let mut cursor: &[u8] = &fuzz;
        let _ = read_frame(&mut cursor);
    }

    /// A chunked snapshot transfer that is interrupted and resumed from
    /// the client's last byte reassembles the blob byte-identically, with
    /// every chunk surviving the wire (the standby bootstrap path).
    #[test]
    fn resumed_snapshot_chunks_reassemble_byte_identically(
        blob in collection::vec(0u8..255, 1..2048),
        chunk in 1usize..257,
        interrupt_at in 0usize..2048,
    ) {
        let stamp = 7u64;
        let total = blob.len() as u64;
        let interrupt = interrupt_at % blob.len();
        let mut got: Vec<u8> = Vec::new();
        // Pass 0 emulates a transfer that dies once it has delivered
        // `interrupt` bytes; pass 1 resumes from the exact byte the
        // client already has (`offset = got.len()`), as the bootstrap
        // loop does.
        for stop in [interrupt, blob.len()] {
            while got.len() < stop {
                let offset = got.len();
                let end = (offset + chunk).min(blob.len());
                let frame = encode_frame(&Message::SnapshotChunk {
                    stamp,
                    offset: offset as u64,
                    total,
                    data: blob[offset..end].to_vec(),
                });
                let Ok(Decode::Done { message, .. }) = decode_frame(&frame) else {
                    panic!("complete chunk frame must decode");
                };
                let Message::SnapshotChunk { stamp: s, offset: o, total: t, data } = message
                else {
                    panic!("chunk decodes as a chunk");
                };
                proptest::prop_assert_eq!(s, stamp);
                proptest::prop_assert_eq!(o as usize, offset);
                proptest::prop_assert_eq!(t, total);
                got.extend_from_slice(&data);
            }
        }
        proptest::prop_assert_eq!(&got, &blob);
    }
}
