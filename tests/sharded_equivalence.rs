//! Property-based differential suite: the sharded index must answer
//! byte-identically to the monolith for K ∈ {1, 2, 7} across randomized
//! SPQ / trip / append / snapshot / reopen interleavings.
//!
//! Generation is deterministic per test (the proptest shim seeds from the
//! test name); CI runs the suite with that fixed seed, and the
//! `TTHR_DIFF_SEED` environment variable re-seeds the stream for soak
//! runs without touching the code. The long randomized soak is
//! `#[ignore]`d here and run via `cargo test -- --ignored soak` in the
//! nightly-style CI entry.

mod common;

use common::differential::{DiffHarness, QueryGen, SHARD_COUNTS};
use tthr::core::{CardinalityMode, QueryEngineConfig};
use tthr::service::IngestConfig;

fn default_engine() -> QueryEngineConfig {
    QueryEngineConfig::default()
}

/// 260 random SPQs of every flavor (fixed/periodic intervals, β, user
/// filters, exclusions) against a static index.
#[test]
fn spq_mix_differential() {
    let h = DiffHarness::new("spq_mix", default_engine());
    let mut gen = QueryGen::new("spq_mix");
    for _ in 0..260 {
        let q = gen.spq(&h);
        h.check_spq(&q);
    }
}

/// 210 trip queries: periodic ones exercise the sequential
/// shift-and-enlarge path, fixed ones the parallel chain fan-out, and all
/// run the σ relaxation machinery (widen → split → drop → fallback)
/// against every shard count.
#[test]
fn trip_mix_differential() {
    let h = DiffHarness::new("trip_mix", default_engine());
    let mut gen = QueryGen::new("trip_mix");
    for _ in 0..210 {
        let q = gen.spq(&h);
        h.check_trip(&q);
    }
}

/// The cardinality-estimator gate consults the index *before* scanning;
/// its per-partition ISA × time-of-day sums must agree between monolith
/// and shard, or gating decisions (and thus results and stats) diverge.
#[test]
fn estimator_gated_trip_differential() {
    let engine = QueryEngineConfig {
        estimator: Some(CardinalityMode::CssAcc),
        ..QueryEngineConfig::default()
    };
    let h = DiffHarness::new("estimator_mix", engine);
    let mut gen = QueryGen::new("estimator_mix");
    for _ in 0..200 {
        let q = gen.spq(&h);
        h.check_spq(&q);
    }
    for _ in 0..60 {
        let q = gen.spq(&h);
        h.check_trip(&q);
    }
}

/// Append/query interleaving: the remaining two thirds of the stream are
/// appended in random batch sizes, with 6 SPQs + 1 trip checked after
/// every batch — and the run must include batches whose trajectories
/// touch multiple shards at once.
#[test]
fn append_interleaving_differential() {
    let mut h = DiffHarness::new("append_mix", default_engine());
    let mut gen = QueryGen::new("append_mix");
    let mut checks = 0usize;
    while h.can_append() {
        h.append_next(1 + gen.range(0..8));
        for _ in 0..8 {
            let q = gen.spq(&h);
            h.check_spq(&q);
            checks += 1;
        }
        let q = gen.spq(&h);
        h.check_trip(&q);
        checks += 1;
    }
    assert!(checks >= 200, "only {checks} checks — stream too short");
    assert!(
        h.max_shards_per_batch >= 2,
        "no append batch ever touched ≥ 2 of the {} shards",
        SHARD_COUNTS.iter().max().unwrap()
    );
}

/// Full interleaving with persistence: appends, queries, snapshots, and
/// reopens (which replay the WAL) mixed by the RNG. Every service must
/// keep answering byte-identically through restarts.
#[test]
fn snapshot_reopen_interleaving_differential() {
    let mut h = DiffHarness::new("snapshot_mix", default_engine());
    let mut gen = QueryGen::new("snapshot_mix");
    let mut checks = 0usize;
    let mut snapshots = 0usize;
    let mut reopens = 0usize;
    for round in 0..24 {
        match gen.range(0..6) {
            0 => {
                h.snapshot();
                snapshots += 1;
            }
            1 => {
                h.reopen();
                reopens += 1;
            }
            _ => {
                h.append_next(1 + gen.range(0..12));
            }
        }
        for _ in 0..8 {
            let q = gen.spq(&h);
            h.check_spq(&q);
            checks += 1;
        }
        if round % 3 == 0 {
            let q = gen.spq(&h);
            h.check_trip(&q);
            checks += 1;
        }
    }
    // Make the persistence legs deterministic parts of the mix even if
    // the RNG rolled unluckily.
    h.snapshot();
    h.append_next(4);
    h.reopen();
    snapshots += 1;
    reopens += 1;
    for _ in 0..16 {
        let q = gen.spq(&h);
        h.check_spq(&q);
        checks += 1;
    }
    assert!(checks >= 200, "only {checks} checks");
    assert!(snapshots >= 1 && reopens >= 1);
}

/// Hot-tail ingestion lifecycle: appends absorb into per-shard hot tails
/// and are sealed by randomly interleaved compactions; every check runs
/// against the direct-append oracle as well as across shard counts, and
/// a snapshot/reopen leg proves the hot tail survives persistence.
#[test]
fn hot_tail_compaction_differential() {
    let mut h = DiffHarness::with_ingest(
        "hot_tail_mix",
        default_engine(),
        IngestConfig {
            hot_tail: true,
            ..IngestConfig::default()
        },
    );
    let mut gen = QueryGen::new("hot_tail_mix");
    let mut checks = 0usize;
    let mut compactions = 0usize;
    let mut sealed = 0usize;
    let mut max_hot = 0usize;
    let mut snapshotted = false;
    let mut round = 0usize;
    while h.can_append() {
        h.append_next(1 + gen.range(0..16));
        max_hot = max_hot.max(h.hot_entries());
        if !snapshotted && h.applied() > h.stream().len() / 2 {
            // Snapshot with a live hot tail: later appends WAL-log on
            // top of the persisted tail.
            h.snapshot();
            snapshotted = true;
        }
        if gen.range(0..4) == 0 {
            sealed += h.compact_all();
            compactions += 1;
        }
        for _ in 0..4 {
            let q = gen.spq(&h);
            h.check_spq(&q);
            checks += 1;
        }
        if round.is_multiple_of(2) {
            let q = gen.spq(&h);
            h.check_trip(&q);
            checks += 1;
        }
        round += 1;
    }
    assert!(max_hot > 0, "checks never saw a non-empty hot tail");

    // Persistence leg: reopen restores the snapshot (hot tail included)
    // and replays every WAL record absorbed since.
    h.reopen();
    for _ in 0..12 {
        let q = gen.spq(&h);
        h.check_spq(&q);
        checks += 1;
    }

    // Final seal: the fully compacted state answers identically too.
    sealed += h.compact_all();
    compactions += 1;
    for _ in 0..12 {
        let q = gen.spq(&h);
        h.check_spq(&q);
        checks += 1;
    }
    let q = gen.spq(&h);
    h.check_trip(&q);
    checks += 1;
    assert!(checks >= 100, "only {checks} checks — stream too short");
    assert!(compactions >= 2 && sealed > 0, "compaction never exercised");
}

/// Long randomized soak (nightly-style; see `.github/workflows/ci.yml`).
/// Run with: `cargo test --release --test sharded_equivalence -- --ignored`
/// optionally re-seeded via `TTHR_DIFF_SEED=<n>`.
#[test]
#[ignore = "long soak; run explicitly (nightly CI entry)"]
fn soak_differential() {
    let mut h = DiffHarness::new("soak", default_engine());
    let mut gen = QueryGen::new("soak");
    for round in 0..160 {
        match gen.range(0..8) {
            0 => h.snapshot(),
            1 => h.reopen(),
            2 | 3 => {
                h.append_next(1 + gen.range(0..16));
            }
            _ => {}
        }
        for _ in 0..60 {
            let q = gen.spq(&h);
            h.check_spq(&q);
        }
        for _ in 0..6 {
            let q = gen.spq(&h);
            h.check_trip(&q);
        }
        if round % 20 == 0 {
            println!("soak round {round}: {} trajectories applied", h.applied());
        }
    }
}
