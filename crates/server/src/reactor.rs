//! The single-threaded accept/IO reactor and its per-connection state
//! machine.
//!
//! One thread owns every socket. It multiplexes them through the
//! level-triggered [`Poller`](crate::sys::Poller), parses requests
//! incrementally ([`crate::http`]), and hands complete API requests to
//! the query service's worker pool. **The bounded in-flight window is the
//! backpressure boundary**:
//!
//! * `inflight < queue_cap` — the request is dispatched to the pool.
//! * queue full — the connection **parks** the request and the reactor
//!   stops reading from it (bytes back up into the kernel buffer and,
//!   once that fills, into the client's TCP window: natural
//!   backpressure). At most one request per connection is ever parked,
//!   so parked work is bounded by the connection count.
//! * parked requests at the `shed_watermark` — further complete requests
//!   are answered `503` + `Retry-After` immediately (load shedding), and
//!   the connection stays usable.
//!
//! Responses travel back over a per-connection write buffer. Because the
//! pool completes requests in any order while HTTP/1.1 pipelining
//! requires responses in request order, every request gets a
//! per-connection sequence number and finished responses wait in a
//! reorder map until their turn. Workers wake the reactor through a
//! socketpair byte.
//!
//! Graceful shutdown: the listener closes, already-accepted requests
//! (dispatched *and* parked) drain normally, requests parsed after the
//! flag are refused with `503` + `connection: close`, and the reactor
//! exits once every response byte is flushed (or the drain timeout
//! expires).

use crate::http::{self, Limits, Parse, ParseError};
use crate::sys::{Event, Interest, Poller};
use crate::{Op, ServerConfig, ServerMetrics};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// A finished response traveling from a worker back to the reactor.
pub(crate) struct Completion {
    pub token: u64,
    pub seq: u64,
    pub bytes: Vec<u8>,
    pub close: bool,
}

/// State shared between **one** reactor, its workers, and the handle.
/// With `reactors > 1` each reactor thread owns one of these; the
/// process-wide pieces (shutdown flag, counters) are behind `Arc`s every
/// instance shares.
pub(crate) struct Shared {
    pub completions: Mutex<Vec<Completion>>,
    /// Write end of this reactor's wake-up socketpair (non-blocking; a
    /// full pipe means a wake-up is already pending — see [`Shared::wake`]).
    pub wake_tx: UnixStream,
    /// Requests dispatched to the worker pool by this reactor and not yet
    /// completed — the bounded queue the reactor gates on (per reactor).
    pub inflight: AtomicUsize,
    /// Process-wide shutdown flag, shared by every reactor.
    pub shutdown: Arc<AtomicBool>,
    /// Process-wide counters, shared by every reactor.
    pub counters: Arc<Counters>,
    /// Wake writes that failed with a *real* error (not the benign
    /// full-pipe case). Diagnostic only: the reactor's poll timeout is
    /// the fallback delivery path if the pipe ever dies.
    pub wake_errors: AtomicU64,
}

impl Shared {
    /// Wakes the reactor with one byte on the socketpair.
    ///
    /// A full pipe (`WouldBlock`) is **not** a lost wake-up: a pending
    /// byte is already in the pipe, the reactor will drain it and scan
    /// the completion list, and it scans the whole list every time — so
    /// concurrent wake-ups coalesce. `Interrupted` writes are retried;
    /// anything else (the reactor side is gone) is counted rather than
    /// silently swallowed, and the 100ms poll timeout still delivers.
    pub(crate) fn wake(&self) {
        loop {
            match (&self.wake_tx).write(&[1]) {
                Ok(_) => return,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.wake_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// Monotonic server counters (snapshot: [`ServerMetrics`]).
#[derive(Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub active: AtomicU64,
    pub requests: AtomicU64,
    pub responses_ok: AtomicU64,
    pub shed: AtomicU64,
    pub client_errors: AtomicU64,
    pub server_errors: AtomicU64,
    pub refused_shutdown: AtomicU64,
    pub max_inflight: AtomicUsize,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub reaped_idle: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> ServerMetrics {
        ServerMetrics {
            accepted: self.accepted.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            refused_shutdown: self.refused_shutdown.load(Ordering::Relaxed),
            max_inflight: self.max_inflight.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
        }
    }

    /// Attributes a response to the right counter by status class.
    pub(crate) fn count_status(&self, status: u16) {
        if status < 300 {
            self.responses_ok.fetch_add(1, Ordering::Relaxed);
        } else if status < 500 {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.server_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A handler's answer: status, body, and the content type to frame it
/// with (`None` ⇒ the default `application/json`, whose wire bytes are
/// pinned by the equivalence suite).
pub(crate) struct ApiResponse {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: Option<&'static str>,
}

impl ApiResponse {
    /// A JSON response (the default wire format).
    pub(crate) fn json(status: u16, body: String) -> ApiResponse {
        ApiResponse {
            status,
            body: body.into_bytes(),
            content_type: None,
        }
    }

    /// A binary `tthr-rpc` frame response (the `/spq` fast path).
    pub(crate) fn frame(status: u16, body: Vec<u8>) -> ApiResponse {
        ApiResponse {
            status,
            body,
            content_type: Some(crate::http::FRAME_CONTENT_TYPE),
        }
    }
}

/// Decode + execute + encode one API request; runs on a pool worker.
pub(crate) type ApiHandler = Arc<dyn Fn(Op, &[u8]) -> ApiResponse + Send + Sync>;
/// Render the `/stats` body; runs inline on the reactor.
pub(crate) type StatsHandler = Arc<dyn Fn(ServerMetrics) -> String + Send + Sync>;
/// Render the `/metrics` Prometheus exposition; runs inline on the
/// reactor (the server counter snapshot is mirrored into the service's
/// registry before rendering).
pub(crate) type MetricsHandler = Arc<dyn Fn(ServerMetrics) -> String + Send + Sync>;
/// Render the `/health` body (liveness plus ingestion-lifecycle status);
/// runs inline on the reactor.
pub(crate) type HealthHandler = Arc<dyn Fn() -> String + Send + Sync>;
/// Render the `/debug/slow` slow-query-log body; runs inline.
pub(crate) type SlowHandler = Arc<dyn Fn() -> String + Send + Sync>;
/// Submit a job to the service's worker pool.
pub(crate) type Executor = Arc<dyn Fn(Box<dyn FnOnce() + Send>) + Send + Sync>;

/// The request handlers the reactor drives (type-erased so the reactor is
/// independent of the service's backend parameter; cloned once per
/// reactor thread).
#[derive(Clone)]
pub(crate) struct Handlers {
    pub api: ApiHandler,
    pub health: HealthHandler,
    pub stats: StatsHandler,
    pub metrics: MetricsHandler,
    pub slow: SlowHandler,
    pub exec: Executor,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    /// Unparsed input.
    buf: Vec<u8>,
    /// Sequence number handed to the next parsed request.
    next_seq: u64,
    /// Sequence number whose response flushes next (pipelining order).
    next_flush: u64,
    /// Out-of-order finished responses: seq → (bytes, close-after).
    pending: BTreeMap<u64, (Vec<u8>, bool)>,
    /// The one request waiting for a queue slot (backpressure parking).
    parked: Option<(u64, Op, Vec<u8>, bool)>,
    /// In-order responses awaiting the socket, oldest first. Each encoded
    /// response is **moved** here (never recopied into a flat buffer) and
    /// freed the moment it is fully written, so a connection's retained
    /// write memory is its live backlog, not its historical maximum. The
    /// front element is written up to `write_pos`; a flush gathers the
    /// queued responses into one `writev`.
    write_queue: VecDeque<Vec<u8>>,
    /// Bytes of the front `write_queue` element already written.
    write_pos: usize,
    /// Queued for the end-of-iteration corked flush (`flush_dirty`).
    dirty: bool,
    /// Stop reading/parsing; close once every owed response is flushed.
    close_after_flush: bool,
    /// Read side retired before the close response flushed: set the
    /// moment a request is routed whose response will carry
    /// `connection: close`, or on a protocol error. Requests pipelined
    /// behind it are **not** parsed (their responses could never be
    /// delivered, and executing a side-effectful `/append` whose ack is
    /// guaranteed to be dropped would invite client retries and
    /// double-appends), and malformed bytes are not re-parsed into
    /// duplicate error responses on every read event.
    parse_disabled: bool,
    peer_closed: bool,
    last_activity: Instant,
    interest: Interest,
}

impl Conn {
    /// Responses promised (sequence numbers issued) but not yet moved
    /// into the write buffer.
    fn outstanding(&self) -> u64 {
        self.next_seq - self.next_flush
    }

    fn write_drained(&self) -> bool {
        self.write_queue.is_empty()
    }

    /// Bytes owed to the peer (flush backlog): unwritten queued responses
    /// plus reordered responses not yet in the queue.
    fn backlog(&self) -> usize {
        (self.write_queue.iter().map(Vec::len).sum::<usize>() - self.write_pos)
            + self.pending.values().map(|(b, _)| b.len()).sum::<usize>()
    }
}

pub(crate) struct Reactor {
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    /// Tokens with a parked request, oldest first.
    parked: VecDeque<u64>,
    parked_count: usize,
    /// Connections with responses staged since the last flush (corking:
    /// one gathered `writev` per connection per loop iteration instead of
    /// one `write` per response).
    dirty_tokens: Vec<u64>,
    /// Recycled read buffers from closed connections — a per-reactor pool
    /// so short-lived connections don't pay a fresh allocation each.
    buf_pool: Vec<Vec<u8>>,
    next_token: u64,
    config: ServerConfig,
    limits: Limits,
    shared: Arc<Shared>,
    handlers: Handlers,
    shutdown_seen: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        config: ServerConfig,
        shared: Arc<Shared>,
        handlers: Handlers,
    ) -> std::io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        Ok(Reactor {
            listener: Some(listener),
            wake_rx,
            poller,
            conns: HashMap::new(),
            parked: VecDeque::new(),
            parked_count: 0,
            dirty_tokens: Vec::new(),
            buf_pool: Vec::new(),
            next_token: TOKEN_FIRST_CONN,
            limits: Limits {
                max_head_bytes: config.max_head_bytes,
                max_body_bytes: config.max_body_bytes,
            },
            config,
            shared,
            handlers,
            shutdown_seen: None,
        })
    }

    pub(crate) fn run(mut self) -> std::io::Result<()> {
        let mut events = Vec::with_capacity(128);
        loop {
            events.clear();
            self.poller
                .wait(&mut events, Some(Duration::from_millis(100)))?;
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.process_completions();
            self.dispatch_parked();
            self.flush_dirty();
            if self.sweep() {
                return Ok(());
            }
        }
    }

    // ------------------------------------------------------------ accept

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.config.max_connections
                        || stream.set_nonblocking(true).is_err()
                    {
                        continue; // drop: over the connection cap
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.shared
                        .counters
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.counters.active.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            token,
                            buf: self.buf_pool.pop().unwrap_or_default(),
                            next_seq: 0,
                            next_flush: 0,
                            pending: BTreeMap::new(),
                            parked: None,
                            write_queue: VecDeque::new(),
                            write_pos: 0,
                            dirty: false,
                            close_after_flush: false,
                            parse_disabled: false,
                            peer_closed: false,
                            last_activity: Instant::now(),
                            interest: Interest::READ,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry on next event
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    // --------------------------------------------------------------- IO

    fn conn_ready(&mut self, token: u64, ev: Event) {
        if ev.error {
            // Peer reset / error: flushing is pointless.
            self.close_conn(token);
            return;
        }
        if ev.writable {
            self.flush_conn(token);
        }
        if ev.readable {
            self.read_conn(token);
        }
        self.update_interest(token);
    }

    fn read_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !wants_read(conn) {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                if conn.outstanding() == 0 && conn.write_drained() && conn.parked.is_none() {
                    self.close_conn(token);
                }
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.buf.extend_from_slice(&chunk[..n]);
                self.shared
                    .counters
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                self.advance_conn(token);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                self.close_conn(token);
            }
        }
    }

    /// Parses and routes every complete request buffered on a connection,
    /// until input runs dry, the connection parks, or it begins closing.
    /// On the way out, a drained buffer that ballooned past the retention
    /// watermark (one oversized request is enough) gives the excess back
    /// to the allocator instead of pinning it for the connection's
    /// lifetime.
    fn advance_conn(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.close_after_flush
                || conn.parse_disabled
                || conn.parked.is_some()
                || conn.buf.is_empty()
            {
                break;
            }
            match http::try_parse(&conn.buf, &self.limits) {
                Ok(Parse::Incomplete) => break,
                Ok(Parse::Done(request, consumed)) => {
                    conn.buf.drain(..consumed);
                    self.route(token, request);
                }
                Err(e) => {
                    self.protocol_error(token, &e);
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.buf.len() <= BUF_RETAIN_WATERMARK && conn.buf.capacity() > BUF_RETAIN_WATERMARK
            {
                conn.buf.shrink_to(BUF_RETAIN_WATERMARK);
            }
        }
    }

    /// Answers a malformed request: mapped status, then close (the next
    /// request boundary is unknowable after a bad head).
    fn protocol_error(&mut self, token: u64, e: &ParseError) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        // Retire the read side now: the error response may have to wait
        // behind earlier in-flight responses, and until it flushes the
        // malformed bytes must not be re-parsed into duplicate error
        // responses on every read event.
        conn.parse_disabled = true;
        let body = crate::wire::encode_error(e.reason());
        let bytes = http::encode_response(e.status(), body.as_bytes(), false, None);
        self.shared.counters.count_status(e.status());
        self.finish(token, seq, bytes, true);
    }

    /// Routes one parsed request: inline endpoints answer immediately;
    /// API endpoints pass the backpressure gate.
    fn route(&mut self, token: u64, request: http::Request) {
        self.shared
            .counters
            .requests
            .fetch_add(1, Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let keep_alive = request.keep_alive;
        if !keep_alive {
            // This response will carry `connection: close`; anything the
            // client pipelined behind it could never be answered, so stop
            // parsing instead of executing work whose ack is guaranteed
            // to be dropped.
            conn.parse_disabled = true;
        }

        let op = match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/health") => {
                let body = (self.handlers.health)();
                let bytes = http::encode_response(200, body.as_bytes(), keep_alive, None);
                self.shared.counters.count_status(200);
                self.finish(token, seq, bytes, !keep_alive);
                return;
            }
            ("GET", "/stats") => {
                let body = (self.handlers.stats)(self.shared.counters.snapshot());
                let bytes = http::encode_response(200, body.as_bytes(), keep_alive, None);
                self.shared.counters.count_status(200);
                self.finish(token, seq, bytes, !keep_alive);
                return;
            }
            ("GET", "/metrics") => {
                let body = (self.handlers.metrics)(self.shared.counters.snapshot());
                let bytes = http::encode_response_with_content_type(
                    200,
                    body.as_bytes(),
                    keep_alive,
                    None,
                    http::PROMETHEUS_CONTENT_TYPE,
                );
                self.shared.counters.count_status(200);
                self.finish(token, seq, bytes, !keep_alive);
                return;
            }
            ("GET", "/debug/slow") => {
                let body = (self.handlers.slow)();
                let bytes = http::encode_response(200, body.as_bytes(), keep_alive, None);
                self.shared.counters.count_status(200);
                self.finish(token, seq, bytes, !keep_alive);
                return;
            }
            // The frame content type selects the binary fast path: the
            // body decodes straight into an `Spq` via the `tthr-rpc`
            // codec, skipping the JSON value tree entirely.
            ("POST", "/spq")
                if request
                    .content_type
                    .as_deref()
                    .is_some_and(|ct| ct.eq_ignore_ascii_case(http::FRAME_CONTENT_TYPE)) =>
            {
                Op::SpqFrame
            }
            ("POST", "/spq") => Op::Spq,
            ("POST", "/trip") => Op::Trip,
            ("POST", "/batch") => Op::Batch,
            ("POST", "/append") => Op::Append,
            ("GET" | "POST", _) => {
                let known_target = matches!(
                    request.target.as_str(),
                    "/spq"
                        | "/trip"
                        | "/batch"
                        | "/append"
                        | "/health"
                        | "/stats"
                        | "/metrics"
                        | "/debug/slow"
                );
                let (status, reason) = if known_target {
                    (405, "method not allowed")
                } else {
                    (404, "unknown endpoint")
                };
                self.respond_error(token, seq, status, reason, keep_alive);
                return;
            }
            _ => {
                self.respond_error(token, seq, 405, "method not allowed", keep_alive);
                return;
            }
        };

        if self.shared.shutdown.load(Ordering::SeqCst) {
            // Refuse new work while draining; tell the client to go away.
            // The refusal closes the connection, so stop parsing too.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.parse_disabled = true;
            }
            self.shared
                .counters
                .refused_shutdown
                .fetch_add(1, Ordering::Relaxed);
            let body = crate::wire::encode_error("shutting down");
            let bytes = http::encode_response(
                503,
                body.as_bytes(),
                false,
                Some(self.config.retry_after_secs),
            );
            self.finish(token, seq, bytes, true);
            return;
        }

        self.admit(token, seq, op, request.body, keep_alive);
    }

    /// The backpressure gate: dispatch into a free queue slot, park under
    /// the watermark, shed past it.
    fn admit(&mut self, token: u64, seq: u64, op: Op, body: Vec<u8>, keep_alive: bool) {
        if self.shared.inflight.load(Ordering::SeqCst) < self.config.queue_cap {
            self.dispatch(token, seq, op, body, keep_alive);
        } else {
            self.park_or_shed(token, seq, op, body, keep_alive);
        }
    }

    /// Claims a queue slot and hands the request to the worker pool.
    /// Callers have checked `inflight < queue_cap`; the reactor thread is
    /// the only incrementer (workers only decrement), so the
    /// check-then-add cannot overshoot the cap.
    fn dispatch(&mut self, token: u64, seq: u64, op: Op, body: Vec<u8>, keep_alive: bool) {
        let now_inflight = self.shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        debug_assert!(now_inflight <= self.config.queue_cap);
        self.shared
            .counters
            .max_inflight
            .fetch_max(now_inflight, Ordering::Relaxed);

        let shared = Arc::clone(&self.shared);
        let api = Arc::clone(&self.handlers.api);
        let worker_delay = self.config.worker_delay;
        (self.handlers.exec)(Box::new(move || {
            if let Some(delay) = worker_delay {
                std::thread::sleep(delay);
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| api(op, &body)));
            let response = result.unwrap_or_else(|_| {
                ApiResponse::json(500, crate::wire::encode_error("internal error"))
            });
            shared.counters.count_status(response.status);
            let bytes = match response.content_type {
                None => http::encode_response(response.status, &response.body, keep_alive, None),
                Some(ct) => http::encode_response_with_content_type(
                    response.status,
                    &response.body,
                    keep_alive,
                    None,
                    ct,
                ),
            };
            shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Completion {
                    token,
                    seq,
                    bytes,
                    close: !keep_alive,
                });
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.wake();
        }));
    }

    /// Queue-full path: park under the watermark, shed past it.
    fn park_or_shed(&mut self, token: u64, seq: u64, op: Op, body: Vec<u8>, keep_alive: bool) {
        if self.parked_count < self.config.shed_watermark {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            debug_assert!(conn.parked.is_none());
            conn.parked = Some((seq, op, body, keep_alive));
            self.parked.push_back(token);
            self.parked_count += 1;
            // `wants_read` is now false: the reactor stops reading this
            // connection until the parked request gets a slot.
        } else {
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            let body = crate::wire::encode_error("overloaded, retry later");
            let bytes = http::encode_response(
                503,
                body.as_bytes(),
                keep_alive,
                Some(self.config.retry_after_secs),
            );
            self.finish(token, seq, bytes, !keep_alive);
        }
    }

    fn respond_error(&mut self, token: u64, seq: u64, status: u16, reason: &str, keep_alive: bool) {
        self.shared.counters.count_status(status);
        let body = crate::wire::encode_error(reason);
        let bytes = http::encode_response(status, body.as_bytes(), keep_alive, None);
        self.finish(token, seq, bytes, !keep_alive);
    }

    /// Hands a finished response to the connection's reorder map, stages
    /// whatever became in-order, and queues the connection for the
    /// end-of-iteration corked flush — responses completed in the same
    /// loop iteration (pipelined bursts, completion batches) leave in one
    /// gathered `writev` instead of one syscall each.
    fn finish(&mut self, token: u64, seq: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_flush {
            // A `connection: close` response already flushed ahead of this
            // seq; nothing may follow it on the wire, and the seq was
            // already settled by `flush_ready`'s fast-forward.
            return;
        }
        conn.pending.insert(seq, (bytes, close));
        Self::flush_ready(conn);
        if !conn.dirty {
            conn.dirty = true;
            self.dirty_tokens.push(token);
        }
    }

    /// Flushes every connection that staged responses this iteration.
    fn flush_dirty(&mut self) {
        for token in std::mem::take(&mut self.dirty_tokens) {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // closed since it was staged
            };
            conn.dirty = false;
            self.flush_conn(token);
            self.update_interest(token);
        }
    }

    /// Moves in-order responses from the reorder map into the write
    /// queue.
    fn flush_ready(conn: &mut Conn) {
        while let Some((bytes, close)) = conn.pending.remove(&conn.next_flush) {
            if !bytes.is_empty() {
                conn.write_queue.push_back(bytes);
            }
            conn.next_flush += 1;
            if close {
                conn.close_after_flush = true;
                // Nothing may follow a `connection: close` on the wire:
                // drop responses already completed for later seqs and
                // fast-forward the flush cursor so every promised seq
                // counts as settled — the close/reap paths are gated on
                // `outstanding() == 0` and would otherwise leak the
                // connection forever.
                conn.pending.clear();
                conn.next_flush = conn.next_seq;
                break;
            }
        }
    }

    /// Writes the queued responses with gathered `writev` calls (up to
    /// [`MAX_FLUSH_IOVECS`] per syscall), popping and freeing each
    /// response the moment its last byte is written.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !conn.write_queue.is_empty() {
            let mut slices: Vec<std::io::IoSlice<'_>> =
                Vec::with_capacity(conn.write_queue.len().min(MAX_FLUSH_IOVECS));
            for (i, bytes) in conn.write_queue.iter().take(MAX_FLUSH_IOVECS).enumerate() {
                let rest = if i == 0 {
                    &bytes[conn.write_pos..]
                } else {
                    &bytes[..]
                };
                slices.push(std::io::IoSlice::new(rest));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => break,
                Ok(mut n) => {
                    conn.last_activity = Instant::now();
                    self.shared
                        .counters
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                    while n > 0 {
                        let front_left = conn.write_queue[0].len() - conn.write_pos;
                        if n >= front_left {
                            conn.write_queue.pop_front();
                            conn.write_pos = 0;
                            n -= front_left;
                        } else {
                            conn.write_pos += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if conn.write_drained() && conn.close_after_flush && conn.outstanding() == 0 {
            self.close_conn(token);
        }
    }

    // ------------------------------------------------------ housekeeping

    fn process_completions(&mut self) {
        let completed: Vec<Completion> = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for c in completed {
            // The connection may have died while the worker ran; its
            // response is simply dropped.
            self.finish(c.token, c.seq, c.bytes, c.close);
        }
    }

    /// Gives freed queue slots to parked requests, oldest first, and
    /// resumes reading on their connections.
    fn dispatch_parked(&mut self) {
        while self.shared.inflight.load(Ordering::SeqCst) < self.config.queue_cap {
            let Some(token) = self.parked.pop_front() else {
                return;
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                self.parked_count -= 1;
                continue;
            };
            let Some((seq, op, body, keep_alive)) = conn.parked.take() else {
                self.parked_count -= 1;
                continue;
            };
            self.parked_count -= 1;
            self.dispatch(token, seq, op, body, keep_alive);
            // The connection can read (and possibly park) again.
            self.advance_conn(token);
            self.update_interest(token);
        }
    }

    /// Periodic sweep: idle timeouts, shutdown draining. Returns `true`
    /// when the reactor should exit.
    fn sweep(&mut self) -> bool {
        let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
        if shutting_down && self.listener.is_some() {
            if let Some(listener) = self.listener.take() {
                let _ = self.poller.delete(listener.as_raw_fd());
            }
            self.shutdown_seen = Some(Instant::now());
        }

        let now = Instant::now();
        let idle: Vec<(u64, bool)> = self
            .conns
            .values()
            .filter_map(|c| {
                let drained = c.outstanding() == 0 && c.write_drained() && c.parked.is_none();
                // Exempt from the idle clock only while *we* owe work we
                // can still deliver: a response pending in a worker
                // (`outstanding` with the write side drained) or a parked
                // request waiting for a queue slot. A connection stalled
                // on an unread write backlog is the client's fault — the
                // write path bumps `last_activity` on every successful
                // byte, so no progress for `idle_timeout` means a
                // non-reading peer, and it is reaped like any other idle
                // connection (otherwise non-readers would pin buffers and
                // connection slots forever).
                let waiting_on_us =
                    (c.outstanding() > 0 && c.write_drained()) || c.parked.is_some();
                let idle_timed_out = !waiting_on_us
                    && now.duration_since(c.last_activity) > self.config.idle_timeout;
                // During a drain, a quiesced connection closes immediately.
                if idle_timed_out || (shutting_down && drained) || (c.peer_closed && drained) {
                    Some((c.token, idle_timed_out))
                } else {
                    None
                }
            })
            .collect();
        for (token, timed_out) in idle {
            if timed_out {
                self.shared
                    .counters
                    .reaped_idle
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.close_conn(token);
        }

        if !shutting_down {
            return false;
        }
        let drained = self.conns.is_empty()
            && self.shared.inflight.load(Ordering::SeqCst) == 0
            && self
                .shared
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
        let expired = self
            .shutdown_seen
            .is_some_and(|t| now.duration_since(t) > self.config.drain_timeout);
        drained || expired
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            if conn.parked.is_some() {
                self.parked_count -= 1;
                self.parked.retain(|&t| t != token);
            }
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.shared.counters.active.fetch_sub(1, Ordering::Relaxed);
            // Recycle the read buffer (emptied, capped at the watermark)
            // so the next accepted connection skips the allocation.
            if self.buf_pool.len() < BUF_POOL_MAX {
                conn.buf.clear();
                if conn.buf.capacity() > BUF_RETAIN_WATERMARK {
                    conn.buf.shrink_to(BUF_RETAIN_WATERMARK);
                }
                self.buf_pool.push(conn.buf);
            }
        }
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = Interest {
            readable: wants_read(conn),
            writable: !conn.write_drained(),
        };
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }
}

/// Response bytes a connection may owe before the reactor stops reading
/// from it (write-side backpressure against clients that pipeline
/// requests without consuming responses).
const MAX_RESPONSE_BACKLOG: usize = 256 * 1024;

/// Capacity a drained per-connection read buffer is allowed to keep (one
/// read chunk). Anything past it — grown by a single oversized request —
/// is returned to the allocator instead of being pinned for the
/// connection's lifetime.
const BUF_RETAIN_WATERMARK: usize = 16 * 1024;

/// Recycled read buffers a reactor keeps for future accepts.
const BUF_POOL_MAX: usize = 64;

/// Responses gathered into one `writev` (well under `IOV_MAX`).
const MAX_FLUSH_IOVECS: usize = 64;

/// Whether the reactor should read more bytes from a connection: not
/// while it is closing, parked behind the queue, or owing the peer more
/// response bytes than the backlog cap.
fn wants_read(conn: &Conn) -> bool {
    !conn.close_after_flush
        && !conn.parse_disabled
        && !conn.peer_closed
        && conn.parked.is_none()
        && conn.backlog() < MAX_RESPONSE_BACKLOG
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared() -> (Arc<Shared>, UnixStream) {
        let (wake_rx, wake_tx) = UnixStream::pair().unwrap();
        wake_rx.set_nonblocking(true).unwrap();
        wake_tx.set_nonblocking(true).unwrap();
        let shared = Arc::new(Shared {
            completions: Mutex::new(Vec::new()),
            wake_tx,
            inflight: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(Counters::default()),
            wake_errors: AtomicU64::new(0),
        });
        (shared, wake_rx)
    }

    /// Handlers that execute jobs inline on the calling thread, so a test
    /// can drive the reactor's methods directly without a pool.
    fn sync_handlers() -> Handlers {
        Handlers {
            api: Arc::new(|_, _| ApiResponse::json(200, "{}".to_string())),
            health: Arc::new(|| "{\"status\":\"ok\"}".to_string()),
            stats: Arc::new(|_| String::new()),
            metrics: Arc::new(|_| String::new()),
            slow: Arc::new(String::new),
            exec: Arc::new(|job| job()),
        }
    }

    fn test_reactor() -> (Reactor, std::net::SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let (shared, wake_rx) = test_shared();
        let reactor = Reactor::new(
            listener,
            wake_rx,
            ServerConfig::default(),
            shared,
            sync_handlers(),
        )
        .unwrap();
        (reactor, addr)
    }

    /// Accepts the one connection a test just opened (retrying around the
    /// accept/connect race on a non-blocking listener).
    fn accept_one(reactor: &mut Reactor) -> u64 {
        let deadline = Instant::now() + Duration::from_secs(5);
        while reactor.conns.is_empty() {
            reactor.accept_ready();
            assert!(Instant::now() < deadline, "connection never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        *reactor.conns.keys().next().unwrap()
    }

    /// Flooding the wake pipe far past its kernel buffer must coalesce
    /// (`WouldBlock` ⇒ a wake-up is already pending), never error — the
    /// old `let _ = write(..)` silently conflated the two cases.
    #[test]
    fn wake_flood_coalesces_without_errors() {
        let (shared, wake_rx) = test_shared();
        for _ in 0..100_000 {
            shared.wake();
        }
        assert_eq!(shared.wake_errors.load(Ordering::Relaxed), 0);
        // The pipe really did fill: the pending byte(s) are drainable.
        let mut buf = [0u8; 4096];
        let mut drained = 0usize;
        while let Ok(n) = (&wake_rx).read(&mut buf) {
            if n == 0 {
                break;
            }
            drained += n;
        }
        assert!(drained > 0, "a wake byte must be pending after a flood");
    }

    /// A dead reactor side (closed read end) is a *real* wake failure and
    /// must be counted, not swallowed.
    #[test]
    fn wake_after_reactor_death_counts_an_error() {
        let (shared, wake_rx) = test_shared();
        drop(wake_rx);
        shared.wake();
        assert_eq!(shared.wake_errors.load(Ordering::Relaxed), 1);
    }

    /// Regression (PR 8): one oversized request used to leave its full
    /// capacity pinned in `Conn::buf` for the connection's lifetime. The
    /// drained buffer must give the excess back to the allocator.
    #[test]
    fn drained_read_buffer_shrinks_to_the_watermark() {
        let (mut reactor, addr) = test_reactor();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let body = vec![b'x'; 256 * 1024];
        let mut request = format!(
            "POST /spq HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(&body);
        // Write from a helper thread: the request is far bigger than the
        // socket buffers, so a single-threaded write_all would deadlock
        // against the not-yet-reading reactor.
        let writer = std::thread::spawn(move || {
            client.write_all(&request).unwrap();
            client
        });

        let token = accept_one(&mut reactor);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            reactor.read_conn(token);
            reactor.process_completions();
            reactor.flush_dirty();
            let conn = reactor.conns.get(&token).expect("conn stays open");
            if conn.next_seq == 1 && conn.buf.is_empty() {
                break;
            }
            assert!(Instant::now() < deadline, "request never fully parsed");
        }
        let conn = reactor.conns.get(&token).unwrap();
        assert!(
            conn.buf.capacity() <= BUF_RETAIN_WATERMARK,
            "drained buffer kept {} bytes of capacity (watermark {})",
            conn.buf.capacity(),
            BUF_RETAIN_WATERMARK
        );
        let _client = writer.join().unwrap();
    }

    /// Closed connections donate their (emptied, capped) read buffers to
    /// the reactor's pool, and the next accept reuses one.
    #[test]
    fn closed_connection_read_buffers_are_recycled() {
        let (mut reactor, addr) = test_reactor();
        let _c1 = std::net::TcpStream::connect(addr).unwrap();
        let token = accept_one(&mut reactor);
        // Give the buffer some capacity so reuse is observable.
        reactor
            .conns
            .get_mut(&token)
            .unwrap()
            .buf
            .reserve(BUF_RETAIN_WATERMARK / 2);
        reactor.close_conn(token);
        assert_eq!(reactor.buf_pool.len(), 1);
        let pooled_capacity = reactor.buf_pool[0].capacity();
        assert!(pooled_capacity >= BUF_RETAIN_WATERMARK / 2);

        let _c2 = std::net::TcpStream::connect(addr).unwrap();
        let token2 = accept_one(&mut reactor);
        assert!(reactor.buf_pool.is_empty(), "the pooled buffer was reused");
        assert_eq!(
            reactor.conns.get(&token2).unwrap().buf.capacity(),
            pooled_capacity
        );
    }
}
