//! Sharded LRU cache for SPQ results.
//!
//! The cache key is the whole [`Spq`] — path, interval, filter, β, and
//! exclusion — because [`SntIndex::get_travel_times`] is a pure function of
//! `(index state, query)`; see `tthr_core::Spq`'s `Hash` impl. Entries are
//! spread over `shards` independently locked LRU maps (keyed by the query's
//! hash), so concurrent workers rarely contend on the same `Mutex`. Index
//! mutations invalidate either the whole cache ([`ShardedCache::clear`],
//! monolithic backends) or exactly the entries routing to the written
//! index shards ([`ShardedCache::clear_where`], partitioned backends).
//!
//! [`SntIndex::get_travel_times`]: tthr_core::SntIndex::get_travel_times

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tthr_core::{Spq, TravelTimes};

/// Monotonic counters describing cache behaviour since construction.
///
/// Counters are cumulative and never reset by [`ShardedCache::clear`];
/// rates derived from them (hit rate) describe the service's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Whole-cache invalidations (index updates).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total entry capacity.
    pub capacity: usize,
}

impl CacheCounters {
    /// Hits over lookups, in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Doubly linked LRU list over a slab, most-recent at `head`.
struct Shard {
    map: HashMap<Spq, usize>,
    slab: Vec<Node>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
}

struct Node {
    key: Spq,
    value: TravelTimes,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Inserts (or refreshes) an entry; returns whether an eviction
    /// happened.
    fn insert(&mut self, capacity: usize, key: Spq, value: TravelTimes) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.touch(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = self.slab[lru].key.clone();
            self.map.remove(&old);
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i].key = key.clone();
                self.slab[i].value = value;
                i
            }
            None => {
                self.slab.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
        evicted
    }

    fn get(&mut self, key: &Spq) -> Option<TravelTimes> {
        let i = *self.map.get(key)?;
        self.touch(i);
        Some(self.slab[i].value.clone())
    }
}

/// A sharded LRU map from [`Spq`] to [`TravelTimes`].
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ShardedCache {
    /// A cache of ~`capacity` total entries over `shards` locks. A zero
    /// capacity disables caching (every lookup misses, inserts are
    /// dropped).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard_capacity)))
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &Spq) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks a query up, refreshing its recency on a hit.
    pub fn get(&self, key: &Spq) -> Option<TravelTimes> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let hit = self.shard_of(key).lock().expect("cache shard").get(key);
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a result, evicting the shard's least-recently-used entry if
    /// full.
    pub fn insert(&self, key: Spq, value: TravelTimes) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let evicted = self.shard_of(&key).lock().expect("cache shard").insert(
            self.per_shard_capacity,
            key,
            value,
        );
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry (index-update invalidation).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard");
            *shard = Shard::new(self.per_shard_capacity);
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops exactly the entries whose key matches `pred`, leaving every
    /// other entry (and its recency) untouched — the scoped invalidation
    /// a partitioned index uses when an append wrote only some shards.
    /// Returns the number of entries removed; counts one invalidation.
    pub fn clear_where(&self, pred: impl Fn(&Spq) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard");
            // One pass over the map, no key clones or re-hashing: extract
            // the victims' slab indices, then unlink their LRU nodes.
            let victims: Vec<usize> = shard
                .map
                .extract_if(|key, _| pred(key))
                .map(|(_, i)| i)
                .collect();
            for &i in &victims {
                shard.unlink(i);
                shard.free.push(i);
            }
            removed += victims.len();
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        removed
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard").map.len())
                .sum(),
            capacity: self.per_shard_capacity * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tthr_core::TimeInterval;
    use tthr_network::{EdgeId, Path};

    fn q(edge: u32, start: i64) -> Spq {
        Spq::new(
            Path::new(vec![EdgeId(edge)]),
            TimeInterval::fixed(start, start + 10),
        )
    }

    fn v(x: f64) -> TravelTimes {
        TravelTimes {
            values: vec![x].into(),
            fallback: false,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ShardedCache::new(4, 64);
        assert_eq!(cache.get(&q(0, 0)), None);
        cache.insert(q(0, 0), v(1.0));
        assert_eq!(cache.get(&q(0, 0)), Some(v(1.0)));
        // Same path, different interval is a different key.
        assert_eq!(cache.get(&q(0, 5)), None);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 2, 1));
        assert!(c.hit_rate() > 0.3 && c.hit_rate() < 0.4);
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // Single shard, capacity 2: inserting a third evicts the LRU.
        let cache = ShardedCache::new(1, 2);
        cache.insert(q(0, 0), v(0.0));
        cache.insert(q(1, 0), v(1.0));
        assert!(cache.get(&q(0, 0)).is_some(), "refresh key 0");
        cache.insert(q(2, 0), v(2.0));
        assert_eq!(cache.get(&q(1, 0)), None, "key 1 was LRU");
        assert!(cache.get(&q(0, 0)).is_some());
        assert!(cache.get(&q(2, 0)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let cache = ShardedCache::new(1, 2);
        cache.insert(q(0, 0), v(0.0));
        cache.insert(q(0, 0), v(9.0));
        assert_eq!(cache.get(&q(0, 0)), Some(v(9.0)));
        assert_eq!(cache.counters().entries, 1);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn clear_invalidates_everything() {
        let cache = ShardedCache::new(4, 64);
        for i in 0..32 {
            cache.insert(q(i, 0), v(i as f64));
        }
        assert!(cache.counters().entries > 0);
        cache.clear();
        assert_eq!(cache.counters().entries, 0);
        assert_eq!(cache.counters().invalidations, 1);
        assert_eq!(cache.get(&q(3, 0)), None);
    }

    #[test]
    fn clear_where_scopes_eviction_and_preserves_survivors() {
        let cache = ShardedCache::new(4, 64);
        for i in 0..16 {
            cache.insert(q(i, 0), v(i as f64));
        }
        let removed = cache.clear_where(|k| k.path.first().0 < 8);
        assert_eq!(removed, 8);
        assert_eq!(cache.counters().entries, 8);
        assert_eq!(cache.counters().invalidations, 1);
        assert_eq!(cache.get(&q(3, 0)), None, "matching entry evicted");
        assert_eq!(cache.get(&q(12, 0)), Some(v(12.0)), "survivor intact");
        // Freed slots are reused without growing the slab.
        cache.insert(q(3, 0), v(33.0));
        assert_eq!(cache.get(&q(3, 0)), Some(v(33.0)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ShardedCache::new(4, 0);
        cache.insert(q(0, 0), v(1.0));
        assert_eq!(cache.get(&q(0, 0)), None);
        assert_eq!(cache.counters().entries, 0);
    }

    #[test]
    fn stress_many_keys_stays_within_capacity() {
        let cache = ShardedCache::new(8, 128);
        for round in 0..4 {
            for i in 0..512 {
                cache.insert(q(i, round), v(i as f64));
                let _ = cache.get(&q(i / 2, round));
            }
        }
        let c = cache.counters();
        assert!(c.entries <= c.capacity, "{} > {}", c.entries, c.capacity);
        assert!(c.evictions > 0);
    }
}
