//! Criterion micro-bench behind Figure 9: trip-query latency per query type
//! and partitioning strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tthr_bench::{query_for, QueryType, Scale, World};
use tthr_core::{PartitionMethod, QueryEngine, QueryEngineConfig, SntConfig};

fn bench_trip_queries(c: &mut Criterion) {
    let world = World::generate(Scale::Small);
    let index = world.build_index(SntConfig::default());
    let mut group = c.benchmark_group("trip_query");

    for query_type in [
        QueryType::TemporalFilters,
        QueryType::UserFilters,
        QueryType::SpqOnly,
    ] {
        for pi in [PartitionMethod::Zone, PartitionMethod::Regular(1)] {
            let engine = QueryEngine::new(
                &index,
                world.network(),
                QueryEngineConfig {
                    partition_method: pi,
                    ..QueryEngineConfig::default()
                },
            );
            let alpha_min = engine.config().interval_sizes[0];
            let queries: Vec<_> = world
                .queries
                .iter()
                .take(32)
                .map(|&id| query_for(&world.set, id, query_type, alpha_min, 20))
                .collect();
            group.bench_function(
                BenchmarkId::new(query_type.name().replace(' ', "_"), pi.name()),
                |b| {
                    let mut i = 0;
                    b.iter(|| {
                        let q = &queries[i % queries.len()];
                        i += 1;
                        std::hint::black_box(engine.trip_query(q))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trip_queries);
criterion_main!(benches);
