//! The greedy sub-query relaxation function σ (Procedure 1, Section 3.3).
//!
//! When a sub-query misses its cardinality requirement, σ relaxes it one
//! step at a time: first the periodic window is widened through the size
//! list `A = ⟨α₁, …, α_n⟩`; once exhausted, the path is split in two (σ_R
//! halves it, σ_L keeps the longest prefix that still meets β); for single
//! segments the non-temporal filter is dropped; and as a final fallback all
//! temporal predicates and β are dropped (a fixed `[0, t_max)` query, which
//! Procedure 5 answers with at least the speed-limit estimate).

use crate::engine::IndexBackend;
use crate::snt::SearchScratch;
use crate::spq::{Filter, Spq};

/// Path-splitting strategy inside σ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SplitMethod {
    /// σ_R — cut the path in half.
    #[default]
    Regular,
    /// σ_L — keep the longest prefix whose trajectory count still meets β
    /// (found by binary search over counting queries; this extra index work
    /// is why the paper measures σ_L as both slower *and* less accurate).
    LongestPrefix,
}

impl SplitMethod {
    /// Display name matching the paper's notation.
    pub fn name(&self) -> &'static str {
        match self {
            SplitMethod::Regular => "sigma_R",
            SplitMethod::LongestPrefix => "sigma_L",
        }
    }
}

/// The σ function: configuration plus the interval-size list `A`.
#[derive(Clone, Debug)]
pub struct Splitter {
    method: SplitMethod,
    /// Ascending interval sizes `⟨α₁, …, α_n⟩` in seconds.
    sizes: Vec<i64>,
}

impl Splitter {
    /// Creates a splitter.
    ///
    /// # Panics
    /// Panics if `sizes` is empty or not strictly ascending.
    pub fn new(method: SplitMethod, sizes: Vec<i64>) -> Self {
        assert!(!sizes.is_empty(), "the size list A must not be empty");
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "A must be strictly ascending"
        );
        Splitter { method, sizes }
    }

    /// The minimum interval size `α_min = α₁`.
    pub fn alpha_min(&self) -> i64 {
        self.sizes[0]
    }

    /// The maximum interval size `α_max = α_n`.
    pub fn alpha_max(&self) -> i64 {
        *self.sizes.last().expect("non-empty")
    }

    /// The split strategy.
    pub fn method(&self) -> SplitMethod {
        self.method
    }

    /// Applies σ once (Procedure 1), returning the replacement sub-queries.
    pub fn split<B: IndexBackend>(&self, index: &B, spq: &Spq) -> Vec<Spq> {
        self.split_with(index, spq, &mut SearchScratch::new())
    }

    /// [`Splitter::split`] with a caller-owned [`SearchScratch`] — σ_L's
    /// prefix binary search reuses the chain's search buffers. Identical
    /// replacements.
    pub fn split_with<B: IndexBackend>(
        &self,
        index: &B,
        spq: &Spq,
        scratch: &mut SearchScratch,
    ) -> Vec<Spq> {
        // Step 1: widen the periodic window to the next size in A.
        if spq.interval.is_periodic() {
            let alpha = spq.interval.size();
            if alpha < self.alpha_max() {
                let next = self
                    .sizes
                    .iter()
                    .copied()
                    .find(|&a| a > alpha)
                    .expect("alpha < alpha_max implies a larger size exists");
                return vec![spq.with_interval(spq.interval.widen(next))];
            }
        }

        // Step 2: split the path, resetting periodic windows to α_min.
        if spq.path.len() > 1 {
            let interval = if spq.interval.is_periodic() {
                spq.interval.shrink(self.alpha_min())
            } else {
                spq.interval
            };
            let m = match self.method {
                SplitMethod::Regular => spq.path.len() / 2,
                SplitMethod::LongestPrefix => {
                    self.longest_prefix(index, &spq.with_interval(interval), scratch)
                }
            };
            let (p1, p2) = spq.path.split_at(m);
            return vec![
                spq.with_path(p1).with_interval(interval),
                spq.with_path(p2).with_interval(interval),
            ];
        }

        // Step 3: drop the non-temporal filter.
        if !spq.filter.is_empty() {
            let mut relaxed = spq.clone();
            relaxed.filter = Filter::None;
            return vec![relaxed];
        }

        // Step 4: final fallback — all temporal predicates and β dropped.
        let mut fallback = spq.with_interval(index.full_interval());
        fallback.beta = None;
        vec![fallback]
    }

    /// σ_L's prefix length: the largest `m ∈ [1, l)` with
    /// `|T^{P[0,m)}| ≥ β`. Trajectory counts are monotonically
    /// non-increasing in the prefix length, so a binary search over
    /// counting queries suffices.
    fn longest_prefix<B: IndexBackend>(
        &self,
        index: &B,
        spq: &Spq,
        scratch: &mut SearchScratch,
    ) -> usize {
        let beta = spq.beta_cap();
        let mut meets = |m: usize| -> bool {
            let prefix = spq.with_path(spq.path.sub_path(0..m));
            index.count_matching_with(&prefix, beta, scratch) >= beta as usize
        };
        let (mut lo, mut hi) = (1usize, spq.path.len() - 1);
        if !meets(lo) {
            return 1;
        }
        // Invariant: meets(lo) is true; hi+1 is false or untested.
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if meets(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::TimeInterval;
    use crate::snt::{SntConfig, SntIndex};
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_C, EDGE_D, EDGE_E};
    use tthr_network::Path;
    use tthr_trajectory::examples::example_trajectories;
    use tthr_trajectory::UserId;

    fn index() -> SntIndex {
        SntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
        )
    }

    fn splitter(method: SplitMethod) -> Splitter {
        Splitter::new(method, vec![900, 1800, 2700, 3600, 5400, 7200])
    }

    #[test]
    fn widen_is_the_first_resort() {
        let idx = index();
        let s = splitter(SplitMethod::Regular);
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_C]),
            TimeInterval::periodic(8 * 3600, 900),
        )
        .with_beta(5);
        let out = s.split(&idx, &q);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].interval.size(),
            1800,
            "widened to the next size in A"
        );
        assert_eq!(out[0].path, q.path, "path untouched while widening");
    }

    #[test]
    fn widening_steps_through_the_whole_list() {
        let idx = index();
        let s = splitter(SplitMethod::Regular);
        let mut q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_C]),
            TimeInterval::periodic(8 * 3600, 900),
        )
        .with_beta(5);
        let mut sizes = vec![];
        for _ in 0..5 {
            q = s.split(&idx, &q).pop().expect("widening returns one query");
            sizes.push(q.interval.size());
        }
        assert_eq!(sizes, vec![1800, 2700, 3600, 5400, 7200]);
    }

    #[test]
    fn regular_split_halves_after_widening_exhausted() {
        let idx = index();
        let s = splitter(SplitMethod::Regular);
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_C, EDGE_D, EDGE_E]),
            TimeInterval::periodic(8 * 3600, 7200), // already at α_max
        )
        .with_beta(5);
        let out = s.split(&idx, &q);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].path, Path::new(vec![EDGE_A, EDGE_C]));
        assert_eq!(out[1].path, Path::new(vec![EDGE_D, EDGE_E]));
        // Windows reset to α_min.
        assert_eq!(out[0].interval.size(), 900);
        assert_eq!(out[1].interval.size(), 900);
    }

    #[test]
    fn filter_dropped_for_single_segment() {
        let idx = index();
        let s = splitter(SplitMethod::Regular);
        let q = Spq::new(
            Path::new(vec![EDGE_A]),
            TimeInterval::periodic(8 * 3600, 7200),
        )
        .with_beta(5)
        .with_user(UserId(1));
        let out = s.split(&idx, &q);
        assert_eq!(out.len(), 1);
        assert!(out[0].filter.is_empty());
        assert_eq!(out[0].interval, q.interval, "interval kept when dropping f");
    }

    #[test]
    fn final_fallback_drops_everything_temporal() {
        let idx = index();
        let s = splitter(SplitMethod::Regular);
        let q = Spq::new(
            Path::new(vec![EDGE_A]),
            TimeInterval::periodic(8 * 3600, 7200),
        )
        .with_beta(5);
        let out = s.split(&idx, &q);
        assert_eq!(out.len(), 1);
        assert!(!out[0].interval.is_periodic());
        assert_eq!(out[0].beta, None);
    }

    #[test]
    fn fixed_interval_queries_skip_widening() {
        let idx = index();
        let s = splitter(SplitMethod::Regular);
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 100),
        )
        .with_beta(50);
        let out = s.split(&idx, &q);
        assert_eq!(out.len(), 2, "fixed intervals go straight to path splits");
        assert_eq!(out[0].interval, q.interval);
    }

    #[test]
    fn longest_prefix_uses_counting_queries() {
        let idx = index();
        let s = splitter(SplitMethod::LongestPrefix);
        // ⟨A,B,E⟩: ⟨A⟩ matches 4 traversals, ⟨A,B⟩ 3, ⟨A,B,E⟩ 2 in [0,15).
        // With β = 3 the longest prefix meeting β is ⟨A,B⟩ (m = 2).
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        )
        .with_beta(3);
        let out = s.split(&idx, &q);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].path, Path::new(vec![EDGE_A, EDGE_B]));
        assert_eq!(out[1].path, Path::new(vec![EDGE_E]));
    }

    #[test]
    fn longest_prefix_degrades_to_one_segment() {
        let idx = index();
        let s = splitter(SplitMethod::LongestPrefix);
        // β = 50 is unreachable even for ⟨A⟩ → m = 1.
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        )
        .with_beta(50);
        let out = s.split(&idx, &q);
        assert_eq!(out[0].path, Path::new(vec![EDGE_A]));
    }

    #[test]
    fn sigma_always_terminates() {
        // Repeatedly applying σ from any starting query reaches the fixed
        // fallback in bounded steps.
        let idx = index();
        for method in [SplitMethod::Regular, SplitMethod::LongestPrefix] {
            let s = splitter(method);
            let mut queue = vec![Spq::new(
                Path::new(vec![EDGE_A, EDGE_C, EDGE_D, EDGE_E]),
                TimeInterval::periodic(0, 900),
            )
            .with_beta(1000)
            .with_user(UserId(1))];
            let mut steps = 0;
            while let Some(q) = queue.pop() {
                // Terminal state: fixed full interval without β.
                if !q.interval.is_periodic() && q.beta.is_none() {
                    continue;
                }
                steps += 1;
                assert!(steps < 200, "{method:?} must terminate");
                queue.extend(s.split(&idx, &q));
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn size_list_must_ascend() {
        let _ = Splitter::new(SplitMethod::Regular, vec![900, 900]);
    }
}
