//! A plain bit vector with constant-time rank over an interleaved layout.

use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};

/// Bits per rank superblock.
const SUPER_BITS: usize = 512;
/// 64-bit data words per superblock.
const WORDS_PER_SUPER: usize = SUPER_BITS / 64;
/// `u64`s per interleaved block: absolute rank, packed relative ranks, then
/// the 8 data words.
const BLOCK_WORDS: usize = 2 + WORDS_PER_SUPER;
/// Bits per packed relative rank (max value 448 < 2⁹).
const REL_BITS: usize = 9;
const REL_MASK: u64 = (1 << REL_BITS) - 1;

/// An immutable bit vector supporting `rank1`/`rank0` in O(1).
///
/// Layout: one contiguous `Vec<u64>` of 10-word *interleaved blocks*, one
/// per 512-bit superblock:
///
/// ```text
/// word 0      absolute rank1 before the superblock (u64)
/// word 1      7 packed 9-bit relative ranks: bits [9(w−1), 9w) hold the
///             popcount of data words 0..w, for w = 1..8 (word 0's is 0)
/// words 2..10 the 8 raw data words (zero-padded past the last bit)
/// ```
///
/// A rank touches exactly one block — the directory entries and the data
/// word it needs are at most 80 bytes apart (≤ 2 cache lines, vs. the 3
/// unrelated arrays of the classic layout) — at 25 % space overhead over
/// the raw bits.
#[derive(Clone, Debug)]
pub struct RankBitVec {
    len: usize,
    blocks: Vec<u64>,
    ones: usize,
}

impl RankBitVec {
    /// Builds from a boolean-producing iterator.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words: Vec<u64> = Vec::new();
        let mut len = 0usize;
        let mut current = 0u64;
        for b in bits {
            if b {
                current |= 1u64 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                words.push(current);
                current = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(current);
        }
        Self::from_words(words, len)
    }

    fn from_words(words: Vec<u64>, len: usize) -> Self {
        let n_words = words.len();
        let n_super = n_words.div_ceil(WORDS_PER_SUPER);
        let mut blocks = vec![0u64; n_super * BLOCK_WORDS];
        let mut total = 0u64;
        for s in 0..n_super {
            let base = s * BLOCK_WORDS;
            blocks[base] = total;
            let mut rel = 0u64;
            let mut within = 0u64;
            for w in 0..WORDS_PER_SUPER {
                let wi = s * WORDS_PER_SUPER + w;
                if w > 0 {
                    rel |= within << (REL_BITS * (w - 1));
                }
                if wi < n_words {
                    blocks[base + 2 + w] = words[wi];
                    let ones = words[wi].count_ones() as u64;
                    within += ones;
                    total += ones;
                }
            }
            blocks[base + 1] = rel;
        }
        RankBitVec {
            len,
            blocks,
            ones: total as usize,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// The bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = i / 64;
        let block = (word / WORDS_PER_SUPER) * BLOCK_WORDS + 2 + word % WORDS_PER_SUPER;
        (self.blocks[block] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits in positions `[0, i)`. `i` may equal `len`.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        if i == 0 {
            return 0;
        }
        let word = (i - 1) / 64;
        let w = word % WORDS_PER_SUPER;
        let base = (word / WORDS_PER_SUPER) * BLOCK_WORDS;
        let within_word = i - word * 64; // 1..=64
        let mask = if within_word == 64 {
            u64::MAX
        } else {
            (1u64 << within_word) - 1
        };
        let rel = if w == 0 {
            0
        } else {
            (self.blocks[base + 1] >> (REL_BITS * (w - 1))) & REL_MASK
        };
        (self.blocks[base] + rel) as usize
            + (self.blocks[base + 2 + w] & mask).count_ones() as usize
    }

    /// Number of clear bits in positions `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `(rank1(i), rank1(j))` for `i ≤ j` in one call: when both positions
    /// fall in the same superblock — the common case late in a backward
    /// search, as `[st, ed)` narrows — the second rank reuses the block the
    /// first one already pulled into cache.
    #[inline]
    pub fn rank1_pair(&self, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i <= j);
        (self.rank1(i), self.rank1(j))
    }

    /// `(rank0(i), rank0(j))` for `i ≤ j`; see [`RankBitVec::rank1_pair`].
    #[inline]
    pub fn rank0_pair(&self, i: usize, j: usize) -> (usize, usize) {
        let (a, b) = self.rank1_pair(i, j);
        (i - a, j - b)
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.blocks.len() * 8
    }

    /// The raw data words, de-interleaved (for the wire form).
    fn raw_words(&self) -> Vec<u64> {
        let n_words = self.len.div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        for wi in 0..n_words {
            let block = (wi / WORDS_PER_SUPER) * BLOCK_WORDS + 2 + wi % WORDS_PER_SUPER;
            words.push(self.blocks[block]);
        }
        words
    }
}

/// Wire form: bit length (`u64`), then the raw words. The interleaved rank
/// directory is derived, so it is rebuilt on restore instead of stored —
/// snapshots written before the interleaved layout load unchanged.
impl Persist for RankBitVec {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_len(self.len);
        w.put_seq(&self.raw_words());
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let len = r.get_u64()? as usize;
        let words: Vec<u64> = r.get_seq()?;
        if words.len() != len.div_ceil(64) {
            return Err(StoreError::corrupt(format!(
                "bit vector of {len} bits needs {} words, found {}",
                len.div_ceil(64),
                words.len()
            )));
        }
        // Bits past `len` in the final word must be clear — the rank
        // directory counts whole words, so stray bits would skew it.
        if !len.is_multiple_of(64) {
            let last = words[words.len() - 1];
            if last >> (len % 64) != 0 {
                return Err(StoreError::corrupt("set bits past bit-vector length"));
            }
        }
        Ok(Self::from_words(words, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_rank(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    #[test]
    fn rank_on_small_vector() {
        let bits = vec![true, false, true, true, false, false, true];
        let bv = RankBitVec::from_bits(bits.iter().copied());
        assert_eq!(bv.len(), 7);
        assert_eq!(bv.count_ones(), 4);
        for i in 0..=bits.len() {
            assert_eq!(bv.rank1(i), reference_rank(&bits, i), "rank1({i})");
            assert_eq!(bv.rank0(i), i - reference_rank(&bits, i), "rank0({i})");
        }
        assert!(bv.get(0));
        assert!(!bv.get(1));
    }

    #[test]
    fn rank_across_word_and_superblock_boundaries() {
        // 1500 bits: every 3rd set — crosses word (64) and superblock (512)
        // boundaries many times.
        let bits: Vec<bool> = (0..1500).map(|i| i % 3 == 0).collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for i in (0..=1500).step_by(7) {
            assert_eq!(bv.rank1(i), reference_rank(&bits, i), "rank1({i})");
        }
        assert_eq!(bv.rank1(1500), 500);
    }

    #[test]
    fn empty_vector() {
        let bv = RankBitVec::from_bits(std::iter::empty());
        assert_eq!(bv.len(), 0);
        assert_eq!(bv.rank1(0), 0);
        assert!(bv.is_empty());
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = RankBitVec::from_bits((0..777).map(|_| true));
        assert_eq!(ones.rank1(777), 777);
        assert_eq!(ones.rank0(777), 0);
        let zeros = RankBitVec::from_bits((0..777).map(|_| false));
        assert_eq!(zeros.rank1(777), 0);
        assert_eq!(zeros.rank0(700), 700);
    }

    #[test]
    fn packed_relative_ranks_saturate_correctly() {
        // A dense prefix pushes the within-superblock rank to its 9-bit
        // ceiling (448 before the last word): all-ones superblocks must
        // still rank exactly.
        let bv = RankBitVec::from_bits((0..2048).map(|_| true));
        for i in (0..=2048).step_by(37) {
            assert_eq!(bv.rank1(i), i);
        }
        assert_eq!(bv.rank1(512), 512);
        assert_eq!(bv.rank1(513), 513);
    }

    #[test]
    fn pair_ranks_match_singles() {
        let bits: Vec<bool> = (0..3000).map(|i| (i * 2654435761usize) % 7 < 3).collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for i in (0..=3000).step_by(11) {
            for j in [i, i + 17, i + 480, 3000] {
                let j = j.min(3000);
                if i > j {
                    continue;
                }
                assert_eq!(bv.rank1_pair(i, j), (bv.rank1(i), bv.rank1(j)));
                assert_eq!(bv.rank0_pair(i, j), (bv.rank0(i), bv.rank0(j)));
            }
        }
    }

    fn round_trip(bv: &RankBitVec) -> RankBitVec {
        let mut w = tthr_store::ByteWriter::new();
        bv.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = tthr_store::ByteReader::new(&bytes);
        let restored = RankBitVec::restore(&mut r).unwrap();
        r.expect_exhausted("bit vector").unwrap();
        restored
    }

    #[test]
    fn persist_round_trip_rebuilds_rank_directory() {
        for n in [0usize, 1, 63, 64, 65, 511, 512, 513, 1500] {
            let bits: Vec<bool> = (0..n).map(|i| i % 5 < 2).collect();
            let bv = RankBitVec::from_bits(bits.iter().copied());
            let restored = round_trip(&bv);
            assert_eq!(restored.len(), n);
            for i in (0..=n).step_by(17) {
                assert_eq!(restored.rank1(i), bv.rank1(i), "n={n} rank1({i})");
            }
        }
    }

    #[test]
    fn persist_rejects_stray_bits_past_length() {
        let bv = RankBitVec::from_bits((0..10).map(|_| true));
        let mut w = tthr_store::ByteWriter::new();
        bv.persist(&mut w);
        let mut bytes = w.into_bytes();
        // Set a bit beyond position 9 inside the single stored word
        // (layout: len u64, word count u64, word u64 little-endian).
        bytes[17] |= 0x80;
        let result = RankBitVec::restore(&mut tthr_store::ByteReader::new(&bytes));
        assert!(matches!(
            result,
            Err(tthr_store::StoreError::Corrupt { .. })
        ));
    }

    proptest::proptest! {
        #[test]
        fn rank_matches_reference(bits in proptest::collection::vec(proptest::bool::ANY, 0..2000)) {
            let bv = RankBitVec::from_bits(bits.iter().copied());
            for i in 0..=bits.len() {
                proptest::prop_assert_eq!(bv.rank1(i), reference_rank(&bits, i));
            }
            for (i, &b) in bits.iter().enumerate() {
                proptest::prop_assert_eq!(bv.get(i), b);
            }
        }

        #[test]
        fn pair_rank_matches_singles_everywhere(
            bits in proptest::collection::vec(proptest::bool::ANY, 0..1200),
            probes in proptest::collection::vec((0usize..1201, 0usize..1201), 0..64),
        ) {
            let bv = RankBitVec::from_bits(bits.iter().copied());
            let n = bits.len();
            for (a, b) in probes {
                let (i, j) = (a.min(b).min(n), a.max(b).min(n));
                proptest::prop_assert_eq!(bv.rank1_pair(i, j), (bv.rank1(i), bv.rank1(j)));
            }
        }
    }
}
