//! Ablation bench: Huffman-shaped wavelet tree vs balanced wavelet matrix.
//!
//! The paper uses sdsl-lite's Huffman-shaped tree; trajectory strings are
//! highly skewed (arterial segments dominate), so the Huffman shape should
//! win on rank cost for frequent symbols — this bench quantifies by how
//! much, plus the memory difference, on a real trajectory string.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tthr_bench::{Scale, World};
use tthr_core::text::build_text;
use tthr_fmindex::{HuffmanWaveletTree, SymbolRank, WaveletMatrix};

fn bench_wavelet_rank(c: &mut Criterion) {
    let world = World::generate(Scale::from_env());
    let (text, _) = build_text(world.set.iter());
    let sigma = world.network().num_edges() as u32 + 1;

    let huff = HuffmanWaveletTree::new(&text, sigma);
    let matrix = WaveletMatrix::new(&text, sigma);
    eprintln!(
        "[wavelet] text = {} symbols, Huffman = {} KiB, Matrix = {} KiB",
        text.len(),
        huff.size_bytes() / 1024,
        matrix.size_bytes() / 1024
    );

    // Rank probes over symbols weighted as queries see them: symbols that
    // occur in the text (frequent arterials dominate trajectory strings).
    let probes: Vec<(u32, usize)> = (0..512)
        .map(|i| (text[(i * 37) % text.len()], (i * 7919) % text.len()))
        .collect();

    let mut group = c.benchmark_group("wavelet_rank");
    group.bench_function(BenchmarkId::from_parameter("huffman"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, pos) = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(huff.rank(sym, pos))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("matrix"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, pos) = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(matrix.rank(sym, pos))
        })
    });
    group.finish();

    // Paired-boundary probes: backward search ranks the same symbol at both
    // range boundaries (`st`, `ed`) every step — this group measures that
    // unit of work (two boundary ranks of one symbol).
    let pair_probes: Vec<(u32, usize, usize)> = (0..512)
        .map(|i| {
            let sym = text[(i * 37) % text.len()];
            let a = (i * 7919) % text.len();
            let b = a + (i * 131) % (text.len() - a).max(1);
            (sym, a, b)
        })
        .collect();
    let mut group = c.benchmark_group("wavelet_rank_pair");
    group.bench_function(BenchmarkId::from_parameter("huffman_two_calls"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, lo, hi) = pair_probes[i % pair_probes.len()];
            i += 1;
            std::hint::black_box((huff.rank(sym, lo), huff.rank(sym, hi)))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("matrix_two_calls"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, lo, hi) = pair_probes[i % pair_probes.len()];
            i += 1;
            std::hint::black_box((matrix.rank(sym, lo), matrix.rank(sym, hi)))
        })
    });
    // The paired descent the backward search actually issues post-PR.
    group.bench_function(BenchmarkId::from_parameter("huffman_rank2"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, lo, hi) = pair_probes[i % pair_probes.len()];
            i += 1;
            std::hint::black_box(huff.rank2(sym, lo, hi))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("matrix_rank2"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, lo, hi) = pair_probes[i % pair_probes.len()];
            i += 1;
            std::hint::black_box(matrix.rank2(sym, lo, hi))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wavelet_rank);
criterion_main!(benches);
