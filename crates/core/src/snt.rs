//! The SNT-index, adapted and extended for travel-time retrieval.
//!
//! Assembly of the substrates (paper, Section 4):
//!
//! * one FM-index per temporal partition over the partition's trajectory
//!   string (Section 4.1.1, partitioning per Section 4.3.2);
//! * a forest of temporal indexes — one CSS-tree or B+-tree per segment —
//!   whose leaves carry the travel-time extensions `(TT, seq, a)` and the
//!   partition id `w` (Sections 4.1.2–4.1.3);
//! * the dense user-lookup container `U : d → u` for constant-time filter
//!   evaluation;
//! * an optional per-partition, per-segment time-of-day histogram store for
//!   the accurate cardinality estimator modes (Section 4.4).
//!
//! Query execution follows the paper's procedures exactly: `getISARange`
//! (Procedure 2, in `tthr-fmindex`), `buildMap` (Procedure 3), `probeMap`
//! (Procedure 4), and `getTravelTimes` (Procedure 5).

use crate::interval::TimeInterval;
use crate::probe::ProbeTable;
use crate::spq::{Filter, Spq};
use crate::text;
use std::ops::ControlFlow;
use tthr_fmindex::{FmIndex, HuffmanWaveletTree, IsaRange, WaveletMatrix};
use tthr_histogram::TimeOfDayHistogram;
use tthr_network::{EdgeId, RoadNetwork, Timestamp, SECONDS_PER_DAY};
use tthr_temporal::{BPlusTree, CssTree, LeafEntry, TemporalIndex};
use tthr_trajectory::{TrajectorySet, UserId};

/// Which temporal tree implementation backs the forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TreeKind {
    /// Cache-sensitive search trees (the paper's optimized default).
    #[default]
    Css,
    /// B+-trees (the original SNT-index configuration).
    BPlus,
}

/// Which wavelet structure stores the BWT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WaveletKind {
    /// Huffman-shaped wavelet tree (the paper uses sdsl-lite's `wt_huff`).
    #[default]
    Huffman,
    /// Balanced wavelet matrix (ablation alternative).
    Matrix,
}

/// Index construction options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SntConfig {
    /// Temporal tree implementation.
    pub tree: TreeKind,
    /// Wavelet structure for the BWT.
    pub wavelet: WaveletKind,
    /// Temporal partition width in days; `None` builds a single partition
    /// (the paper's `FULL` configuration).
    pub partition_days: Option<u32>,
    /// Bucket width of the per-segment time-of-day histograms in seconds;
    /// `None` disables the histogram store (no `*-Acc` estimator modes).
    pub tod_bucket_secs: Option<u32>,
}

impl Default for SntConfig {
    fn default() -> Self {
        SntConfig {
            tree: TreeKind::Css,
            wavelet: WaveletKind::Huffman,
            partition_days: None,
            tod_bucket_secs: Some(600),
        }
    }
}

/// Travel times retrieved for one SPQ.
#[derive(Clone, Debug, PartialEq)]
pub struct TravelTimes {
    /// The travel-time multiset `X` in index scan order.
    pub values: Vec<f64>,
    /// Whether `values` is the single speed-limit estimate `estimateTT(e)`
    /// (Procedure 5, line 13) rather than measured data.
    pub fallback: bool,
}

impl TravelTimes {
    /// The empty result `∅`.
    pub fn empty() -> Self {
        TravelTimes {
            values: Vec::new(),
            fallback: false,
        }
    }

    /// Whether no travel times were retrieved.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of retrieved travel times.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Mean travel time `X̄`, if any values were retrieved.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The values sorted ascending (for deterministic assertions).
    ///
    /// Uses [`f64::total_cmp`]: a NaN or negative-zero value slipping in
    /// through corrupt input data yields a deterministic order instead of a
    /// panic mid-query.
    pub fn sorted(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// Per-component memory accounting (Figure 10).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryReport {
    /// Segment-counter arrays `C`, summed over partitions.
    pub counts_bytes: usize,
    /// Wavelet structures (`WT`), summed over partitions.
    pub wavelet_bytes: usize,
    /// The `U : d → u` user table.
    pub user_bytes: usize,
    /// The temporal forest, as allocated.
    pub forest_bytes: usize,
    /// Logical forest payload with the partition id in every leaf.
    pub forest_logical_bytes: usize,
    /// Logical forest payload without the partition id (the ≈ 300 MiB
    /// saving the paper reports for its data set, Section 6.3).
    pub forest_logical_bytes_no_partition: usize,
    /// Time-of-day histogram store (Figure 10b).
    pub tod_bytes: usize,
    /// Total leaf entries across the forest.
    pub total_entries: usize,
}

pub(crate) enum FmVariant {
    Huffman(FmIndex<HuffmanWaveletTree>),
    Matrix(FmIndex<WaveletMatrix>),
}

impl FmVariant {
    fn build(kind: WaveletKind, txt: &[u32], sigma: u32) -> (Self, Vec<u32>) {
        match kind {
            WaveletKind::Huffman => {
                let (fm, isa) = FmIndex::<HuffmanWaveletTree>::build(txt, sigma);
                (FmVariant::Huffman(fm), isa)
            }
            WaveletKind::Matrix => {
                let (fm, isa) = FmIndex::<WaveletMatrix>::build(txt, sigma);
                (FmVariant::Matrix(fm), isa)
            }
        }
    }

    fn isa_range(&self, pattern: &[u32]) -> IsaRange {
        match self {
            FmVariant::Huffman(fm) => fm.isa_range(pattern),
            FmVariant::Matrix(fm) => fm.isa_range(pattern),
        }
    }

    fn wavelet_size_bytes(&self) -> usize {
        match self {
            FmVariant::Huffman(fm) => fm.wavelet_size_bytes(),
            FmVariant::Matrix(fm) => fm.wavelet_size_bytes(),
        }
    }

    fn counts_size_bytes(&self) -> usize {
        match self {
            FmVariant::Huffman(fm) => fm.counts_size_bytes(),
            FmVariant::Matrix(fm) => fm.counts_size_bytes(),
        }
    }
}

pub(crate) enum Forest {
    Css(Vec<CssTree>),
    BPlus(Vec<BPlusTree>),
}

impl Forest {
    fn tree(&self, e: EdgeId) -> &dyn TemporalIndex {
        match self {
            Forest::Css(trees) => &trees[e.index()],
            Forest::BPlus(trees) => &trees[e.index()],
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            Forest::Css(trees) => trees.iter().map(|t| t.size_bytes()).sum(),
            Forest::BPlus(trees) => trees.iter().map(|t| t.size_bytes()).sum(),
        }
    }

    /// Appends one edge's batch of time-sorted leaves (merging any overlap
    /// with the already-indexed tail).
    fn append(&mut self, edge: usize, leaves: Vec<LeafEntry>) {
        match self {
            Forest::Css(trees) => trees[edge].extend_sorted(leaves),
            Forest::BPlus(trees) => {
                for leaf in leaves {
                    trees[edge].insert(leaf);
                }
            }
        }
    }
}

/// Per-partition, per-segment time-of-day histograms.
pub(crate) struct TodStore {
    pub(crate) bucket_secs: u32,
    /// `hists[partition][edge]`, allocated lazily for non-empty segments.
    pub(crate) hists: Vec<Vec<Option<TimeOfDayHistogram>>>,
}

impl TodStore {
    /// Histogram for a `(partition, edge)` pair, if any traversals exist.
    pub(crate) fn get(&self, partition: usize, e: EdgeId) -> Option<&TimeOfDayHistogram> {
        self.hists[partition][e.index()].as_ref()
    }

    pub(crate) fn size_bytes(&self) -> usize {
        let hist_bytes: usize = self
            .hists
            .iter()
            .flatten()
            .filter_map(|h| h.as_ref().map(|h| h.size_bytes()))
            .sum();
        let slot_bytes: usize = self
            .hists
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<Option<TimeOfDayHistogram>>())
            .sum();
        hist_bytes + slot_bytes
    }
}

/// The extended SNT-index (paper, Section 4).
///
/// Fields are `pub(crate)` so the persistence layer (`crate::persist`)
/// can decompose the index into snapshot sections and reassemble it.
pub struct SntIndex {
    pub(crate) config: SntConfig,
    pub(crate) partitions: Vec<FmVariant>,
    pub(crate) forest: Forest,
    pub(crate) user_table: Vec<UserId>,
    pub(crate) tod: Option<TodStore>,
    /// Copied per-edge speed-limit estimates for the Procedure 5 fallback.
    pub(crate) estimate_tt: Vec<f64>,
    pub(crate) data_min: Timestamp,
    pub(crate) data_max: Timestamp,
    pub(crate) total_entries: usize,
}

impl SntIndex {
    /// Builds the index over a trajectory set.
    ///
    /// Construction: trajectories are assigned to temporal partitions by
    /// start time; each partition's trajectory string is indexed with an
    /// FM-index; every segment traversal becomes a leaf of its segment's
    /// temporal tree, carrying its ISA value, trajectory id, sequence
    /// number, traversal time, aggregate, and partition id.
    pub fn build(network: &RoadNetwork, trajectories: &TrajectorySet, config: SntConfig) -> Self {
        let num_edges = network.num_edges();
        let sigma = text::alphabet_size(num_edges);

        // Data span.
        let mut data_min = Timestamp::MAX;
        let mut data_max = Timestamp::MIN;
        for tr in trajectories {
            data_min = data_min.min(tr.start_time());
            let last = tr.entries().last().expect("trajectories are non-empty");
            data_max = data_max.max(last.enter_time);
        }
        if trajectories.is_empty() {
            data_min = 0;
            data_max = 0;
        }

        // Partition assignment by trajectory start time.
        let width = config
            .partition_days
            .map(|d| d as i64 * SECONDS_PER_DAY)
            .unwrap_or(i64::MAX);
        let part_of = |t0: Timestamp| -> usize {
            if width == i64::MAX {
                0
            } else {
                ((t0 - data_min) / width) as usize
            }
        };
        let num_partitions = if trajectories.is_empty() {
            1
        } else {
            trajectories
                .iter()
                .map(|tr| part_of(tr.start_time()))
                .max()
                .expect("non-empty")
                + 1
        };
        assert!(num_partitions <= u16::MAX as usize, "too many partitions");

        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); num_partitions];
        for tr in trajectories {
            groups[part_of(tr.start_time())].push(tr.id().0);
        }

        // Per-partition FM-indexes + leaf accumulation.
        let mut leaf_acc: Vec<Vec<LeafEntry>> = vec![Vec::new(); num_edges];
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut total_entries = 0usize;
        for (w, group) in groups.iter().enumerate() {
            let (txt, starts) = text::build_text(
                group
                    .iter()
                    .map(|&id| trajectories.get(tthr_trajectory::TrajId(id))),
            );
            let (fm, isa) = FmVariant::build(config.wavelet, &txt, sigma);
            for (gi, &id) in group.iter().enumerate() {
                let tr = trajectories.get(tthr_trajectory::TrajId(id));
                let base = starts[gi];
                let mut aggregate = 0.0;
                for (k, entry) in tr.entries().iter().enumerate() {
                    aggregate += entry.travel_time;
                    leaf_acc[entry.edge.index()].push(LeafEntry {
                        time: entry.enter_time,
                        aggregate,
                        travel_time: entry.travel_time,
                        isa: isa[base + k],
                        traj: id,
                        seq: k as u32,
                        partition: w as u16,
                    });
                    total_entries += 1;
                }
            }
            partitions.push(fm);
        }

        // Optional time-of-day histogram store.
        let tod = config.tod_bucket_secs.map(|bucket| {
            let mut hists: Vec<Vec<Option<TimeOfDayHistogram>>> =
                (0..num_partitions).map(|_| vec![None; num_edges]).collect();
            for (edge_idx, per_edge) in leaf_acc.iter().enumerate() {
                for leaf in per_edge {
                    hists[leaf.partition as usize][edge_idx]
                        .get_or_insert_with(|| TimeOfDayHistogram::new(bucket))
                        .add(leaf.time);
                }
            }
            TodStore {
                bucket_secs: bucket,
                hists,
            }
        });

        // Temporal forest (leaves sorted by time; stable sort keeps the
        // trajectory-id order for equal timestamps).
        let forest = match config.tree {
            TreeKind::Css => Forest::Css(
                leaf_acc
                    .into_iter()
                    .map(|mut v| {
                        v.sort_by_key(|e| e.time);
                        CssTree::from_sorted(v)
                    })
                    .collect(),
            ),
            TreeKind::BPlus => Forest::BPlus(
                leaf_acc
                    .into_iter()
                    .map(|mut v| {
                        v.sort_by_key(|e| e.time);
                        BPlusTree::from_sorted(v)
                    })
                    .collect(),
            ),
        };

        SntIndex {
            config,
            partitions,
            forest,
            user_table: trajectories.user_table(),
            tod,
            estimate_tt: network.edge_ids().map(|e| network.estimate_tt(e)).collect(),
            data_min,
            data_max,
            total_entries,
        }
    }

    /// The construction configuration.
    pub fn config(&self) -> &SntConfig {
        &self.config
    }

    /// Number of temporal partitions `W`.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Earliest trajectory start time in the data set.
    pub fn data_min(&self) -> Timestamp {
        self.data_min
    }

    /// Latest segment entry time in the data set (`t_max`).
    pub fn data_max(&self) -> Timestamp {
        self.data_max
    }

    /// The fixed-interval fallback `[0, t_max)` of Procedure 1, line 12.
    pub fn full_interval(&self) -> TimeInterval {
        TimeInterval::fixed(self.data_min.min(0), self.data_max + 1)
    }

    /// Speed-limit travel-time estimate for a segment (`estimateTT`).
    pub fn estimate_tt(&self, e: EdgeId) -> f64 {
        self.estimate_tt[e.index()]
    }

    /// The user of a trajectory (the `U` container).
    pub fn user_of(&self, traj: u32) -> UserId {
        self.user_table[traj as usize]
    }

    /// The temporal index `Φe` of a segment.
    pub fn temporal(&self, e: EdgeId) -> &dyn TemporalIndex {
        self.forest.tree(e)
    }

    /// Per-partition, per-segment time-of-day histogram, when the store is
    /// enabled and the segment has traversals in the partition.
    pub fn tod_histogram(&self, partition: usize, e: EdgeId) -> Option<&TimeOfDayHistogram> {
        self.tod.as_ref().and_then(|s| s.get(partition, e))
    }

    /// Bucket width of the ToD store, if enabled.
    pub fn tod_bucket_secs(&self) -> Option<u32> {
        self.tod.as_ref().map(|s| s.bucket_secs)
    }

    /// Per-partition ISA ranges of a path (`getISARange` over every
    /// partition's FM-index, Section 4.3.2).
    pub fn isa_ranges(&self, path: &tthr_network::Path) -> Vec<IsaRange> {
        let pattern = text::path_symbols(path);
        self.partitions
            .iter()
            .map(|fm| fm.isa_range(&pattern))
            .collect()
    }

    /// Exact number of traversals of the path across all partitions
    /// (`cP = ed − st`, the ISA-mode cardinality).
    pub fn traversal_count(&self, path: &tthr_network::Path) -> usize {
        self.isa_ranges(path).iter().map(|r| r.len()).sum()
    }

    fn passes_filter(&self, spq: &Spq, traj: u32) -> bool {
        if let Some(ex) = spq.exclude {
            if ex.0 == traj {
                return false;
            }
        }
        match spq.filter {
            Filter::None => true,
            Filter::User(u) => self.user_table[traj as usize] == u,
        }
    }

    /// `buildMap` (Procedure 3): scans the temporal index of the first
    /// segment over the query windows, spatially filters by ISA range,
    /// evaluates the non-temporal predicate, and maps `(d, seq)` to the
    /// antecedent aggregate `a − TT`, stopping once β entries are found.
    fn build_map(&self, spq: &Spq, ranges: &[IsaRange]) -> ProbeTable {
        let cap = spq.beta_cap() as usize;
        let mut map = ProbeTable::with_capacity(cap.min(1024));
        let tree = self.forest.tree(spq.path.first());
        let (Some(kmin), Some(kmax)) = (tree.min_key(), tree.max_key()) else {
            return map;
        };
        let _ = spq.interval.for_each_window(kmin, kmax, &mut |lo, hi| {
            tree.scan_range(lo, hi, &mut |r| {
                if ranges[r.partition as usize].contains(r.isa) && self.passes_filter(spq, r.traj) {
                    map.insert(r.traj, r.seq, r.antecedent());
                    if map.len() >= cap {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })
        });
        map
    }

    /// `probeMap` (Procedure 4): scans the temporal index of the last
    /// segment, probing the map with `(d, seq + 1 − l)`; every hit yields
    /// the path travel time `a_{l−1} − (a₀ − TT₀)`. The scan stops as soon
    /// as every map entry has been matched (each spatially filtered entry
    /// matches exactly once).
    fn probe_map(&self, spq: &Spq, map: &ProbeTable) -> Vec<f64> {
        let mut xs = Vec::with_capacity(map.len());
        if map.is_empty() {
            return xs;
        }
        let l = spq.path.len() as u32;
        let tree = self.forest.tree(spq.path.last());
        let (Some(kmin), Some(kmax)) = (tree.min_key(), tree.max_key()) else {
            return xs;
        };
        let _ = tree.scan_range(kmin, kmax + 1, &mut |r| {
            if r.seq + 1 >= l {
                if let Some(diff) = map.get(r.traj, r.seq + 1 - l) {
                    xs.push(r.aggregate - diff);
                    if xs.len() == map.len() {
                        return ControlFlow::Break(());
                    }
                }
            }
            ControlFlow::Continue(())
        });
        xs
    }

    /// `getTravelTimes` (Procedure 5): retrieves the travel times of up to
    /// β trajectories matching the SPQ.
    ///
    /// * An empty ISA range short-circuits without touching the temporal
    ///   indexes (the FM-index already proves no trajectory traverses `P`).
    /// * Periodic queries that cannot satisfy β return `∅`, signalling the
    ///   splitter to relax the predicates.
    /// * A single-segment query with a fixed interval that still finds
    ///   nothing falls back to the speed-limit estimate.
    pub fn get_travel_times(&self, spq: &Spq) -> TravelTimes {
        let ranges = self.isa_ranges(&spq.path);
        let single = spq.path.len() == 1;
        let estimate = || TravelTimes {
            values: vec![self.estimate_tt[spq.path.first().index()]],
            fallback: true,
        };
        if ranges.iter().all(|r| r.is_empty()) {
            // Procedure 5 returns ∅ here; for the terminal fallback query
            // (single segment, fixed interval) that would strand the
            // splitter, so line 13's estimate applies directly.
            if single && !spq.interval.is_periodic() {
                return estimate();
            }
            return TravelTimes::empty();
        }
        let map = self.build_map(spq, &ranges);
        if let Some(beta) = spq.beta {
            if (map.len() as u32) < beta && spq.interval.is_periodic() {
                return TravelTimes::empty();
            }
        }
        let values = self.probe_map(spq, &map);
        if values.is_empty() && single && !spq.interval.is_periodic() {
            return estimate();
        }
        TravelTimes {
            values,
            fallback: false,
        }
    }

    /// Exact count of traversals matching all SPQ predicates, capped at
    /// `cap` (σ_L's `|T^{P₁}| ≥ β` test and the q-error ground truth; pass
    /// `u32::MAX` for the uncapped cardinality).
    pub fn count_matching(&self, spq: &Spq, cap: u32) -> usize {
        let ranges = self.isa_ranges(&spq.path);
        if ranges.iter().all(|r| r.is_empty()) {
            return 0;
        }
        let tree = self.forest.tree(spq.path.first());
        let (Some(kmin), Some(kmax)) = (tree.min_key(), tree.max_key()) else {
            return 0;
        };
        let mut n = 0usize;
        let _ = spq.interval.for_each_window(kmin, kmax, &mut |lo, hi| {
            tree.scan_range(lo, hi, &mut |r| {
                if ranges[r.partition as usize].contains(r.isa) && self.passes_filter(spq, r.traj) {
                    n += 1;
                    if n >= cap as usize {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })
        });
        n
    }

    /// Number of trajectories currently indexed.
    pub fn num_trajectories(&self) -> usize {
        self.user_table.len()
    }

    /// Appends all trajectories of `set` with ids `≥ num_trajectories()` as
    /// one new temporal partition — the batch-update path that temporal
    /// partitioning exists for (paper, Section 4.3.2): the new batch gets
    /// its own FM-index, existing partitions' succinct structures are left
    /// untouched, and the new leaves are appended to the temporal forest
    /// (an append-only operation on CSS-trees, ordinary inserts on
    /// B+-trees).
    ///
    /// Returns the number of trajectories appended (0 leaves the index
    /// unchanged).
    ///
    /// Batches whose time range slightly overlaps the indexed data are
    /// handled by merging the forest tails; β-capped answers remain
    /// identical to a from-scratch build because timestamp ties keep
    /// trajectory-id order either way.
    ///
    /// # Panics
    /// Panics if the partition id space (2¹⁶) is exhausted.
    pub fn append_batch(&mut self, set: &TrajectorySet) -> usize {
        let from = self.num_trajectories();
        if set.len() <= from {
            return 0;
        }
        let batch: Vec<&tthr_trajectory::Trajectory> = (from as u32..set.len() as u32)
            .map(|id| set.get(tthr_trajectory::TrajId(id)))
            .collect();
        self.append_trajectories(&batch)
    }

    /// Appends a batch of trajectories as one new temporal partition,
    /// assigning them the next dense ids `num_trajectories()..` — the ids
    /// embedded in the [`Trajectory`](tthr_trajectory::Trajectory) values
    /// are ignored. This is the primitive behind [`SntIndex::append_batch`]
    /// and the write-ahead-log replay path
    /// ([`SntIndex::append_trajectory_batch`]).
    ///
    /// # Panics
    /// Panics if the partition id space (2¹⁶) is exhausted.
    pub fn append_trajectories(&mut self, batch: &[&tthr_trajectory::Trajectory]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let from = self.num_trajectories() as u32;
        let w = self.partitions.len();
        assert!(w < u16::MAX as usize, "partition id space exhausted");

        // FM-index over the batch's own trajectory string.
        let sigma = self.estimate_tt.len() as u32 + 1;
        let (txt, starts) = text::build_text(batch.iter().copied());
        let (fm, isa) = FmVariant::build(self.config.wavelet, &txt, sigma);

        // Collect the batch's leaves per edge, then append in time order.
        let num_edges = self.estimate_tt.len();
        let mut per_edge: Vec<Vec<LeafEntry>> = vec![Vec::new(); num_edges];
        for (gi, tr) in batch.iter().enumerate() {
            let id = from + gi as u32;
            let base = starts[gi];
            let mut aggregate = 0.0;
            for (k, entry) in tr.entries().iter().enumerate() {
                aggregate += entry.travel_time;
                per_edge[entry.edge.index()].push(LeafEntry {
                    time: entry.enter_time,
                    aggregate,
                    travel_time: entry.travel_time,
                    isa: isa[base + k],
                    traj: id,
                    seq: k as u32,
                    partition: w as u16,
                });
                self.total_entries += 1;
                self.data_max = self.data_max.max(entry.enter_time);
            }
            self.data_min = self.data_min.min(tr.start_time());
            self.user_table.push(tr.user());
        }
        if let Some(tod) = &mut self.tod {
            let mut hists: Vec<Option<TimeOfDayHistogram>> = vec![None; num_edges];
            for (edge_idx, leaves) in per_edge.iter().enumerate() {
                for leaf in leaves {
                    hists[edge_idx]
                        .get_or_insert_with(|| TimeOfDayHistogram::new(tod.bucket_secs))
                        .add(leaf.time);
                }
            }
            tod.hists.push(hists);
        }
        for (edge_idx, mut leaves) in per_edge.into_iter().enumerate() {
            if leaves.is_empty() {
                continue;
            }
            leaves.sort_by_key(|l| l.time);
            self.forest.append(edge_idx, leaves);
        }
        self.partitions.push(fm);
        batch.len()
    }

    /// Memory accounting for the Figure 10 experiments.
    pub fn memory_report(&self) -> MemoryReport {
        MemoryReport {
            counts_bytes: self.partitions.iter().map(|p| p.counts_size_bytes()).sum(),
            wavelet_bytes: self.partitions.iter().map(|p| p.wavelet_size_bytes()).sum(),
            user_bytes: self.user_table.len() * std::mem::size_of::<UserId>(),
            forest_bytes: self.forest.size_bytes(),
            forest_logical_bytes: self.total_entries * LeafEntry::logical_size(true),
            forest_logical_bytes_no_partition: self.total_entries * LeafEntry::logical_size(false),
            tod_bytes: self.tod.as_ref().map(|t| t.size_bytes()).unwrap_or(0),
            total_entries: self.total_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::ControlFlow;
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_E, EDGE_F};
    use tthr_network::Path;
    use tthr_trajectory::examples::example_trajectories;
    use tthr_trajectory::{TrajId, UserId};

    fn index() -> SntIndex {
        SntIndex::build(
            &example_network(),
            &example_trajectories(),
            SntConfig::default(),
        )
    }

    #[test]
    fn figure_4_temporal_index_of_segment_a() {
        // The paper's Figure 4: the temporal index Φ_A maps each entry
        // timestamp to (isa, d, TT, a, seq). All four example trajectories
        // enter A first (seq 0, a = TT), at t = 0, 2, 4, 6; their ISA
        // values are the ranks of the suffixes starting at text positions
        // 0, 4, 9, 13 of ABE$ACDE$ABF$ABE$ — 5, 7, 6, 4 (Figure 3).
        let idx = index();
        let phi_a = idx.temporal(EDGE_A);
        assert_eq!(phi_a.len(), 4);
        let mut rows = Vec::new();
        let _ = phi_a.scan_range(i64::MIN, i64::MAX, &mut |r| {
            rows.push((r.time, r.isa, r.traj, r.travel_time, r.aggregate, r.seq));
            ControlFlow::Continue(())
        });
        assert_eq!(
            rows,
            vec![
                (0, 5, 0, 3.0, 3.0, 0),
                (2, 7, 1, 4.0, 4.0, 0),
                (4, 6, 2, 3.0, 3.0, 0),
                (6, 4, 3, 3.0, 3.0, 0),
            ]
        );
    }

    #[test]
    fn aggregates_allow_two_scan_retrieval() {
        // Dur(tr1, ⟨A,C,D,E⟩) = a_3 − (a_0 − TT_0) = 15 − (4 − 4) = 15,
        // read off E's leaf (a = 15) and A's leaf (antecedent 0).
        let idx = index();
        let phi_e = idx.temporal(EDGE_E);
        let mut tr1_leaf = None;
        let _ = phi_e.scan_range(i64::MIN, i64::MAX, &mut |r| {
            if r.traj == 1 {
                tr1_leaf = Some(*r);
            }
            ControlFlow::Continue(())
        });
        let leaf = tr1_leaf.expect("tr1 traverses E");
        assert_eq!(leaf.aggregate, 15.0);
        assert_eq!(leaf.seq, 3);
        assert_eq!(leaf.travel_time, 5.0);
    }

    #[test]
    fn section_2_3_example_queries() {
        let idx = index();
        // Q = spq(⟨A,B,E⟩, [0,15), u = u1, 2) → {11, 10}.
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        )
        .with_user(UserId(1))
        .with_beta(2);
        assert_eq!(idx.get_travel_times(&q).sorted(), vec![10.0, 11.0]);
        // Q1 = spq(⟨A,B⟩, [0,15), ∅, 3) → {6, 6, 7} and
        // Q2 = spq(⟨E⟩, [0,15), ∅, 3) → {4, 4, 5}.
        let q1 = Spq::new(Path::new(vec![EDGE_A, EDGE_B]), TimeInterval::fixed(0, 15)).with_beta(3);
        assert_eq!(idx.get_travel_times(&q1).sorted(), vec![6.0, 6.0, 7.0]);
        let q2 = Spq::new(Path::new(vec![EDGE_E]), TimeInterval::fixed(0, 15)).with_beta(3);
        assert_eq!(idx.get_travel_times(&q2).sorted(), vec![4.0, 4.0, 5.0]);
    }

    #[test]
    fn isa_ranges_match_figure_3() {
        let idx = index();
        let ra = idx.isa_ranges(&Path::new(vec![EDGE_A]));
        assert_eq!(ra.len(), 1, "FULL config has one partition");
        assert_eq!((ra[0].start, ra[0].end), (4, 8));
        let rab = idx.isa_ranges(&Path::new(vec![EDGE_A, EDGE_B]));
        assert_eq!((rab[0].start, rab[0].end), (4, 7));
    }

    #[test]
    fn periodic_beta_miss_returns_empty_but_fixed_does_not() {
        let idx = index();
        // Only one trajectory (tr2) traverses F.
        let periodic =
            Spq::new(Path::new(vec![EDGE_F]), TimeInterval::periodic(0, 900)).with_beta(3);
        assert!(idx.get_travel_times(&periodic).is_empty());
        // A fixed interval is processed regardless of β (Procedure 5, l. 7).
        let fixed = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::fixed(0, 100)).with_beta(3);
        let res = idx.get_travel_times(&fixed);
        assert_eq!(res.sorted(), vec![6.0]);
        assert!(!res.fallback);
    }

    #[test]
    fn speed_limit_fallback_for_dataless_segment() {
        // An index over a single trajectory that never touches F: the
        // fixed-interval fallback answers with estimateTT(F) = 36 s.
        let net = example_network();
        let mut set = tthr_trajectory::TrajectorySet::new();
        set.push(
            UserId(0),
            vec![tthr_trajectory::TrajEntry::new(EDGE_A, 0, 3.0)],
        )
        .unwrap();
        let idx = SntIndex::build(&net, &set, SntConfig::default());
        let q = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::fixed(0, 100));
        let res = idx.get_travel_times(&q);
        assert!(res.fallback);
        assert!((res.values[0] - 36.0).abs() < 0.05);
        // But a periodic query on the same segment stays empty (σ must
        // keep relaxing it).
        let qp = Spq::new(Path::new(vec![EDGE_F]), TimeInterval::periodic(0, 900));
        assert!(idx.get_travel_times(&qp).is_empty());
    }

    #[test]
    fn user_container_maps_ids() {
        let idx = index();
        assert_eq!(idx.user_of(0), UserId(1));
        assert_eq!(idx.user_of(1), UserId(2));
        assert_eq!(idx.user_of(2), UserId(2));
        assert_eq!(idx.user_of(3), UserId(1));
    }

    #[test]
    fn exclusion_is_honoured_in_counts() {
        let idx = index();
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 100),
        );
        assert_eq!(idx.count_matching(&q, u32::MAX), 2);
        let q_excl = q.without_trajectory(TrajId(0));
        assert_eq!(idx.count_matching(&q_excl, u32::MAX), 1);
    }

    #[test]
    fn memory_report_accounts_all_components() {
        let idx = index();
        let m = idx.memory_report();
        assert_eq!(m.total_entries, 13);
        assert_eq!(m.forest_logical_bytes, 13 * LeafEntry::logical_size(true));
        assert!(m.wavelet_bytes > 0);
        assert!(m.counts_bytes > 0);
        assert!(m.user_bytes > 0);
        assert!(m.tod_bytes > 0, "default config builds the ToD store");
    }

    #[test]
    fn empty_index_answers_gracefully() {
        let net = example_network();
        let idx = SntIndex::build(
            &net,
            &tthr_trajectory::TrajectorySet::new(),
            SntConfig::default(),
        );
        assert_eq!(idx.num_partitions(), 1);
        let q = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::periodic(0, 900));
        assert!(idx.get_travel_times(&q).is_empty());
        let qf = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::fixed(0, 100));
        assert!(idx.get_travel_times(&qf).fallback);
    }
}
