//! Commute analysis on a synthetic city region: compares partitioning
//! strategies on real trip queries and prints the travel-time distribution
//! of one commute as an ASCII histogram.
//!
//! Run with: `cargo run --release --example commute_histograms`

use tthr::core::baseline::{speed_limit_estimate, SegmentLevelBaseline};
use tthr::core::{
    PartitionMethod, QueryEngine, QueryEngineConfig, SntConfig, SntIndex, Spq, TimeInterval,
};
use tthr::datagen::{
    generate_network, generate_workload, sample_query_trajectories, NetworkConfig, WorkloadConfig,
};
use tthr::metrics::smape;
use tthr::trajectory::Trajectory;

fn query_for(tr: &Trajectory) -> Spq {
    Spq::new(
        tr.path(),
        TimeInterval::periodic_around(tr.start_time(), 900),
    )
    .with_beta(20)
    .without_trajectory(tr.id())
}

fn main() {
    // --- A synthetic region and half a year of driving ---------------------
    let syn = generate_network(&NetworkConfig::small());
    let workload = WorkloadConfig {
        num_drivers: 40,
        num_days: 90,
        ..WorkloadConfig::small()
    };
    let set = generate_workload(&syn, &workload);
    println!(
        "world: {} directed segments, {} trajectories, {} traversals",
        syn.network.num_edges(),
        set.len(),
        set.total_traversals()
    );

    let index = SntIndex::build(&syn.network, &set, SntConfig::default());
    let queries: Vec<&Trajectory> = sample_query_trajectories(&set, 0.1, 15, 11)
        .into_iter()
        .take(120)
        .map(|id| set.get(id))
        .collect();
    println!("query set: {} sampled commutes\n", queries.len());

    // --- Strategy comparison ------------------------------------------------
    let strategies = [
        PartitionMethod::Regular(1),
        PartitionMethod::Regular(2),
        PartitionMethod::Category,
        PartitionMethod::Zone,
        PartitionMethod::ZoneCategory,
        PartitionMethod::Whole,
    ];
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "pi", "sMAPE %", "avg sub-len", "avg ms"
    );
    for pi in strategies {
        let engine = QueryEngine::new(
            &index,
            &syn.network,
            QueryEngineConfig {
                partition_method: pi,
                ..QueryEngineConfig::default()
            },
        );
        let mut pairs = Vec::new();
        let mut sublen = 0.0;
        let start = std::time::Instant::now();
        for tr in &queries {
            let r = engine.trip_query(&query_for(tr));
            pairs.push((r.predicted_duration(), tr.total_duration()));
            sublen += r.avg_sub_path_len();
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        println!(
            "{:<10} {:>10.2} {:>14.1} {:>12.3}",
            pi.name(),
            smape(&pairs),
            sublen / queries.len() as f64,
            ms
        );
    }

    // --- Baselines ----------------------------------------------------------
    let seg = SegmentLevelBaseline::build(&index, &syn.network, 10.0);
    let mut sl_pairs = Vec::new();
    let mut seg_pairs = Vec::new();
    for tr in &queries {
        let actual = tr.total_duration();
        sl_pairs.push((speed_limit_estimate(&syn.network, &tr.path()), actual));
        seg_pairs.push((seg.predict(&tr.path()), actual));
    }
    println!(
        "\nbaselines: speed-limit sMAPE = {:.2} %, segment-level sMAPE = {:.2} %",
        smape(&sl_pairs),
        smape(&seg_pairs)
    );

    // --- One commute's distribution -----------------------------------------
    let engine = QueryEngine::new(&index, &syn.network, QueryEngineConfig::default());
    let tr = queries
        .iter()
        .max_by_key(|t| t.len())
        .expect("non-empty query set");
    let result = engine.trip_query(&query_for(tr));
    let hist = result.histogram.clone().expect("trip produces a histogram");
    println!(
        "\nlongest sampled commute: {} segments, actual {:.0} s, predicted {:.0} s,\n{} final sub-queries, stats: {:?}",
        tr.len(),
        tr.total_duration(),
        result.predicted_duration(),
        result.subs.len(),
        result.stats
    );
    println!("\ntravel-time distribution (10 s buckets):");
    let max_mass = hist.iter().map(|(_, c)| c).fold(0.0f64, f64::max);
    for (edge, mass) in hist.iter() {
        if mass < max_mass / 60.0 {
            continue; // skip the long convolution tail
        }
        let bar = "#".repeat((mass / max_mass * 50.0).ceil() as usize);
        println!(
            "  [{:>5.0},{:>5.0}) {bar}",
            edge,
            edge + hist.bucket_width()
        );
    }
}
