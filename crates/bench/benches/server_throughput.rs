//! HTTP front-end throughput over loopback: per-request latency on a
//! keep-alive connection (reactor + parse + dispatch + pool + encode) and
//! sustained pipelined req/s, for the `/health` (pure reactor), `/spq`,
//! and `/trip` endpoints.
//!
//! The criterion shim records every group into `BENCH.json`
//! (`throughput_per_sec` on the pipelined groups is the sustained req/s
//! figure CI tracks).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tthr_bench::{query_for, QueryType, Scale, World};
use tthr_server::{serve, wire, ServerConfig, ServerHandle};
use tthr_service::{QueryService, ServiceConfig};

/// Minimal blocking keep-alive client: pipelines `n` identical requests
/// and reads the `n` responses back.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn roundtrip(&mut self, request: &[u8], pipeline: usize) {
        for _ in 0..pipeline {
            self.stream.write_all(request).expect("send");
        }
        for _ in 0..pipeline {
            self.read_response();
        }
    }

    fn read_response(&mut self) {
        loop {
            if let Some(total) = response_len(&self.buf) {
                if self.buf.len() >= total {
                    self.buf.drain(..total);
                    return;
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed mid-benchmark");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn response_len(buf: &[u8]) -> Option<usize> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).expect("head");
    let body = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    Some(head_end + 4 + body)
}

fn encode_request(path: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

fn boot(world: &World) -> (ServerHandle, SocketAddr) {
    let service = QueryService::new(
        world.build_index(Default::default()),
        Arc::new(world.network().clone()),
        ServiceConfig {
            num_threads: 4,
            ..ServiceConfig::default()
        },
    );
    let server = serve(service, "127.0.0.1:0", ServerConfig::default()).expect("boot server");
    let addr = server.local_addr();
    (server, addr)
}

fn bench_server_throughput(c: &mut Criterion) {
    let world = World::generate(Scale::Small);
    let (server, addr) = boot(&world);
    let spq = query_for(
        &world.set,
        world.queries[0],
        QueryType::TemporalFilters,
        900,
        20,
    );
    let spq_request = encode_request("/spq", wire::encode_spq(&spq).as_bytes());
    let trip_request = encode_request("/trip", wire::encode_spq(&spq).as_bytes());
    let health_request = b"GET /health HTTP/1.1\r\nhost: bench\r\n\r\n".to_vec();

    let mut group = c.benchmark_group("server_http");
    group.sample_size(20);
    let mut client = Client::connect(addr);
    group.bench_function("health_roundtrip", |b| {
        b.iter(|| client.roundtrip(&health_request, 1))
    });
    group.bench_function("spq_keepalive", |b| {
        b.iter(|| client.roundtrip(&spq_request, 1))
    });
    group.bench_function("trip_keepalive", |b| {
        b.iter(|| client.roundtrip(&trip_request, 1))
    });
    group.finish();

    // Sustained req/s: 32 pipelined requests per iteration saturate the
    // reactor/pool handoff instead of measuring one RTT at a time.
    let mut group = c.benchmark_group("server_http_sustained");
    group.sample_size(10);
    group.throughput(Throughput::Elements(32));
    let mut client = Client::connect(addr);
    group.bench_function("spq_pipelined_x32", |b| {
        b.iter(|| client.roundtrip(&spq_request, 32))
    });
    group.bench_function("health_pipelined_x32", |b| {
        b.iter(|| client.roundtrip(&health_request, 32))
    });
    group.finish();

    server.shutdown();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
