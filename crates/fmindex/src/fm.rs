//! The FM-index: `C` array + BWT in a wavelet structure, with the backward
//! search of the paper's Procedure 2 (`getISARange`).

use crate::bwt::{bwt_from_sa, symbol_counts};
use crate::suffix::{inverse_suffix_array, suffix_array};
use crate::SymbolRank;
use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};

/// A half-open range `[start, end)` of inverse-suffix-array values: the ranks
/// of all suffixes of the trajectory string that begin with a queried path.
///
/// `R(P) = {i | S[SA[i]][0, |P|) = P}` (paper, Section 4.1.1). The *size* of
/// the range is the exact number of traversals of `P` in the indexed set —
/// the quantity the ISA-mode cardinality estimator uses directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsaRange {
    /// First rank in the range (`st`).
    pub start: u32,
    /// One past the last rank (`ed`).
    pub end: u32,
}

impl IsaRange {
    /// The empty range `[0, 0)`.
    pub const EMPTY: IsaRange = IsaRange { start: 0, end: 0 };

    /// Whether no suffix matches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Number of matching suffixes (= traversal count of the path).
    #[inline]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start) as usize
    }

    /// Whether an ISA value falls inside the range — the spatial filter
    /// applied during temporal index scans (Procedure 3, line 3).
    #[inline]
    pub fn contains(&self, isa: u32) -> bool {
        self.start <= isa && isa < self.end
    }
}

/// Strategy for constructing a wavelet structure from a symbol sequence;
/// lets [`FmIndex`] be generic over the balanced and Huffman-shaped variants.
pub trait WaveletBuild: SymbolRank + Sized {
    /// Builds the structure over `sequence` with symbols in
    /// `[0, alphabet_size)`.
    fn build(sequence: &[u32], alphabet_size: u32) -> Self;
}

impl WaveletBuild for crate::WaveletMatrix {
    fn build(sequence: &[u32], alphabet_size: u32) -> Self {
        crate::WaveletMatrix::new(sequence, alphabet_size)
    }
}

impl WaveletBuild for crate::HuffmanWaveletTree {
    fn build(sequence: &[u32], alphabet_size: u32) -> Self {
        crate::HuffmanWaveletTree::new(sequence, alphabet_size)
    }
}

/// The FM-index over a trajectory string.
///
/// Consists of the two data structures of the paper's Section 4.1.1: the
/// cumulative symbol-count array `C` and the Burrows–Wheeler transform
/// `Tbwt` stored in a wavelet structure for `O(log σ)` rank.
///
/// ```
/// use tthr_fmindex::{FmIndex, HuffmanWaveletTree};
///
/// // The paper's trajectory string ABE$ACDE$ABF$ABE$ ($=0, A=1, …, F=6).
/// let text = [1, 2, 5, 0, 1, 3, 4, 5, 0, 1, 2, 6, 0, 1, 2, 5, 0];
/// let (fm, isa) = FmIndex::<HuffmanWaveletTree>::build(&text, 7);
/// // R(⟨A,B⟩) = [4, 7): three trajectories traverse A then B.
/// let range = fm.isa_range(&[1, 2]);
/// assert_eq!((range.start, range.end), (4, 7));
/// // The ISA entries are what the temporal leaves store.
/// assert_eq!(isa.len(), text.len());
/// ```
#[derive(Clone, Debug)]
pub struct FmIndex<W: SymbolRank> {
    counts: Vec<u64>,
    bwt: W,
    alphabet_size: u32,
}

impl<W: WaveletBuild> FmIndex<W> {
    /// Builds the index over `text` (symbols in `[0, alphabet_size)`).
    ///
    /// Returns the index together with the inverse suffix array, whose
    /// entries the SNT-index stores in its temporal leaves; the suffix array
    /// itself is discarded after construction.
    pub fn build(text: &[u32], alphabet_size: u32) -> (Self, Vec<u32>) {
        let sa = suffix_array(text);
        let isa = inverse_suffix_array(&sa);
        let bwt_seq = bwt_from_sa(text, &sa);
        drop(sa);
        let bwt = W::build(&bwt_seq, alphabet_size);
        let counts = symbol_counts(text, alphabet_size);
        (
            FmIndex {
                counts,
                bwt,
                alphabet_size,
            },
            isa,
        )
    }
}

impl<W: SymbolRank> FmIndex<W> {
    /// Length of the indexed text.
    #[inline]
    pub fn text_len(&self) -> usize {
        self.bwt.len()
    }

    /// The alphabet size σ.
    #[inline]
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// `getISARange` (paper, Procedure 2): backward search for the symbol
    /// pattern, in `O(|pattern| · log σ)` — independent of the text length.
    ///
    /// Patterns are matched as plain substrings; the SNT layer guarantees
    /// they never contain the `$` terminator, so matches never span two
    /// trajectories.
    pub fn isa_range(&self, pattern: &[u32]) -> IsaRange {
        let Some((&last, rest)) = pattern.split_last() else {
            return IsaRange::EMPTY;
        };
        if last >= self.alphabet_size {
            return IsaRange::EMPTY;
        }
        let mut st = self.counts[last as usize];
        let mut ed = self.counts[last as usize + 1];
        for &c in rest.iter().rev() {
            if st >= ed {
                return IsaRange::EMPTY;
            }
            if c >= self.alphabet_size {
                return IsaRange::EMPTY;
            }
            let base = self.counts[c as usize];
            st = base + self.bwt.rank(c, st as usize) as u64;
            ed = base + self.bwt.rank(c, ed as usize) as u64;
        }
        if st >= ed {
            IsaRange::EMPTY
        } else {
            IsaRange {
                start: st as u32,
                end: ed as u32,
            }
        }
    }

    /// Number of occurrences of the pattern in the text.
    pub fn count(&self, pattern: &[u32]) -> usize {
        self.isa_range(pattern).len()
    }

    /// Approximate heap size of the wavelet-structure component, in bytes
    /// (`WT` in Figure 10a).
    pub fn wavelet_size_bytes(&self) -> usize {
        self.bwt.size_bytes()
    }

    /// Approximate heap size of the `C` array, in bytes (`C` in Figure 10a).
    pub fn counts_size_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }
}

/// Wire form: alphabet size (`u32`), the `C` array, then the wavelet
/// structure holding the BWT.
impl<W: SymbolRank + Persist> Persist for FmIndex<W> {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.alphabet_size);
        w.put_seq(&self.counts);
        self.bwt.persist(w);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let alphabet_size = r.get_u32()?;
        let counts: Vec<u64> = r.get_seq()?;
        if counts.len() != alphabet_size as usize + 1 {
            return Err(StoreError::corrupt(format!(
                "C array has {} entries for alphabet {alphabet_size}",
                counts.len()
            )));
        }
        if counts.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::corrupt("C array is not non-decreasing"));
        }
        let bwt = W::restore(r)?;
        if counts.last().copied().unwrap_or(0) != bwt.len() as u64 {
            return Err(StoreError::corrupt(
                "C array total disagrees with BWT length",
            ));
        }
        Ok(FmIndex {
            counts,
            bwt,
            alphabet_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HuffmanWaveletTree, WaveletMatrix};

    /// `ABE$ACDE$ABF$ABE$` with `$=0, A=1, …, F=6`.
    fn figure3_text() -> Vec<u32> {
        vec![1, 2, 5, 0, 1, 3, 4, 5, 0, 1, 2, 6, 0, 1, 2, 5, 0]
    }

    fn naive_count(text: &[u32], pattern: &[u32]) -> usize {
        if pattern.is_empty() || pattern.len() > text.len() {
            return 0;
        }
        text.windows(pattern.len())
            .filter(|w| *w == pattern)
            .count()
    }

    #[test]
    fn figure3_isa_ranges_huffman() {
        let (fm, _) = FmIndex::<HuffmanWaveletTree>::build(&figure3_text(), 7);
        // R(⟨A⟩) = [4, 8) and R(⟨A,B⟩) = [4, 7) (paper, Section 4.1.1).
        assert_eq!(fm.isa_range(&[1]), IsaRange { start: 4, end: 8 });
        assert_eq!(fm.isa_range(&[1, 2]), IsaRange { start: 4, end: 7 });
        // ⟨A,B,E⟩ matches tr0 and tr3.
        assert_eq!(fm.count(&[1, 2, 5]), 2);
        // ⟨A,C,D,E⟩ matches tr1 only.
        assert_eq!(fm.count(&[1, 3, 4, 5]), 1);
        // ⟨B,A⟩ never occurs.
        assert!(fm.isa_range(&[2, 1]).is_empty());
    }

    #[test]
    fn figure3_isa_ranges_matrix() {
        let (fm, _) = FmIndex::<WaveletMatrix>::build(&figure3_text(), 7);
        assert_eq!(fm.isa_range(&[1]), IsaRange { start: 4, end: 8 });
        assert_eq!(fm.isa_range(&[1, 2]), IsaRange { start: 4, end: 7 });
    }

    #[test]
    fn isa_values_of_traversals_fall_in_range() {
        // Every text position whose suffix starts with the pattern must have
        // an ISA value inside the range — the property the temporal-leaf
        // spatial filter relies on.
        let text = figure3_text();
        let (fm, isa) = FmIndex::<HuffmanWaveletTree>::build(&text, 7);
        let pattern = [1u32, 2]; // ⟨A,B⟩
        let range = fm.isa_range(&pattern);
        for i in 0..text.len() {
            let starts_here = text[i..].starts_with(&pattern);
            assert_eq!(
                range.contains(isa[i]),
                starts_here,
                "position {i}: isa = {}",
                isa[i]
            );
        }
    }

    #[test]
    fn empty_pattern_and_unknown_symbols() {
        let (fm, _) = FmIndex::<HuffmanWaveletTree>::build(&figure3_text(), 7);
        assert!(fm.isa_range(&[]).is_empty());
        assert!(fm.isa_range(&[42]).is_empty());
        assert!(fm.isa_range(&[1, 42]).is_empty());
    }

    #[test]
    fn counts_match_naive_substring_search() {
        let text = figure3_text();
        let (fm, _) = FmIndex::<HuffmanWaveletTree>::build(&text, 7);
        for a in 1..7u32 {
            assert_eq!(fm.count(&[a]), naive_count(&text, &[a]));
            for b in 1..7u32 {
                assert_eq!(fm.count(&[a, b]), naive_count(&text, &[a, b]));
                for c in 1..7u32 {
                    assert_eq!(fm.count(&[a, b, c]), naive_count(&text, &[a, b, c]));
                }
            }
        }
    }

    #[test]
    fn isa_range_helpers() {
        let r = IsaRange { start: 4, end: 7 };
        assert_eq!(r.len(), 3);
        assert!(r.contains(4) && r.contains(6));
        assert!(!r.contains(7) && !r.contains(3));
        assert!(IsaRange::EMPTY.is_empty());
        assert_eq!(IsaRange::EMPTY.len(), 0);
    }

    #[test]
    fn persist_round_trip_preserves_every_range() {
        let text = figure3_text();
        let (fm, _) = FmIndex::<HuffmanWaveletTree>::build(&text, 7);
        let mut w = tthr_store::ByteWriter::new();
        fm.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = tthr_store::ByteReader::new(&bytes);
        let restored = FmIndex::<HuffmanWaveletTree>::restore(&mut r).unwrap();
        r.expect_exhausted("fm index").unwrap();
        assert_eq!(restored.alphabet_size(), 7);
        assert_eq!(restored.text_len(), text.len());
        for a in 0..7u32 {
            for b in 0..7u32 {
                assert_eq!(fm.isa_range(&[a, b]), restored.isa_range(&[a, b]));
            }
        }

        let (fm2, _) = FmIndex::<WaveletMatrix>::build(&text, 7);
        let mut w = tthr_store::ByteWriter::new();
        fm2.persist(&mut w);
        let bytes = w.into_bytes();
        let restored =
            FmIndex::<WaveletMatrix>::restore(&mut tthr_store::ByteReader::new(&bytes)).unwrap();
        assert_eq!(fm2.isa_range(&[1, 2]), restored.isa_range(&[1, 2]));
    }

    #[test]
    fn persist_rejects_corrupt_counts() {
        let (fm, _) = FmIndex::<HuffmanWaveletTree>::build(&figure3_text(), 7);
        let mut w = tthr_store::ByteWriter::new();
        fm.persist(&mut w);
        let mut bytes = w.into_bytes();
        // The first C entry lives after alphabet_size (4) + seq len (8);
        // bump it above its successor.
        bytes[12] = 0xFF;
        let result =
            FmIndex::<HuffmanWaveletTree>::restore(&mut tthr_store::ByteReader::new(&bytes));
        assert!(matches!(
            result,
            Err(tthr_store::StoreError::Corrupt { .. })
        ));
    }

    proptest::proptest! {
        /// Backward search agrees with naive substring counting on random
        /// trajectory-like strings (runs of edge symbols separated by $).
        #[test]
        fn backward_search_equals_naive(
            runs in proptest::collection::vec(proptest::collection::vec(1u32..10, 1..10), 1..10),
            pattern in proptest::collection::vec(1u32..10, 1..4),
        ) {
            let mut text = Vec::new();
            for r in runs {
                text.extend(r);
                text.push(0);
            }
            let (fm, _) = FmIndex::<HuffmanWaveletTree>::build(&text, 10);
            proptest::prop_assert_eq!(fm.count(&pattern), naive_count(&text, &pattern));
            let (fm2, _) = FmIndex::<WaveletMatrix>::build(&text, 10);
            proptest::prop_assert_eq!(fm2.count(&pattern), naive_count(&text, &pattern));
        }
    }
}
