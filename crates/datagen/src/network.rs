//! Synthetic road network generation.
//!
//! Layout: `num_cities` street-grid cities in a west–east chain, joined by
//! motorway corridors. Each corridor also carries a slower parallel rural
//! road, and some corridors sprout a summer-house pocket — reproducing the
//! category runs and zone boundaries the π strategies split on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tthr_network::{
    Category, EdgeAttrs, EdgeId, NetworkBuilder, Point, RoadNetwork, VertexId, Zone,
};

/// Network generator parameters.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// RNG seed; identical configs generate identical networks.
    pub seed: u64,
    /// Number of cities in the chain.
    pub num_cities: usize,
    /// Street-grid side length (vertices per side) of each city.
    pub city_grid: usize,
    /// City block edge length in meters.
    pub block_m: f64,
    /// Attach a summer-house pocket to every `n`-th corridor (0 = none).
    pub summer_every: usize,
    /// Fraction of minor-road segments left without a tagged speed limit.
    pub untagged_fraction: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::medium()
    }
}

impl NetworkConfig {
    /// Tiny network for unit tests (~600 directed edges).
    pub fn small() -> Self {
        NetworkConfig {
            seed: 42,
            num_cities: 2,
            city_grid: 8,
            block_m: 150.0,
            summer_every: 1,
            untagged_fraction: 0.1,
        }
    }

    /// Mid-size network for integration tests and examples (~9 k directed
    /// edges).
    pub fn medium() -> Self {
        NetworkConfig {
            seed: 42,
            num_cities: 6,
            city_grid: 16,
            block_m: 150.0,
            summer_every: 2,
            untagged_fraction: 0.1,
        }
    }

    /// Large network for the benchmark harness (~45 k directed edges).
    pub fn large() -> Self {
        NetworkConfig {
            seed: 42,
            num_cities: 12,
            city_grid: 25,
            block_m: 140.0,
            summer_every: 2,
            untagged_fraction: 0.1,
        }
    }
}

/// Per-city bookkeeping the workload generator samples from.
#[derive(Clone, Debug)]
pub struct CityInfo {
    /// All grid vertices of the city.
    pub vertices: Vec<VertexId>,
    /// The west/east arterial endpoints the corridors attach to.
    pub west_gate: VertexId,
    /// East arterial endpoint.
    pub east_gate: VertexId,
    /// City center position.
    pub center: Point,
}

/// A generated network plus the structure the workload generator needs.
#[derive(Clone, Debug)]
pub struct SyntheticNetwork {
    /// The road network graph.
    pub network: RoadNetwork,
    /// Per-city vertex groups.
    pub cities: Vec<CityInfo>,
    /// Vertices of summer-house pockets (weekend-trip destinations).
    pub summer_vertices: Vec<VertexId>,
}

/// Generates a synthetic road network.
pub fn generate_network(config: &NetworkConfig) -> SyntheticNetwork {
    assert!(config.num_cities >= 1, "at least one city");
    assert!(config.city_grid >= 4, "grid must be at least 4×4");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new();
    let mut cities = Vec::with_capacity(config.num_cities);
    let mut summer_vertices = Vec::new();

    let n = config.city_grid;
    let city_extent = (n - 1) as f64 * config.block_m;
    let corridor_len = 6_000.0;
    let spacing = city_extent + corridor_len;

    // --- Cities ---------------------------------------------------------
    for ci in 0..config.num_cities {
        let origin = Point::new(ci as f64 * spacing, rng.gen_range(-400.0..400.0));
        cities.push(build_city(&mut b, &mut rng, config, origin));
    }

    // --- Corridors between consecutive cities ----------------------------
    for ci in 0..config.num_cities.saturating_sub(1) {
        let from = cities[ci].east_gate;
        let to = cities[ci + 1].west_gate;
        let attach_summer = config.summer_every > 0 && ci % config.summer_every == 0;
        let summer = build_corridor(&mut b, &mut rng, from, to, corridor_len, attach_summer);
        summer_vertices.extend(summer);
    }

    SyntheticNetwork {
        network: b.build(),
        cities,
        summer_vertices,
    }
}

/// Adds both directions of a road between two vertices.
fn two_way(
    b: &mut NetworkBuilder,
    u: VertexId,
    v: VertexId,
    category: Category,
    zone: Zone,
    speed: Option<f64>,
    length: f64,
) -> (EdgeId, EdgeId) {
    let attrs = |_| match speed {
        Some(s) => EdgeAttrs::new(category, zone, s, length),
        None => EdgeAttrs::without_speed_limit(category, zone, length),
    };
    (b.add_edge(u, v, attrs(())), b.add_edge(v, u, attrs(())))
}

/// Builds one city street grid; returns its bookkeeping record.
#[allow(clippy::needless_range_loop)] // gx/gy index two axes of `grid` symmetrically
fn build_city(
    b: &mut NetworkBuilder,
    rng: &mut StdRng,
    config: &NetworkConfig,
    origin: Point,
) -> CityInfo {
    let n = config.city_grid;
    let block = config.block_m;
    let mid = n / 2;
    let quarter = n / 4;

    // Grid vertices.
    let mut grid = vec![vec![VertexId(0); n]; n];
    let mut vertices = Vec::with_capacity(n * n);
    for (gy, row) in grid.iter_mut().enumerate() {
        for (gx, slot) in row.iter_mut().enumerate() {
            let jitter_x = rng.gen_range(-8.0..8.0);
            let jitter_y = rng.gen_range(-8.0..8.0);
            let v = b.add_vertex(Point::new(
                origin.x + gx as f64 * block + jitter_x,
                origin.y + gy as f64 * block + jitter_y,
            ));
            *slot = v;
            vertices.push(v);
        }
    }

    // Street classification by row/column index.
    let class_of = |idx: usize, rng: &mut StdRng| -> (Category, f64) {
        if idx == mid {
            (Category::Primary, 50.0)
        } else if idx == quarter || idx == n - 1 - quarter {
            (Category::Secondary, 50.0)
        } else if idx.is_multiple_of(3) {
            (Category::Tertiary, 40.0)
        } else if rng.gen_bool(0.06) {
            (Category::LivingStreet, 15.0)
        } else {
            (Category::Residential, 30.0)
        }
    };

    let add_street =
        |b: &mut NetworkBuilder, rng: &mut StdRng, u: VertexId, v: VertexId, line_idx: usize| {
            let (cat, speed) = class_of(line_idx, rng);
            // Minor roads are sometimes untagged in OSM; reproduce that so the
            // category-median fallback is exercised.
            let minor = matches!(
                cat,
                Category::Residential | Category::LivingStreet | Category::Tertiary
            );
            let tagged = !(minor && rng.gen_bool(config.untagged_fraction));
            two_way(b, u, v, cat, Zone::City, tagged.then_some(speed), block);
        };

    // Horizontal streets (row gy), vertical streets (column gx).
    for gy in 0..n {
        for gx in 0..n - 1 {
            add_street(b, rng, grid[gy][gx], grid[gy][gx + 1], gy);
        }
    }
    for gx in 0..n {
        for gy in 0..n - 1 {
            add_street(b, rng, grid[gy][gx], grid[gy + 1][gx], gx);
        }
    }

    CityInfo {
        west_gate: grid[mid][0],
        east_gate: grid[mid][n - 1],
        center: Point::new(
            origin.x + (n / 2) as f64 * block,
            origin.y + (n / 2) as f64 * block,
        ),
        vertices,
    }
}

/// Builds a motorway corridor plus a parallel rural road between two city
/// gates, optionally with a summer-house pocket; returns the pocket's
/// vertices.
#[allow(clippy::needless_range_loop)] // gx/gy index two axes of `grid` symmetrically
fn build_corridor(
    b: &mut NetworkBuilder,
    rng: &mut StdRng,
    from: VertexId,
    to: VertexId,
    nominal_len: f64,
    attach_summer: bool,
) -> Vec<VertexId> {
    let p_from = b_position(b, from);
    let p_to = b_position(b, to);
    let dist = p_from.distance(&p_to);
    // Segment counts derive from the nominal (config-determined) corridor
    // length, not the jittered gate distance: the seed perturbs geometry
    // only, never the topology.
    let segments = ((nominal_len / 800.0).round() as usize).max(2);

    // Ramp vertices just outside the gates.
    let ramp_a = b.add_vertex(p_from.lerp(&p_to, 120.0 / dist));
    let ramp_b = b.add_vertex(p_to.lerp(&p_from, 120.0 / dist));
    two_way(
        b,
        from,
        ramp_a,
        Category::MotorwayLink,
        Zone::Ambiguous,
        Some(60.0),
        120.0,
    );
    two_way(
        b,
        ramp_b,
        to,
        Category::MotorwayLink,
        Zone::Ambiguous,
        Some(60.0),
        120.0,
    );

    // Motorway segments between the ramps.
    let pa = b_position(b, ramp_a);
    let pb = b_position(b, ramp_b);
    let mut prev = ramp_a;
    let seg_len = pa.distance(&pb) / segments as f64;
    let mut mid_vertex = ramp_a;
    for s in 1..segments {
        let v = b.add_vertex(pa.lerp(&pb, s as f64 / segments as f64));
        two_way(
            b,
            prev,
            v,
            Category::Motorway,
            Zone::Rural,
            Some(110.0),
            seg_len,
        );
        if s == segments / 2 {
            mid_vertex = v;
        }
        prev = v;
    }
    two_way(
        b,
        prev,
        ramp_b,
        Category::Motorway,
        Zone::Rural,
        Some(110.0),
        seg_len,
    );

    // Parallel rural road (offset northwards), slower but ramp-free.
    let offset = 350.0;
    let rural_segments = (segments * 2).max(3);
    let mut rprev = from;
    for s in 1..rural_segments {
        let t = s as f64 / rural_segments as f64;
        let base = p_from.lerp(&p_to, t);
        let v = b.add_vertex(Point::new(
            base.x,
            base.y + offset + rng.gen_range(-30.0..30.0),
        ));
        let len = p_from.distance(&p_to) / rural_segments as f64;
        two_way(
            b,
            rprev,
            v,
            Category::Secondary,
            Zone::Rural,
            Some(80.0),
            len,
        );
        rprev = v;
    }
    let len = p_from.distance(&p_to) / rural_segments as f64;
    two_way(
        b,
        rprev,
        to,
        Category::Secondary,
        Zone::Rural,
        Some(80.0),
        len,
    );

    // Summer-house pocket off the middle of the motorway via a spur.
    let mut pocket = Vec::new();
    if attach_summer {
        let anchor = b_position(b, mid_vertex);
        let spur_end = b.add_vertex(Point::new(anchor.x, anchor.y - 900.0));
        two_way(
            b,
            mid_vertex,
            spur_end,
            Category::Tertiary,
            Zone::Ambiguous,
            Some(60.0),
            900.0,
        );
        // A 3×3 grid of living streets.
        let m = 3usize;
        let mut grid = vec![vec![VertexId(0); m]; m];
        for (gy, row) in grid.iter_mut().enumerate() {
            for (gx, slot) in row.iter_mut().enumerate() {
                let v = b.add_vertex(Point::new(
                    anchor.x + (gx as f64 - 1.0) * 120.0,
                    anchor.y - 1000.0 - gy as f64 * 120.0,
                ));
                *slot = v;
                pocket.push(v);
            }
        }
        two_way(
            b,
            spur_end,
            grid[0][1],
            Category::LivingStreet,
            Zone::SummerHouse,
            Some(30.0),
            100.0,
        );
        for gy in 0..m {
            for gx in 0..m - 1 {
                two_way(
                    b,
                    grid[gy][gx],
                    grid[gy][gx + 1],
                    Category::LivingStreet,
                    Zone::SummerHouse,
                    Some(30.0),
                    120.0,
                );
            }
        }
        for gx in 0..m {
            for gy in 0..m - 1 {
                two_way(
                    b,
                    grid[gy][gx],
                    grid[gy + 1][gx],
                    Category::LivingStreet,
                    Zone::SummerHouse,
                    Some(30.0),
                    120.0,
                );
            }
        }
    }
    pocket
}

fn b_position(b: &NetworkBuilder, v: VertexId) -> Point {
    b.position(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tthr_network::route::{Router, Weighting};

    #[test]
    fn small_network_statistics() {
        let syn = generate_network(&NetworkConfig::small());
        let net = &syn.network;
        assert!(net.num_edges() > 400, "edges: {}", net.num_edges());
        assert_eq!(syn.cities.len(), 2);
        assert!(!syn.summer_vertices.is_empty());
        // All four zones appear.
        for z in Zone::ALL {
            assert!(
                net.edge_ids().any(|e| net.attrs(e).zone == z),
                "zone {z:?} missing"
            );
        }
        // Arterial and minor categories appear.
        for c in [
            Category::Motorway,
            Category::MotorwayLink,
            Category::Primary,
            Category::Secondary,
            Category::Residential,
            Category::LivingStreet,
        ] {
            assert!(
                net.edge_ids().any(|e| net.attrs(e).category == c),
                "category {c:?} missing"
            );
        }
    }

    #[test]
    fn cities_are_mutually_reachable() {
        let syn = generate_network(&NetworkConfig::small());
        let mut router = Router::new(&syn.network);
        let a = syn.cities[0].vertices[10];
        let z = *syn.cities[1].vertices.last().unwrap();
        let route = router
            .shortest_route(a, z, Weighting::TravelTime, f64::INFINITY)
            .expect("cities connected");
        assert!(route.edges.len() > 10);
        // And back (all roads are two-way).
        assert!(router
            .shortest_route(z, a, Weighting::TravelTime, f64::INFINITY)
            .is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_network(&NetworkConfig::small());
        let b = generate_network(&NetworkConfig::small());
        assert_eq!(a.network.num_edges(), b.network.num_edges());
        assert_eq!(a.network.num_vertices(), b.network.num_vertices());
        for e in a.network.edge_ids() {
            assert_eq!(a.network.attrs(e), b.network.attrs(e));
        }
        // Different seeds change the jitter.
        let mut cfg = NetworkConfig::small();
        cfg.seed = 43;
        let c = generate_network(&cfg);
        assert_eq!(a.network.num_edges(), c.network.num_edges());
    }

    #[test]
    fn some_minor_roads_are_untagged() {
        let syn = generate_network(&NetworkConfig::small());
        let untagged = syn
            .network
            .edge_ids()
            .filter(|&e| syn.network.attrs(e).speed_limit_kmh.is_none())
            .count();
        assert!(untagged > 0, "untagged-speed-limit roads must exist");
    }

    #[test]
    fn summer_pocket_is_reachable() {
        let syn = generate_network(&NetworkConfig::small());
        let mut router = Router::new(&syn.network);
        let home = syn.cities[0].vertices[0];
        let pocket = syn.summer_vertices[0];
        assert!(router
            .shortest_route(home, pocket, Weighting::TravelTime, f64::INFINITY)
            .is_some());
    }

    #[test]
    fn medium_network_size_band() {
        let syn = generate_network(&NetworkConfig::medium());
        let e = syn.network.num_edges();
        assert!((5_000..40_000).contains(&e), "medium edges = {e}");
    }
}
