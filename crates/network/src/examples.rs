//! The paper's running example: the road network of Figure 1 with the
//! attributes of Table 1.
//!
//! Used as a fixture across the workspace test suites, so that every worked
//! example in the paper (ISA ranges, the example query results, the suffix
//! array of Figure 3, the temporal index of Figure 4) can be asserted
//! verbatim.

use crate::edge::EdgeAttrs;
use crate::geometry::Point;
use crate::graph::{NetworkBuilder, RoadNetwork};
use crate::types::{Category, EdgeId, Zone};

/// Edge `A`: motorway, rural, 110 km/h, 900 m — `estimateTT` ≈ 29.5 s.
pub const EDGE_A: EdgeId = EdgeId(0);
/// Edge `B`: primary, city, 50 km/h, 120 m — `estimateTT` ≈ 8.6 s.
pub const EDGE_B: EdgeId = EdgeId(1);
/// Edge `C`: secondary, city, 30 km/h, 40 m — `estimateTT` = 4.8 s.
pub const EDGE_C: EdgeId = EdgeId(2);
/// Edge `D`: secondary, city, 30 km/h, 80 m — `estimateTT` = 9.6 s.
pub const EDGE_D: EdgeId = EdgeId(3);
/// Edge `E`: primary, city, 50 km/h, 100 m — `estimateTT` = 7.2 s.
pub const EDGE_E: EdgeId = EdgeId(4);
/// Edge `F`: primary, rural, 80 km/h, 800 m — `estimateTT` = 36.0 s.
pub const EDGE_F: EdgeId = EdgeId(5);

/// Builds the example road network of the paper's Figure 1 / Table 1.
///
/// Topology (all edges directed left to right):
///
/// ```text
///            ┌─B──▶ v2 ──E──▶ v4
/// v0 ──A──▶ v1      ▲  └─F──▶ v5
///            └─C──▶ v3 ──D──┘
/// ```
///
/// so the paths `⟨A,B,E⟩`, `⟨A,C,D,E⟩`, and `⟨A,B,F⟩` used by the example
/// trajectory set are all traversable. Segment lengths and speed limits come
/// from Table 1; vertex positions are illustrative.
pub fn example_network() -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    let v0 = b.add_vertex(Point::new(0.0, 0.0));
    let v1 = b.add_vertex(Point::new(900.0, 0.0));
    let v2 = b.add_vertex(Point::new(1020.0, 0.0));
    let v3 = b.add_vertex(Point::new(935.0, -25.0));
    let v4 = b.add_vertex(Point::new(1120.0, 0.0));
    let v5 = b.add_vertex(Point::new(1100.0, -790.0));

    let a = b.add_edge(
        v0,
        v1,
        EdgeAttrs::new(Category::Motorway, Zone::Rural, 110.0, 900.0),
    );
    let bb = b.add_edge(
        v1,
        v2,
        EdgeAttrs::new(Category::Primary, Zone::City, 50.0, 120.0),
    );
    let c = b.add_edge(
        v1,
        v3,
        EdgeAttrs::new(Category::Secondary, Zone::City, 30.0, 40.0),
    );
    let d = b.add_edge(
        v3,
        v2,
        EdgeAttrs::new(Category::Secondary, Zone::City, 30.0, 80.0),
    );
    let e = b.add_edge(
        v2,
        v4,
        EdgeAttrs::new(Category::Primary, Zone::City, 50.0, 100.0),
    );
    let f = b.add_edge(
        v2,
        v5,
        EdgeAttrs::new(Category::Primary, Zone::Rural, 80.0, 800.0),
    );

    debug_assert_eq!(
        (a, bb, c, d, e, f),
        (EDGE_A, EDGE_B, EDGE_C, EDGE_D, EDGE_E, EDGE_F)
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;

    #[test]
    fn table_1_estimate_tt_values() {
        let net = example_network();
        let expect = [
            (EDGE_A, 29.5),
            (EDGE_B, 8.6),
            (EDGE_C, 4.8),
            (EDGE_D, 9.6),
            (EDGE_E, 7.2),
            (EDGE_F, 36.0),
        ];
        for (e, secs) in expect {
            assert!(
                (net.estimate_tt(e) - secs).abs() < 0.05,
                "estimateTT({e:?}) = {} ≠ {secs}",
                net.estimate_tt(e)
            );
        }
    }

    #[test]
    fn example_trajectory_paths_are_traversable() {
        let net = example_network();
        for edges in [
            vec![EDGE_A, EDGE_B, EDGE_E],
            vec![EDGE_A, EDGE_C, EDGE_D, EDGE_E],
            vec![EDGE_A, EDGE_B, EDGE_F],
        ] {
            let p = Path::new(edges);
            assert!(net.validate_path(&p), "{p:?} should be traversable");
        }
        // A detour path that skips a connector is not traversable.
        assert!(!net.validate_path(&Path::new(vec![EDGE_A, EDGE_D])));
    }

    #[test]
    fn table_1_zones_and_categories() {
        let net = example_network();
        assert_eq!(net.attrs(EDGE_A).category, Category::Motorway);
        assert_eq!(net.attrs(EDGE_A).zone, Zone::Rural);
        assert_eq!(net.attrs(EDGE_C).category, Category::Secondary);
        assert_eq!(net.attrs(EDGE_E).zone, Zone::City);
        assert_eq!(net.attrs(EDGE_F).zone, Zone::Rural);
    }
}
