//! Offline stand-in for the `proptest` crate.
//!
//! The workspace forbids external registry dependencies, so this shim
//! re-implements the small proptest surface the test suites use: the
//! [`proptest!`] macro, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`], and the `prop_assert*` macros. Unlike real proptest it
//! does no shrinking — a failing case panics with the generated inputs left
//! to the assertion message — but generation is deterministic per test
//! (seeded from the test name), so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of generated cases per property (real proptest defaults to 256;
/// 64 keeps the heavier oracle-comparison properties fast).
pub const CASES: usize = 64;

/// Deterministic SplitMix64 generator seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the property's function name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Strategies are immutable; sampling draws from the
/// shared per-test generator.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range {self:?}");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` that runs the body over [`CASES`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($p:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            #[allow(unused_mut)]
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $p = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::Strategy;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (0i64..50).sample(&mut rng);
            assert!((0..50).contains(&v));
            let xs = crate::collection::vec(1u32..8, 2..5).sample(&mut rng);
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| (1..8).contains(&x)));
            let (a, b, c) = (0u32..3, 5u32..9, -1.0f64..1.0).sample(&mut rng);
            assert!(a < 3 && (5..9).contains(&b) && (-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // The macro itself, exercised the way the workspace uses it.
    proptest::proptest! {
        #[test]
        fn macro_generates_and_iterates(
            mut xs in proptest::collection::vec(0u32..10, 1..6),
            flag in proptest::bool::ANY,
            (lo, hi) in (0i64..10, 10i64..20),
        ) {
            xs.push(3);
            proptest::prop_assert!(!xs.is_empty());
            let _ = flag;
            proptest::prop_assert!(lo < hi);
            proptest::prop_assert_eq!(xs.last().copied(), Some(3));
        }
    }
}
