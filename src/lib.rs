//! # tthr — Travel-Time Histogram Retrieval
//!
//! A complete, from-scratch Rust implementation of the system described in
//! *Waury, Jensen, Koide, Ishikawa, Xiao: "Indexing Trajectories for
//! Travel-Time Histogram Retrieval", EDBT 2019*.
//!
//! The system answers **strict path queries** (SPQs) over large sets of
//! network-constrained trajectories: given a path `P` in a road network, a
//! (periodic or fixed) time interval `I`, an optional filter predicate `f`,
//! and a cardinality requirement `β`, it returns a travel-time histogram
//! derived from trajectories that traversed `P` exactly, entering it inside
//! `I`. Full trip queries are partitioned into sub-queries and greedily
//! relaxed until each sub-query meets its cardinality requirement; the
//! per-sub-path histograms are convolved into a distribution for the whole
//! trip.
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`network`] — road network graph (categories, zones, speed limits,
//!   routing, the paper's Figure 1 example network).
//! * [`trajectory`] — network-constrained trajectories, GPS traces, and an
//!   HMM map-matcher.
//! * [`fmindex`] — the succinct text-index substrate (SA-IS suffix arrays,
//!   BWT, wavelet trees, FM-index backward search).
//! * [`temporal`] — temporal index forests (B+-trees and CSS-trees).
//! * [`histogram`] — travel-time histograms, convolution, time-of-day
//!   histograms.
//! * [`core`] — the SNT-index adapted for travel-time retrieval, the SPQ
//!   engine, partitioning (π) and splitting (σ) strategies, the cardinality
//!   estimator, and temporal index partitioning.
//! * [`datagen`] — deterministic synthetic road networks and ITSP-like
//!   trajectory workloads.
//! * [`metrics`] — the paper's evaluation metrics (sMAPE, weighted error,
//!   log-likelihood, q-error), latency percentiles, and the labeled
//!   metrics registry behind the server's Prometheus `/metrics`
//!   exposition.
//! * [`store`] — the persistent storage substrate: versioned, checksummed
//!   snapshot containers and the append write-ahead log (the on-disk
//!   format is specified in its crate docs and `docs/storage-format.md`).
//! * [`service`] — the concurrent serving layer (see below).
//! * [`server`] — the network front-end: a dependency-free epoll
//!   HTTP/1.1 reactor over [`service::QueryService`] with a bounded-queue
//!   backpressure boundary, load shedding, pipelining, and graceful
//!   drain (`examples/serve.rs` is the runnable entry point).
//! * [`rpc`] — the cluster tier's compact binary wire protocol
//!   (length-prefixed, CRC-32-guarded frames over the store codec).
//! * [`client`] — the cluster tier's scatter-gather router: pooled
//!   binary-protocol node clients with timeouts and bounded retry, and
//!   a [`client::ClusterRouter`] that answers trip queries over a
//!   shard-per-process cluster byte-identically to the in-process
//!   sharded backend (`src/bin/tthr-node.rs` and
//!   `src/bin/tthr-router.rs` are the runnable processes;
//!   `examples/cluster.rs` boots a whole cluster in one command).
//!
//! ## Architecture: the service layer
//!
//! Above the paper-faithful engine sits a production-oriented serving
//! layer, [`service::QueryService`], designed for many concurrent trip
//! queries over one shared index:
//!
//! ```text
//!   clients ──► QueryService ──► ThreadPool (N workers, helper-joined fan-out)
//!                   │                │  batch → one task per trip query
//!                   │                │  trip  → one task per independent sub-query chain
//!                   │                ▼
//!                   │           QueryEngine::run_chain_via / trip_query_via
//!                   │                │ every getTravelTimes dispatch
//!                   │                ▼
//!                   ├──► ShardedCache (LRU per shard, Mutex per shard,
//!                   │      key = full Spq, hit/miss/eviction counters)
//!                   │                │ miss
//!                   │                ▼
//!                   └──► backend: RwLock over SntIndex (monolith), or
//!                        ShardedSntIndex — K per-shard RwLocks, appends only
//!                        write-lock touched shards (generation + 1, scoped
//!                        cache invalidation)
//! ```
//!
//! * **Concurrency** — trip queries in a batch run as parallel pool tasks;
//!   within a trip, each initial sub-query's relaxation chain runs as its
//!   own task whenever `QueryEngine::chains_are_independent` proves the
//!   decomposition has no cross-chain data flow (shift-and-enlarge on
//!   periodic windows is the one dependent case, which runs sequentially)
//!   — batches that already saturate the workers skip the per-chain
//!   nesting, which would only add scheduling overhead. The pool's join
//!   primitive keeps the waiting thread working on its own task set, so
//!   nested fan-out cannot deadlock.
//! * **Caching** — results are cached per relaxed SPQ, so two trips
//!   sharing a sub-path (or one trip repeated) skip the FM-index and
//!   temporal-forest scans entirely. Updates via
//!   [`service::QueryService::append_batch`] invalidate scoped to the
//!   backend (whole cache for the monolith, touched shards only for the
//!   sharded backend), with generation-validated inserts so stale
//!   entries cannot survive an append.
//! * **Sharding** — [`core::ShardedSntIndex`] partitions the road
//!   network into K zone/grid shards, each a complete SNT-index over the
//!   trajectories touching it, behind its own lock. First-edge routing
//!   keeps answers byte-identical to the monolith
//!   (`tests/sharded_equivalence.rs` proves it differentially for
//!   K ∈ {1, 2, 7}), while appends stall only the written shards
//!   (`crates/bench/benches/sharded.rs`).
//! * **Observability** — [`service::ServiceStats`] snapshots p50/p95/p99
//!   latency, throughput, and cache hit rate, computed with [`metrics`].
//!   Underneath, every query carries a [`core::QueryTrace`] (rank ops,
//!   wavelet descents, cache/scratch hits, shard fanout) feeding a
//!   slow-query ring ([`service::QueryService::slow_queries`]) and a
//!   labeled [`metrics::MetricsRegistry`] the server exposes as
//!   Prometheus text on `GET /metrics` (`GET /debug/slow` returns the
//!   ring as JSON).
//!
//! The service returns byte-identical results to the single-threaded
//! engine on the same index state (`tests/service_equivalence.rs` enforces
//! this across a synthetic workload).
//!
//! ## Persistence: snapshots and the write-ahead log
//!
//! A restart does not rebuild the index. [`service::QueryService::save_snapshot`]
//! serializes the whole SNT-index — every FM-index, the temporal forest,
//! the user table, and the time-of-day store — into a sectioned,
//! CRC-guarded container ([`store`]), and attaches a write-ahead log to
//! the same directory: every later `append_batch` is fsynced to the WAL
//! *before* the in-memory index changes.
//! [`service::QueryService::open`] is the restart path: load the
//! snapshot, replay the WAL batches the snapshot predates (records carry
//! base stamps, so replay is idempotent), truncate any torn tail a crash
//! left behind, and serve — byte-identically to an index built from the
//! full history in memory (`tests/persistence_roundtrip.rs` enforces
//! this, including crash and corruption scenarios).
//!
//! ## Quickstart
//!
//! ```
//! use tthr::prelude::*;
//!
//! // The 6-edge example network of the paper's Figure 1 / Table 1 and the
//! // 4-trajectory example set of Section 2.2.
//! let network = tthr::network::examples::example_network();
//! let trajectories = tthr::trajectory::examples::example_trajectories();
//!
//! // Build the extended SNT-index.
//! let index = SntIndex::build(&network, &trajectories, SntConfig::default());
//!
//! // Q = spq(<A,B,E>, [0,15), ∅, 2): trajectories tr0 and tr3 match.
//! let path = Path::new(vec![EdgeId(0), EdgeId(1), EdgeId(4)]);
//! let spq = Spq::new(path, TimeInterval::fixed(0, 15)).with_beta(2);
//! let times = index.get_travel_times(&spq);
//! assert_eq!(times.sorted(), vec![10.0, 11.0]);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tthr_client as client;
pub use tthr_core as core;
pub use tthr_datagen as datagen;
pub use tthr_fmindex as fmindex;
pub use tthr_histogram as histogram;
pub use tthr_metrics as metrics;
pub use tthr_network as network;
pub use tthr_rpc as rpc;
pub use tthr_server as server;
pub use tthr_service as service;
pub use tthr_store as store;
pub use tthr_temporal as temporal;
pub use tthr_trajectory as trajectory;

/// Convenience re-exports covering the common end-to-end workflow.
pub mod prelude {
    pub use tthr_client::{ClientConfig, ClusterError, ClusterRouter, NodeClient};
    pub use tthr_core::{
        BetaPolicy, CardinalityMode, IndexBackend, PartitionMethod, QueryEngine, QueryEngineConfig,
        ShardRouter, ShardedSntIndex, SntConfig, SntIndex, SplitMethod, Spq, TimeInterval,
        TravelTimeProvider, TripQuery,
    };
    pub use tthr_datagen::{NetworkConfig, WorkloadConfig};
    pub use tthr_histogram::Histogram;
    pub use tthr_metrics::{log_likelihood, percentile, q_error, smape, weighted_error};
    pub use tthr_network::{Category, EdgeId, Path, RoadNetwork, Zone};
    pub use tthr_server::{serve, ServerConfig, ServerHandle, ServerMetrics};
    pub use tthr_service::{QueryService, ServiceConfig, ServiceStats, ShardedQueryService};
    pub use tthr_trajectory::{TrajId, Trajectory, TrajectorySet, UserId};
}
