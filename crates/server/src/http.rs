//! Incremental HTTP/1.1 request parsing and response serialization.
//!
//! [`try_parse`] is a **pure function of the accumulated connection
//! buffer**: the reactor appends whatever bytes arrived and re-asks. That
//! makes incremental parsing *definitionally* equivalent to one-shot
//! parsing — there is no hidden state a byte boundary could corrupt — and
//! the property battery in `tests/http_parser.rs` pins the remaining
//! obligations: a prefix of a valid request is never an error
//! (monotonicity), consumed lengths are exact (pipelining), and every
//! malformed input maps to a 4xx status instead of a panic.
//!
//! The parser accepts exactly what the wire protocol needs: a request
//! line, CRLF-separated headers, and an optional `Content-Length` body.
//! `Transfer-Encoding` is rejected (400) rather than half-supported.

use std::fmt::Write as _;

/// Parser limits (from the server configuration).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (excluding the terminating
    /// blank line); beyond this the request is answered `431`.
    pub max_head_bytes: usize,
    /// Maximum declared body size; beyond this the request is answered
    /// `413`.
    pub max_body_bytes: usize,
}

/// A complete parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target (origin form, e.g. `/spq`).
    pub target: String,
    /// Whether the connection stays open after the response (HTTP/1.1
    /// default, overridable by `Connection:` either way).
    pub keep_alive: bool,
    /// The `Content-Type` header value, trimmed, if one was sent (the
    /// router uses it to pick the binary `/spq` fast path).
    pub content_type: Option<String>,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

/// Outcome of a parse attempt over the buffered bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parse {
    /// Need more bytes; nothing consumed.
    Incomplete,
    /// One complete request; the first `usize` bytes of the buffer belong
    /// to it and must be drained before the next attempt.
    Done(Request, usize),
}

/// A protocol violation. The connection answers the mapped status and
/// closes: after a malformed head the next request boundary is unknowable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Request line + headers exceed [`Limits::max_head_bytes`] → `431`.
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`] → `413`.
    BodyTooLarge,
    /// Anything else malformed → `400` with the reason.
    Bad(&'static str),
}

impl ParseError {
    /// The HTTP status the error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::Bad(_) => 400,
        }
    }

    /// Human-readable reason (the error response body carries it).
    pub fn reason(&self) -> &'static str {
        match self {
            ParseError::HeadTooLarge => "request head too large",
            ParseError::BodyTooLarge => "request body too large",
            ParseError::Bad(r) => r,
        }
    }
}

/// Attempts to parse one request from the front of `buf`.
pub fn try_parse(buf: &[u8], limits: &Limits) -> Result<Parse, ParseError> {
    // Find the head terminator, looking only as far as the head limit
    // allows (+3 so a terminator straddling the boundary still counts
    // toward the head it ends).
    let window = buf.len().min(limits.max_head_bytes + 4);
    let head_end = match find_crlf_crlf(&buf[..window]) {
        Some(pos) => pos,
        None if buf.len() >= limits.max_head_bytes + 4 => return Err(ParseError::HeadTooLarge),
        None => return Ok(Parse::Incomplete),
    };
    if head_end + 4 > limits.max_head_bytes + 4 {
        return Err(ParseError::HeadTooLarge);
    }
    let head = &buf[..head_end];
    let head = std::str::from_utf8(head).map_err(|_| ParseError::Bad("non-ascii request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Bad("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::Bad("malformed method"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Bad("request target must be origin-form"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Bad("unsupported HTTP version")),
    };

    let mut content_length: Option<usize> = None;
    let mut content_type: Option<String> = None;
    let mut keep_alive = http11;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Bad("malformed header line"))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(ParseError::Bad("malformed header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            if content_length.is_some() {
                return Err(ParseError::Bad("duplicate content-length"));
            }
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::Bad("malformed content-length"));
            }
            let parsed: usize = value
                .parse()
                .map_err(|_| ParseError::Bad("content-length overflow"))?;
            if parsed > limits.max_body_bytes {
                return Err(ParseError::BodyTooLarge);
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::Bad("transfer-encoding not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let body_len = content_length.unwrap_or(0);
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        return Ok(Parse::Incomplete);
    }
    Ok(Parse::Done(
        Request {
            method: method.to_string(),
            target: target.to_string(),
            keep_alive,
            content_type,
            body: buf[head_end + 4..total].to_vec(),
        },
        total,
    ))
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase of the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The content type of the `/metrics` Prometheus text exposition.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The content type selecting the binary `/spq` fast path: the body is
/// one `tthr-rpc` frame instead of a JSON document, and the response is
/// a frame too.
pub const FRAME_CONTENT_TYPE: &str = "application/x-tthr-frame";

/// Serializes one response. `retry_after` adds the `Retry-After` header
/// (load shedding); `keep_alive: false` adds `Connection: close`.
pub fn encode_response(
    status: u16,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u32>,
) -> Vec<u8> {
    encode_response_with_content_type(status, body, keep_alive, retry_after, "application/json")
}

/// [`encode_response`] with an explicit `content-type` (everything this
/// server emits is JSON except the `/metrics` text exposition).
pub fn encode_response_with_content_type(
    status: u16,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u32>,
    content_type: &str,
) -> Vec<u8> {
    let mut head = String::with_capacity(128);
    let _ = write!(
        head,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason_phrase(status),
        body.len()
    );
    if let Some(secs) = retry_after {
        let _ = write!(head, "retry-after: {secs}\r\n");
    }
    let _ = write!(
        head,
        "connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: Limits = Limits {
        max_head_bytes: 1024,
        max_body_bytes: 4096,
    };

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /spq HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        match try_parse(raw, &LIMITS).unwrap() {
            Parse::Done(req, consumed) => {
                assert_eq!(consumed, raw.len());
                assert_eq!(req.method, "POST");
                assert_eq!(req.target, "/spq");
                assert!(req.keep_alive);
                assert_eq!(req.body, b"abcd");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let Parse::Done(req, consumed) = try_parse(raw, &LIMITS).unwrap() else {
            panic!("first request must parse");
        };
        assert_eq!(req.target, "/health");
        let Parse::Done(req2, consumed2) = try_parse(&raw[consumed..], &LIMITS).unwrap() else {
            panic!("second request must parse");
        };
        assert_eq!(req2.target, "/stats");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn content_type_is_captured_and_trimmed() {
        let raw = b"POST /spq HTTP/1.1\r\ncontent-type:  application/x-tthr-frame \r\ncontent-length: 0\r\n\r\n";
        let Parse::Done(req, _) = try_parse(raw, &LIMITS).unwrap() else {
            panic!("must parse");
        };
        assert_eq!(req.content_type.as_deref(), Some(FRAME_CONTENT_TYPE));
        let plain = b"POST /spq HTTP/1.1\r\ncontent-length: 0\r\n\r\n";
        let Parse::Done(req, _) = try_parse(plain, &LIMITS).unwrap() else {
            panic!("must parse");
        };
        assert_eq!(req.content_type, None);
    }

    #[test]
    fn connection_semantics() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let Parse::Done(req, _) = try_parse(close, &LIMITS).unwrap() else {
            panic!()
        };
        assert!(!req.keep_alive);
        let http10 = b"GET / HTTP/1.0\r\n\r\n";
        let Parse::Done(req, _) = try_parse(http10, &LIMITS).unwrap() else {
            panic!()
        };
        assert!(!req.keep_alive, "1.0 defaults to close");
        let http10_ka = b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n";
        let Parse::Done(req, _) = try_parse(http10_ka, &LIMITS).unwrap() else {
            panic!()
        };
        assert!(req.keep_alive);
    }

    #[test]
    fn malformed_heads_are_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2\r\n\r\n",
            b"GET  /x HTTP/1.1\r\n\r\n",
            b"G=T /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nab",
            b"POST /x HTTP/1.1\r\ncontent-length: 2x\r\n\r\nab",
            b"POST /x HTTP/1.1\r\ncontent-length: 99999999999999999999\r\n\r\n",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            b"GET /x HTTP/1.1\r\nname space: v\r\n\r\n",
        ] {
            let err = try_parse(raw, &LIMITS).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} → {err:?}");
        }
    }

    #[test]
    fn oversized_head_is_431_and_oversized_body_413() {
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', 2 * LIMITS.max_head_bytes));
        assert_eq!(
            try_parse(&huge, &LIMITS).unwrap_err(),
            ParseError::HeadTooLarge
        );
        let body = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            LIMITS.max_body_bytes + 1
        );
        assert_eq!(
            try_parse(body.as_bytes(), &LIMITS).unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let raw = b"POST /spq HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        for cut in 0..raw.len() {
            assert_eq!(
                try_parse(&raw[..cut], &LIMITS).unwrap(),
                Parse::Incomplete,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn response_encoding() {
        let bytes = encode_response(503, b"{}", true, Some(2));
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let closing = encode_response(200, b"[]", false, None);
        assert!(String::from_utf8(closing)
            .unwrap()
            .contains("connection: close\r\n"));
    }
}
