//! Road network graph model for network-constrained trajectory indexing.
//!
//! A spatial network is modeled as a directed graph `G = (V, E, F)` where `V`
//! is a vertex set, `E ⊆ V × V` is a set of edges representing road segments,
//! and `F : E → Cat × Z × SL × L` maps every edge to a road category, a zone
//! type, a speed limit, and a segment length (paper, Section 2.2).
//!
//! The crate provides:
//!
//! * [`RoadNetwork`] — the graph itself, built through [`NetworkBuilder`],
//!   with the `estimateTT` speed-limit fallback estimator of the paper.
//! * [`Path`] — a traversable sequence of segments with sub-path slicing.
//! * [`Category`] / [`Zone`] — the 17 OSM-style road categories and the
//!   Danish-zoning-style zone types used by the partitioning strategies.
//! * [`route`] — Dijkstra routing over the network (needed by the synthetic
//!   workload generator and the HMM map-matcher).
//! * [`examples`] — the paper's Figure 1 / Table 1 example network, reused as
//!   a fixture throughout the workspace test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edge;
pub mod examples;
mod geometry;
mod graph;
mod path;
pub mod route;
pub mod spatial;
mod types;

pub use edge::EdgeAttrs;
pub use geometry::Point;
pub use graph::{NetworkBuilder, RoadNetwork};
pub use path::{Path, PathError};
pub use types::{Category, EdgeId, Timestamp, VertexId, Zone, SECONDS_PER_DAY};
