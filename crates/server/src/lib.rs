//! # tthr-server — an epoll HTTP/1.1 front-end over the query service
//!
//! The serving layer that turns the in-process
//! [`QueryService`] into a network service, with **zero
//! external dependencies**: no tokio, no hyper — non-blocking
//! accept/IO reactors over raw `epoll` (the private `sys` module — the
//! crate's only unsafe surface), a hand-rolled
//! incremental HTTP/1.1 parser ([`http`]), a small JSON codec ([`json`]),
//! and the wire protocol ([`wire`]). It serves both service backends —
//! the monolithic `SntIndex` and the partitioned `ShardedSntIndex` —
//! through the same generic [`serve`] entry point.
//!
//! One reactor thread runs by default; [`ServerConfig::reactors`] (or
//! `TTHR_REACTORS`) starts N of them, each owning its own
//! `SO_REUSEPORT` listener on the same address, its own epoll loop, and
//! its own bounded in-flight window — the kernel shards accepts across
//! them and the threads share nothing but the counters.
//!
//! ```text
//!  clients ══╗   ┌────────────────── reactor thread ──────────────────┐
//!            ╟──►│ accept → per-conn state machine:                   │
//!  keep-alive╢   │   read → incremental parse → route                 │
//!  pipelining╢   │     /health /stats /metrics ─────► inline answer   │
//!            ║   │     /debug/slow                                    │
//!            ╟──►│     /spq /trip /batch /append ──┐                  │
//!            ║   │                                 ▼                  │
//!            ║   │        [ bounded in-flight window = queue_cap ]    │
//!            ║   │     full → park conn (stop reading: TCP back-      │
//!            ║   │     pressure); parked ≥ watermark → 503+Retry-After│
//!            ║   └───────────────┬───────────────────▲───────────────-┘
//!            ║                   ▼ execute           │ completions (reordered
//!            ║        QueryService worker pool ──────┘  per-conn by seq, wake
//!            ╚═══◄═══ responses over per-conn write buffers  via socketpair)
//! ```
//!
//! The contract the test battery pins (`tests/server_equivalence.rs`,
//! `tests/server_backpressure.rs`, `crates/server/tests/http_parser.rs`):
//!
//! * every endpoint's response body is **byte-identical** to encoding the
//!   in-process [`QueryService`] answer with [`wire`]'s functions;
//! * the worker pool never holds more than
//!   [`ServerConfig::queue_cap`] requests in flight; overload answers are
//!   `503` with `Retry-After`; keep-alive connections survive
//!   served-then-idle cycles;
//! * graceful [`ServerHandle::shutdown`] drains in-flight requests,
//!   refuses new ones, and never tears a response mid-byte;
//! * malformed input never panics the reactor: it maps to `400`/`413`/
//!   `431` or a clean close.
//!
//! [`QueryService`]: tthr_service::QueryService
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tthr_core::{SntConfig, SntIndex};
//! use tthr_network::examples::example_network;
//! use tthr_server::{serve, ServerConfig};
//! use tthr_service::{QueryService, ServiceConfig};
//! use tthr_trajectory::examples::example_trajectories;
//!
//! let network = Arc::new(example_network());
//! let index = SntIndex::build(&network, &example_trajectories(), SntConfig::default());
//! let service = QueryService::new(index, network, ServiceConfig::default());
//! let handle = serve(service, "127.0.0.1:7878", ServerConfig::default())?;
//! println!("listening on http://{}", handle.local_addr());
//! // …
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)] // narrowly re-allowed in `sys` for the epoll FFI
#![warn(missing_docs)]

pub mod cluster;
pub mod http;
pub mod json;
pub mod node;
mod reactor;
pub mod standby;
mod sys;
pub mod wire;

use reactor::{ApiResponse, Counters, Handlers, Reactor, Shared};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tthr_service::{QueryService, ServiceBackend};
use tthr_store::StoreError;

/// The API operations that go through the bounded queue (the inline
/// `/health`, `/stats`, `/metrics`, and `/debug/slow` endpoints bypass
/// it: they are the liveness/observability signal and must answer even
/// under full load).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    Spq,
    /// `/spq` with the `tthr-rpc` frame content type: the body decodes
    /// straight into an [`tthr_core::Spq`] without a JSON value tree, and
    /// the answer is a `TravelTimesResult` frame.
    SpqFrame,
    Trip,
    Batch,
    Append,
}

/// Server construction options.
///
/// With [`ServerConfig::reactors`] `> 1` the bounded-queue knobs
/// (`queue_cap`, `shed_watermark`, `max_connections`) apply **per
/// reactor** — each reactor thread owns its own connections, in-flight
/// window, and parked set.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Reactor (accept/IO) threads. Each binds its own `SO_REUSEPORT`
    /// listener on the same address and runs its own epoll loop; the
    /// kernel spreads incoming connections across them. `0` means
    /// auto: the `TTHR_REACTORS` environment variable if set to a
    /// positive integer, else `1`. Clamped to 64.
    pub reactors: usize,
    /// The backpressure boundary: maximum requests dispatched to the
    /// worker pool and not yet answered (per reactor). When the window is
    /// full the reactor stops reading (TCP backpressure); see
    /// [`ServerConfig::shed_watermark`].
    pub queue_cap: usize,
    /// Maximum *parked* requests (parsed, waiting for a queue slot with
    /// their connections paused) before further requests are shed with
    /// `503` + `Retry-After` (per reactor).
    pub shed_watermark: usize,
    /// Maximum simultaneous connections (per reactor); beyond it,
    /// accepts are dropped.
    pub max_connections: usize,
    /// Request line + header size limit (`431` beyond it).
    pub max_head_bytes: usize,
    /// Request body size limit (`413` beyond it).
    pub max_body_bytes: usize,
    /// Maximum queries in one `/batch` request (`400` beyond it).
    pub max_batch_queries: usize,
    /// Connections making no progress for this long are closed — the
    /// slow-loris / non-reading-client guard. A connection is exempt
    /// only while the server itself owes it work it can still deliver (a
    /// response pending in a worker, or a request parked for a queue
    /// slot); an unread write backlog does **not** exempt it.
    pub idle_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight work to drain
    /// before closing whatever remains.
    pub drain_timeout: Duration,
    /// `Retry-After` seconds on `503` shed/refusal responses.
    pub retry_after_secs: u32,
    /// Test/bench instrumentation: sleep this long in the worker before
    /// handling each queued request (simulates a slow backend so the
    /// backpressure tests can fill the queue deterministically).
    pub worker_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            reactors: 0,
            queue_cap: 128,
            shed_watermark: 256,
            max_connections: 1024,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1 << 20,
            max_batch_queries: 1024,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            worker_delay: None,
        }
    }
}

/// A snapshot of the server-side counters (also shipped in `/stats` under
/// `"server"`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Complete requests parsed (all endpoints).
    pub requests: u64,
    /// 2xx responses.
    pub responses_ok: u64,
    /// `503` overload sheds (`Retry-After` attached).
    pub shed: u64,
    /// 4xx responses (malformed requests, unknown endpoints, bad bodies).
    pub client_errors: u64,
    /// 5xx responses (handler panics surface as `500`).
    pub server_errors: u64,
    /// Requests refused with `503` because a graceful shutdown was in
    /// progress.
    pub refused_shutdown: u64,
    /// High-water mark of simultaneously in-flight (dispatched) requests
    /// on any single reactor — never exceeds [`ServerConfig::queue_cap`].
    pub max_inflight: usize,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Connections reaped by the idle timeout (slow-loris / non-reading
    /// clients). Graceful closes — drained peers, shutdown drains — are
    /// not counted here.
    pub reaped_idle: u64,
}

/// A running server: one or more reactor threads plus their shared
/// state.
///
/// Dropping the handle shuts the server down gracefully (equivalent to
/// [`ServerHandle::shutdown`] with the result discarded).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    reactors: Vec<Arc<Shared>>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0; with
    /// multiple reactors every listener shares it via `SO_REUSEPORT`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server counters (aggregated across reactors).
    pub fn metrics(&self) -> ServerMetrics {
        self.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting, refuse new requests (`503` +
    /// `connection: close`), drain dispatched and parked requests, flush
    /// every owed response byte, then join every reactor. Returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerMetrics {
        self.initiate_shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.counters.snapshot()
    }

    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for reactor in &self.reactors {
            reactor.wake();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.initiate_shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Resolves [`ServerConfig::reactors`]: explicit wins, then the
/// `TTHR_REACTORS` environment variable, then one.
fn resolve_reactors(config: &ServerConfig) -> usize {
    let n = if config.reactors > 0 {
        config.reactors
    } else {
        std::env::var("TTHR_REACTORS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    };
    n.min(64)
}

/// Boots the HTTP front-end over a query service on `addr` (use port 0
/// for an ephemeral port; [`ServerHandle::local_addr`] reports the
/// binding). The service's **existing** worker pool executes the
/// requests; the reactors themselves never block on query work.
///
/// With [`ServerConfig::reactors`] `> 1`, that many accept/IO threads
/// start, each with its own `SO_REUSEPORT` listener on the same address
/// and its own epoll loop — the kernel spreads connections across them
/// and no accept lock or cross-reactor handoff exists anywhere.
pub fn serve<B: ServiceBackend>(
    service: QueryService<B>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let num_reactors = resolve_reactors(&config);
    let mut listeners = None;
    let mut last_err = None;
    for candidate in addr.to_socket_addrs()? {
        match sys::listener_group(candidate, num_reactors) {
            Ok(group) => {
                listeners = Some(group);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let listeners = listeners.ok_or_else(|| {
        last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })
    })?;
    let addr = listeners[0].local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());

    let num_edges = service.network().num_edges();
    let max_batch = config.max_batch_queries;
    let api_service = service.clone();
    let health_service = service.clone();
    let stats_service = service.clone();
    let metrics_service = service.clone();
    let slow_service = service.clone();
    let exec_service = service;
    let handlers = Handlers {
        api: Arc::new(move |op, body| handle_api(&api_service, num_edges, max_batch, op, body)),
        health: Arc::new(move || wire::encode_health(&health_service.ingest_status())),
        stats: Arc::new(move |server| {
            // One pass over the recorder stripes yields both the
            // summaries and the raw bucket exports.
            let (stats, histograms) = stats_service.stats_with_histograms();
            wire::encode_stats(&stats, &histograms, &server)
        }),
        metrics: Arc::new(move |server| {
            mirror_server_metrics(metrics_service.metrics_registry(), &server);
            metrics_service.render_metrics()
        }),
        slow: Arc::new(move || {
            wire::encode_slow(
                &slow_service.slow_queries(),
                &slow_service.sampled_queries(),
            )
        }),
        exec: Arc::new(move |job| exec_service.execute(job)),
    };

    let mut reactors = Vec::with_capacity(num_reactors);
    let mut threads = Vec::with_capacity(num_reactors);
    for (i, listener) in listeners.into_iter().enumerate() {
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            completions: Mutex::new(Vec::new()),
            wake_tx,
            inflight: AtomicUsize::new(0),
            shutdown: Arc::clone(&shutdown),
            counters: Arc::clone(&counters),
            wake_errors: AtomicU64::new(0),
        });
        let reactor = Reactor::new(
            listener,
            wake_rx,
            config.clone(),
            Arc::clone(&shared),
            handlers.clone(),
        )?;
        let thread = std::thread::Builder::new()
            .name(format!("tthr-reactor-{i}"))
            .spawn(move || {
                if let Err(e) = reactor.run() {
                    eprintln!("tthr-server reactor failed: {e}");
                }
            })?;
        reactors.push(shared);
        threads.push(thread);
    }
    Ok(ServerHandle {
        addr,
        shutdown,
        counters,
        reactors,
        threads,
    })
}

/// Mirrors the reactor's own counters into the service registry so one
/// `/metrics` scrape covers the whole stack. The reactor atomics stay
/// authoritative; the registry series are set (not incremented) from the
/// snapshot at scrape time, the same pattern the service uses for its
/// cache and shard counters.
fn mirror_server_metrics(registry: &tthr_metrics::MetricsRegistry, server: &ServerMetrics) {
    let counter = |name, help, value: u64| {
        registry.counter(name, help, &[]).set(value);
    };
    let gauge = |name, help, value: u64| {
        registry
            .gauge(name, help, &[])
            .set(i64::try_from(value).unwrap_or(i64::MAX));
    };
    counter(
        "tthr_server_connections_accepted_total",
        "TCP connections accepted by the reactor",
        server.accepted,
    );
    gauge(
        "tthr_server_connections_active",
        "TCP connections currently open",
        server.active_connections,
    );
    counter(
        "tthr_server_requests_total",
        "Complete HTTP requests parsed (all endpoints)",
        server.requests,
    );
    counter(
        "tthr_server_responses_ok_total",
        "2xx HTTP responses",
        server.responses_ok,
    );
    counter(
        "tthr_server_shed_total",
        "Requests shed with 503 past the backpressure watermark",
        server.shed,
    );
    counter(
        "tthr_server_client_errors_total",
        "4xx HTTP responses",
        server.client_errors,
    );
    counter(
        "tthr_server_server_errors_total",
        "5xx HTTP responses",
        server.server_errors,
    );
    counter(
        "tthr_server_refused_shutdown_total",
        "Requests refused with 503 during graceful shutdown",
        server.refused_shutdown,
    );
    gauge(
        "tthr_server_inflight_high_water",
        "High-water mark of simultaneously dispatched requests",
        server.max_inflight as u64,
    );
    counter(
        "tthr_server_bytes_read_total",
        "Request bytes read off sockets",
        server.bytes_in,
    );
    counter(
        "tthr_server_bytes_written_total",
        "Response bytes written to sockets",
        server.bytes_out,
    );
    counter(
        "tthr_server_connections_reaped_total",
        "Connections closed by the idle timeout",
        server.reaped_idle,
    );
}

/// Decodes, executes, and encodes one API request (worker side).
fn handle_api<B: ServiceBackend>(
    service: &QueryService<B>,
    num_edges: usize,
    max_batch: usize,
    op: Op,
    body: &[u8],
) -> ApiResponse {
    if op == Op::SpqFrame {
        return handle_spq_frame(service, num_edges, body);
    }
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return ApiResponse::json(400, wire::encode_error(&e.to_string())),
    };
    let (status, body) = match op {
        Op::SpqFrame => unreachable!("handled above"),
        Op::Spq => match wire::decode_spq(&parsed, num_edges) {
            Ok(q) => (
                200,
                wire::encode_travel_times(&service.get_travel_times(&q)),
            ),
            Err(e) => (400, wire::encode_error(&e)),
        },
        Op::Trip => match wire::decode_spq(&parsed, num_edges) {
            Ok(q) => (200, wire::encode_trip(&service.trip_query(&q))),
            Err(e) => (400, wire::encode_error(&e)),
        },
        Op::Batch => match wire::decode_batch(&parsed, num_edges, max_batch) {
            Ok(queries) => (
                200,
                wire::encode_trips(&service.batch_trip_queries(&queries)),
            ),
            Err(e) => (400, wire::encode_error(&e)),
        },
        Op::Append => match wire::decode_append(&parsed) {
            Ok((base, payload)) => match service.append_new(base, &payload) {
                Ok(appended) => (200, wire::encode_appended(appended)),
                Err(e @ StoreError::WalGap { .. }) => (409, wire::encode_error(&e.to_string())),
                Err(e @ StoreError::Corrupt { .. }) => (400, wire::encode_error(&e.to_string())),
                Err(e) => (500, wire::encode_error(&e.to_string())),
            },
            Err(e) => (400, wire::encode_error(&e)),
        },
    };
    ApiResponse::json(status, body)
}

/// The binary `/spq` fast path: the body is one `tthr-rpc`
/// `TravelTimes` frame, decoded without a JSON value tree; the answer
/// (success or typed error) is a frame too. Values are the bit-exact
/// f64 multiset the JSON path would have serialized.
fn handle_spq_frame<B: ServiceBackend>(
    service: &QueryService<B>,
    num_edges: usize,
    body: &[u8],
) -> ApiResponse {
    use tthr_rpc::{decode_frame, encode_frame, Decode, ErrCode, Message};
    let frame_error = |status: u16, reason: &str| {
        ApiResponse::frame(
            status,
            encode_frame(&Message::error(ErrCode::BadRequest, reason)),
        )
    };
    let message = match decode_frame(body) {
        Ok(Decode::Done { message, consumed }) if consumed == body.len() => message,
        Ok(Decode::Done { .. }) => return frame_error(400, "trailing bytes after frame"),
        Ok(Decode::Incomplete) => return frame_error(400, "truncated frame"),
        Err(e) => return frame_error(400, &e.to_string()),
    };
    let Message::TravelTimes(query) = message else {
        return frame_error(400, "expected a TravelTimes frame");
    };
    // Same admission rule as the JSON decoder: every edge id must name an
    // edge of the served network.
    if let Some(bad) = query
        .path
        .edges()
        .iter()
        .find(|e| e.0 as usize >= num_edges)
    {
        return frame_error(400, &format!("edge id {} out of range", bad.0));
    }
    let tt = service.get_travel_times(&query);
    ApiResponse::frame(
        200,
        encode_frame(&Message::TravelTimesResult {
            values: tt.values.into_vec(),
            fallback: tt.fallback,
        }),
    )
}

// The handle must be shareable across test/driver threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<ServerConfig>();
    assert_send_sync::<ServerMetrics>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Explicit config beats the environment, the environment beats the
    /// default of one, and both are clamped to 64.
    #[test]
    fn reactor_count_resolution_order() {
        let explicit = |n| ServerConfig {
            reactors: n,
            ..ServerConfig::default()
        };
        // This is the only test touching TTHR_REACTORS, so the process
        // env is safe to mutate here.
        std::env::remove_var("TTHR_REACTORS");
        assert_eq!(resolve_reactors(&explicit(0)), 1);
        assert_eq!(resolve_reactors(&explicit(3)), 3);
        assert_eq!(resolve_reactors(&explicit(1000)), 64);

        std::env::set_var("TTHR_REACTORS", " 5 ");
        assert_eq!(resolve_reactors(&explicit(0)), 5);
        assert_eq!(resolve_reactors(&explicit(2)), 2, "explicit wins");
        std::env::set_var("TTHR_REACTORS", "0");
        assert_eq!(resolve_reactors(&explicit(0)), 1, "zero is not a count");
        std::env::set_var("TTHR_REACTORS", "not a number");
        assert_eq!(resolve_reactors(&explicit(0)), 1);
        std::env::remove_var("TTHR_REACTORS");
    }
}
