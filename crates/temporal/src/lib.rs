//! Temporal index substrate: per-segment indexes keyed by traversal
//! timestamp.
//!
//! The SNT-index keeps one temporal index per road segment (`F = {Φe | e ∈
//! E}`, paper Section 4.1.2). Each leaf maps an entry timestamp to the
//! extended record `(isa, d, TT, a, seq, w)` of Section 4.1.3 — the ISA
//! value for spatial filtering, the trajectory id, the traversal time, the
//! running travel-time aggregate, the sequence number, and the temporal
//! partition id.
//!
//! Two interchangeable tree implementations are provided, both from scratch:
//!
//! * [`BPlusTree`] — a classic in-memory B+-tree multimap (the paper's
//!   baseline, cpp-btree style) supporting arbitrary-order inserts.
//! * [`CssTree`] — a cache-sensitive search tree (Rao & Ross, 1999): a
//!   pointerless directory over a sorted array, append-only, with
//!   logarithmic-time range *counting* used by the CSS-mode cardinality
//!   estimators (paper, Section 4.3.1).
//!
//! Both implement [`TemporalIndex`]; the SNT layer assembles them into
//! per-segment forests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bplus;
mod css;
mod entry;

pub use bplus::BPlusTree;
pub use css::CssTree;
pub use entry::LeafEntry;

use std::ops::ControlFlow;

/// Common interface of the temporal tree implementations.
pub trait TemporalIndex {
    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest timestamp in the index (`F[e]_min`, used by the time-frame
    /// selectivity formula 3).
    fn min_key(&self) -> Option<i64>;

    /// Largest timestamp in the index (`F[e]_max`).
    fn max_key(&self) -> Option<i64>;

    /// Visits entries with `lo ≤ t < hi` in ascending timestamp order until
    /// the callback breaks. Returns the callback's final flow state.
    fn scan_range(
        &self,
        lo: i64,
        hi: i64,
        f: &mut dyn FnMut(&LeafEntry) -> ControlFlow<()>,
    ) -> ControlFlow<()>;

    /// Number of entries with `lo ≤ t < hi`.
    ///
    /// The CSS-tree answers this in `O(log n)` via its directory — the
    /// property the CSS-mode cardinality estimators exploit; the B+-tree
    /// falls back to a counting scan.
    fn range_count(&self, lo: i64, hi: i64) -> usize;

    /// Approximate heap footprint in bytes (Figure 10a `Forest` accounting).
    fn size_bytes(&self) -> usize;

    /// Collects a range into a vector (convenience for tests and examples).
    fn collect_range(&self, lo: i64, hi: i64) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        let _ = self.scan_range(lo, hi, &mut |e| {
            out.push(*e);
            ControlFlow::Continue(())
        });
        out
    }
}
