//! Offline stand-in for the `rand` crate.
//!
//! The workspace forbids external registry dependencies, so this local shim
//! provides exactly the subset of the rand 0.8 API the `tthr-datagen` crate
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer and float ranges, and `Rng::gen_bool`. The generator is
//! SplitMix64 — statistically fine for synthetic-data generation and fully
//! deterministic, which is all the workspace requires. Streams differ from
//! the real `rand::rngs::StdRng`, so regenerated data sets are reproducible
//! against this shim, not against upstream rand.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core uniform-bit generator.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Conversion of raw bits into values and ranges (the `gen_*` subset).
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range values can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// `[0, 1)` from 53 uniform bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: the bias over spans ≪ 2⁶⁴ is negligible
                // for synthetic-data purposes.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64 (Steele, Lea & Flood 2014).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let equal = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(equal < 20, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(2.5f64..3.25);
            assert!((2.5..3.25).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
