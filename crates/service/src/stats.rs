//! Service-level observability: latency percentiles, throughput, cache
//! effectiveness.

use crate::cache::CacheCounters;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tthr_metrics::{mean, percentile_of_sorted};

/// Latency distribution summary over recorded queries, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded queries.
    pub count: usize,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Arithmetic mean latency.
    pub mean_ms: f64,
    /// Worst recorded latency.
    pub max_ms: f64,
}

/// A point-in-time snapshot of the service's behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ServiceStats {
    /// Single-SPQ requests served.
    pub spq_queries: u64,
    /// Trip queries served (each spans many SPQ dispatches).
    pub trip_queries: u64,
    /// Latency summary over all served requests.
    pub latency: LatencySummary,
    /// Requests per second since service start (or the last reset).
    pub throughput_qps: f64,
    /// Result-cache counters.
    pub cache: CacheCounters,
    /// Index generation: number of applied update batches.
    pub generation: u64,
    /// Time since service start (or the last reset).
    pub uptime: Duration,
}

/// Mutex-guarded latency log feeding [`ServiceStats`].
///
/// Stores every sample; at one `f64` per request this stays small for the
/// workloads this crate targets (an aggregating HDR-style histogram is a
/// ROADMAP follow-on for long-lived deployments).
pub(crate) struct LatencyLog {
    inner: Mutex<LogInner>,
}

struct LogInner {
    samples_ms: Vec<f64>,
    started: Instant,
}

impl LatencyLog {
    pub(crate) fn new() -> Self {
        LatencyLog {
            inner: Mutex::new(LogInner {
                samples_ms: Vec::new(),
                started: Instant::now(),
            }),
        }
    }

    pub(crate) fn record(&self, elapsed: Duration) {
        self.inner
            .lock()
            .expect("latency log")
            .samples_ms
            .push(elapsed.as_secs_f64() * 1e3);
    }

    /// Latency summary, throughput, and uptime.
    pub(crate) fn summarize(&self) -> (LatencySummary, f64, Duration) {
        let inner = self.inner.lock().expect("latency log");
        let uptime = inner.started.elapsed();
        let mut sorted = inner.samples_ms.clone();
        drop(inner);
        sorted.sort_by(f64::total_cmp);
        let summary = LatencySummary {
            count: sorted.len(),
            p50_ms: percentile_of_sorted(&sorted, 50.0),
            p95_ms: percentile_of_sorted(&sorted, 95.0),
            p99_ms: percentile_of_sorted(&sorted, 99.0),
            mean_ms: mean(sorted.iter().copied()),
            max_ms: sorted.last().copied().unwrap_or(0.0),
        };
        let qps = if uptime.as_secs_f64() > 0.0 {
            summary.count as f64 / uptime.as_secs_f64()
        } else {
            0.0
        };
        (summary, qps, uptime)
    }

    /// Forgets all samples and restarts the throughput clock.
    pub(crate) fn reset(&self) {
        let mut inner = self.inner.lock().expect("latency log");
        inner.samples_ms.clear();
        inner.started = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles() {
        let log = LatencyLog::new();
        for i in 1..=100 {
            log.record(Duration::from_millis(i));
        }
        let (summary, qps, uptime) = log.summarize();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_ms, 50.0);
        assert_eq!(summary.p95_ms, 95.0);
        assert_eq!(summary.p99_ms, 99.0);
        assert_eq!(summary.max_ms, 100.0);
        assert!((summary.mean_ms - 50.5).abs() < 1e-9);
        assert!(qps > 0.0);
        assert!(uptime > Duration::ZERO);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let (summary, qps, _) = LatencyLog::new().summarize();
        assert_eq!(summary, LatencySummary::default());
        assert_eq!(qps, 0.0);
    }

    #[test]
    fn reset_clears_samples() {
        let log = LatencyLog::new();
        log.record(Duration::from_millis(5));
        log.reset();
        assert_eq!(log.summarize().0.count, 0);
    }
}
