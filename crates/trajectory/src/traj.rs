//! The trajectory model: traversal sequences and the `Dur` function.

use crate::types::{TrajId, UserId};
use std::fmt;
use tthr_network::{EdgeId, Path, Timestamp};
use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};

/// One segment traversal `(e, t, TT)`: the segment, the timestamp it was
/// entered, and the traversal duration in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajEntry {
    /// The traversed segment.
    pub edge: EdgeId,
    /// Entry timestamp (seconds since data set epoch).
    pub enter_time: Timestamp,
    /// Time spent on the segment, in seconds (`TT > 0`).
    pub travel_time: f64,
}

impl TrajEntry {
    /// Creates an entry.
    pub fn new(edge: EdgeId, enter_time: Timestamp, travel_time: f64) -> Self {
        TrajEntry {
            edge,
            enter_time,
            travel_time,
        }
    }
}

/// Wire form: edge (`u32`), entry timestamp (`i64`), traversal time
/// (`f64`) — the `(e, t, TT)` triple, 20 bytes. Restore performs no
/// validation; batches are validated as whole trajectories by
/// [`Trajectory::new`] when a WAL record is applied.
impl Persist for TrajEntry {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u32(self.edge.0);
        w.put_i64(self.enter_time);
        w.put_f64(self.travel_time);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(TrajEntry {
            edge: EdgeId(r.get_u32()?),
            enter_time: r.get_i64()?,
            travel_time: r.get_f64()?,
        })
    }
}

/// Error produced when constructing an invalid trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// Trajectories must traverse at least one segment.
    Empty,
    /// Entry timestamps must be strictly increasing (`i < j ⇒ tᵢ < tⱼ`).
    NonMonotonicTimestamps {
        /// Index of the offending entry.
        at: usize,
    },
    /// Traversal durations must be positive and finite (`TTᵢ > 0`).
    NonPositiveTravelTime {
        /// Index of the offending entry.
        at: usize,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::Empty => write!(f, "a trajectory must traverse at least one segment"),
            TrajectoryError::NonMonotonicTimestamps { at } => {
                write!(
                    f,
                    "entry timestamps must be strictly increasing (entry {at})"
                )
            }
            TrajectoryError::NonPositiveTravelTime { at } => {
                write!(
                    f,
                    "traversal durations must be positive and finite (entry {at})"
                )
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A network-constrained trajectory `tr = (d, u, s)` (paper, Section 2.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Trajectory {
    id: TrajId,
    user: UserId,
    entries: Vec<TrajEntry>,
}

impl Trajectory {
    /// Creates a trajectory, validating the paper's sequence invariants:
    /// non-empty, strictly increasing entry timestamps, positive finite
    /// durations.
    pub fn new(id: TrajId, user: UserId, entries: Vec<TrajEntry>) -> Result<Self, TrajectoryError> {
        if entries.is_empty() {
            return Err(TrajectoryError::Empty);
        }
        for (i, e) in entries.iter().enumerate() {
            // NaN slips through a plain `<= 0.0` check; reject all
            // non-finite durations here, before they can reach the index's
            // aggregates and histograms.
            if !e.travel_time.is_finite() || e.travel_time <= 0.0 {
                return Err(TrajectoryError::NonPositiveTravelTime { at: i });
            }
            if i > 0 && entries[i - 1].enter_time >= e.enter_time {
                return Err(TrajectoryError::NonMonotonicTimestamps { at: i });
            }
        }
        Ok(Trajectory { id, user, entries })
    }

    /// The trajectory id `d`.
    #[inline]
    pub fn id(&self) -> TrajId {
        self.id
    }

    /// The user id `u`.
    #[inline]
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The traversal sequence `s`.
    #[inline]
    pub fn entries(&self) -> &[TrajEntry] {
        &self.entries
    }

    /// Number of segments traversed, `l`.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`; trajectories are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Starting time `tr.t₀`.
    #[inline]
    pub fn start_time(&self) -> Timestamp {
        self.entries[0].enter_time
    }

    /// The path `P_tr` of the trajectory.
    pub fn path(&self) -> Path {
        Path::new(self.entries.iter().map(|e| e.edge).collect())
    }

    /// The edge sequence without allocating a [`Path`].
    pub fn edge_at(&self, i: usize) -> EdgeId {
        self.entries[i].edge
    }

    /// Total duration of the whole trajectory: `Σ TTᵢ`.
    pub fn total_duration(&self) -> f64 {
        self.entries.iter().map(|e| e.travel_time).sum()
    }

    /// The paper's duration function `Dur(tr, P)`: the sum of traversal times
    /// over the **first** occurrence of `P` as a contiguous sub-path of
    /// `P_tr`, or `None` when `P_tr` does not contain `P` (the paper leaves
    /// `Dur` undefined in that case).
    pub fn duration_over(&self, path: &Path) -> Option<f64> {
        self.occurrences_of(path).next().map(|i| {
            self.entries[i..i + path.len()]
                .iter()
                .map(|e| e.travel_time)
                .sum()
        })
    }

    /// Entry timestamp into the first occurrence of `P`, if any: the time the
    /// trajectory entered `P`'s first segment. This is the timestamp the SPQ
    /// temporal predicate is evaluated against.
    pub fn enter_time_of(&self, path: &Path) -> Option<Timestamp> {
        self.occurrences_of(path)
            .next()
            .map(|i| self.entries[i].enter_time)
    }

    /// Iterator over the starting indices of **all** occurrences of `P` as a
    /// contiguous sub-path (a trajectory with a circular path can traverse
    /// `P` more than once — the reason the SNT-index keys its probe table by
    /// `(d, seq)` rather than `d` alone).
    pub fn occurrences_of<'a>(&'a self, path: &'a Path) -> impl Iterator<Item = usize> + 'a {
        let needle = path.edges();
        self.entries
            .windows(needle.len())
            .enumerate()
            .filter(move |(_, w)| w.iter().map(|e| e.edge).eq(needle.iter().copied()))
            .map(|(i, _)| i)
    }

    /// Whether the trajectory strictly traverses `P` (no detours inside `P`).
    pub fn traverses(&self, path: &Path) -> bool {
        self.occurrences_of(path).next().is_some()
    }

    /// Prefix sums of traversal times: `a_seq = Σ_{i ≤ seq} TTᵢ`, the
    /// aggregate the extended SNT-index stores in every temporal leaf
    /// (paper, Section 4.1.3).
    pub fn aggregate_times(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.entries
            .iter()
            .map(|e| {
                acc += e.travel_time;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(edge: u32, t: Timestamp, tt: f64) -> TrajEntry {
        TrajEntry::new(EdgeId(edge), t, tt)
    }

    /// tr1 from the paper: (1, u2) → ⟨(A,2,4), (C,6,2), (D,8,4), (E,12,5)⟩
    /// with A=0, C=2, D=3, E=4.
    fn tr1() -> Trajectory {
        Trajectory::new(
            TrajId(1),
            UserId(2),
            vec![
                entry(0, 2, 4.0),
                entry(2, 6, 2.0),
                entry(3, 8, 4.0),
                entry(4, 12, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn invariants_are_enforced() {
        assert_eq!(
            Trajectory::new(TrajId(0), UserId(0), vec![]),
            Err(TrajectoryError::Empty)
        );
        assert_eq!(
            Trajectory::new(
                TrajId(0),
                UserId(0),
                vec![entry(0, 5, 1.0), entry(1, 5, 1.0)]
            ),
            Err(TrajectoryError::NonMonotonicTimestamps { at: 1 })
        );
        assert_eq!(
            Trajectory::new(TrajId(0), UserId(0), vec![entry(0, 5, 0.0)]),
            Err(TrajectoryError::NonPositiveTravelTime { at: 0 })
        );
        // Non-finite durations are corrupt input, not "large" ones.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                Trajectory::new(TrajId(0), UserId(0), vec![entry(0, 5, bad)]),
                Err(TrajectoryError::NonPositiveTravelTime { at: 0 }),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn duration_matches_paper_example() {
        // Dur(tr1, ⟨A,C,D,E⟩) = 4+2+4+5 = 15.
        let tr = tr1();
        let full = Path::new(vec![EdgeId(0), EdgeId(2), EdgeId(3), EdgeId(4)]);
        assert_eq!(tr.duration_over(&full), Some(15.0));
        // Dur over sub-path ⟨C,D⟩ = 2+4 = 6.
        let cd = Path::new(vec![EdgeId(2), EdgeId(3)]);
        assert_eq!(tr.duration_over(&cd), Some(6.0));
        // ⟨A,B⟩ is not contained: undefined.
        let ab = Path::new(vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(tr.duration_over(&ab), None);
    }

    #[test]
    fn enter_time_of_sub_path() {
        let tr = tr1();
        let cd = Path::new(vec![EdgeId(2), EdgeId(3)]);
        assert_eq!(tr.enter_time_of(&cd), Some(6));
        assert_eq!(tr.start_time(), 2);
    }

    #[test]
    fn circular_paths_yield_multiple_occurrences() {
        // A trajectory looping over edges 0→1→0→1.
        let tr = Trajectory::new(
            TrajId(9),
            UserId(0),
            vec![
                entry(0, 0, 1.0),
                entry(1, 1, 2.0),
                entry(0, 3, 3.0),
                entry(1, 6, 4.0),
            ],
        )
        .unwrap();
        let p = Path::new(vec![EdgeId(0), EdgeId(1)]);
        let occ: Vec<_> = tr.occurrences_of(&p).collect();
        assert_eq!(occ, vec![0, 2]);
        // Dur uses the first occurrence.
        assert_eq!(tr.duration_over(&p), Some(3.0));
    }

    #[test]
    fn aggregates_are_prefix_sums() {
        let tr = tr1();
        assert_eq!(tr.aggregate_times(), vec![4.0, 6.0, 10.0, 15.0]);
        assert_eq!(tr.total_duration(), 15.0);
    }

    #[test]
    fn path_roundtrip() {
        let tr = tr1();
        assert_eq!(
            tr.path().edges(),
            &[EdgeId(0), EdgeId(2), EdgeId(3), EdgeId(4)]
        );
        assert!(tr.traverses(&Path::new(vec![EdgeId(3), EdgeId(4)])));
        assert!(!tr.traverses(&Path::new(vec![EdgeId(4), EdgeId(3)])));
    }
}
