//! Ablation bench: CSS-tree vs B+-tree on the temporal-index operations the
//! SPQ engine performs — bounded range scans (buildMap/probeMap) and range
//! counts (the CSS-mode estimators' primitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use tthr_temporal::{BPlusTree, CssTree, LeafEntry, TemporalIndex};

fn entries(n: usize) -> Vec<LeafEntry> {
    (0..n)
        .map(|i| LeafEntry {
            time: (i as i64) * 13 % (n as i64 * 10),
            aggregate: i as f64,
            travel_time: 1.0,
            isa: i as u32,
            traj: i as u32,
            seq: 0,
            partition: 0,
        })
        .collect()
}

fn bench_trees(c: &mut Criterion) {
    let n = 100_000;
    let mut sorted = entries(n);
    sorted.sort_by_key(|e| e.time);
    let css = CssTree::from_sorted(sorted.clone());
    let bt = BPlusTree::from_sorted(sorted);
    let span = n as i64 * 10;

    let mut scan = c.benchmark_group("range_scan_100s_window");
    let scan_range = |tree: &dyn TemporalIndex, i: usize| {
        let lo = (i as i64 * 7919) % span;
        let mut acc = 0u64;
        let _ = tree.scan_range(lo, lo + 100, &mut |e| {
            acc += e.traj as u64;
            ControlFlow::Continue(())
        });
        acc
    };
    scan.bench_function(BenchmarkId::from_parameter("css"), |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            std::hint::black_box(scan_range(&css, i))
        })
    });
    scan.bench_function(BenchmarkId::from_parameter("bplus"), |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            std::hint::black_box(scan_range(&bt, i))
        })
    });
    scan.finish();

    let mut count = c.benchmark_group("range_count");
    count.bench_function(BenchmarkId::from_parameter("css_directory"), |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            let lo = (i as i64 * 7919) % span;
            std::hint::black_box(css.range_count(lo, lo + 5000))
        })
    });
    count.bench_function(BenchmarkId::from_parameter("bplus_scan"), |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            let lo = (i as i64 * 7919) % span;
            std::hint::black_box(bt.range_count(lo, lo + 5000))
        })
    });
    count.finish();
}

criterion_group!(benches, bench_trees);
criterion_main!(benches);
