//! A minimal JSON value: parse, navigate, serialize.
//!
//! The workspace forbids registry crates, so the wire layer carries its
//! own codec. Two properties matter for the protocol and are pinned by
//! tests:
//!
//! * **Integer fidelity** — whole numbers parse into `i64` (not through
//!   `f64`), because timestamps legitimately exceed 2⁵³ (the differential
//!   workload uses `i64::MAX / 4` interval bounds). Floats round-trip via
//!   Rust's shortest-representation formatting.
//! * **Bounded recursion** — nesting is capped ([`MAX_DEPTH`]), so a
//!   `[[[[…` bomb from the network is a parse error, not a stack
//!   overflow.
//!
//! Object keys keep their insertion order; serialization is therefore
//! deterministic, which the byte-identical server-equivalence harness
//! relies on.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is a whole integer in `i64` range.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value (compact, deterministic).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                // Rust's Display for f64 is shortest-round-trip and never
                // scientific; non-finite values cannot occur in results
                // (histogram construction drops them) — encode defensively
                // as null rather than emit invalid JSON.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    debug_assert!(false, "non-finite number in wire value");
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience constructor for a float that collapses integral values
    /// to [`Json::Int`] when lossless (keeps the encoding canonical).
    pub fn num(v: f64) -> Json {
        if v.is_finite() && v == v.trunc() && v.abs() < (1u64 << 53) as f64 {
            Json::Int(v as i64)
        } else {
            Json::Num(v)
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.reason)
    }
}

/// Parses a complete JSON document (trailing non-whitespace is an error).
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
        at: e.valid_up_to(),
        reason: "invalid utf-8",
    })?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The slice boundaries fall on char boundaries: multi-byte
                // UTF-8 units are all ≥ 0x80 and skipped whole above.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf-8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // Surrogate pair: require the low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let doc = br#"{"a":[1,2.5,-3,true,false,null],"s":"x\"\\\n\u00e9\ud83d\ude00","big":2305843009213693951}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("big").unwrap().as_i64(), Some(i64::MAX / 4));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"\\\né😀"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_i64(), Some(-3));
        // Re-encode → re-parse is identity.
        let re = parse(v.encode().as_bytes()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn integers_beyond_f64_precision_survive() {
        let v = parse(b"9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_i64(), Some(9007199254740993));
        assert_eq!(parse(v.encode().as_bytes()).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.5, 1e-12, 123456.789012345] {
            let encoded = Json::Num(f).encode();
            let back = parse(encoded.as_bytes()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {encoded}");
        }
        // Integral floats collapse to canonical integers via `num`.
        assert_eq!(Json::num(3.0), Json::Int(3));
        assert_eq!(Json::num(3.5), Json::Num(3.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            &b""[..],
            b"{",
            b"}",
            b"[1,]",
            b"{\"a\":}",
            b"{\"a\" 1}",
            b"01",
            b"1.",
            b"+1",
            b"--1",
            b"\"unterminated",
            b"\"bad \\q escape\"",
            b"\"\\ud800\"",
            b"tru",
            b"nulll",
            b"1 2",
            b"\xff\xfe",
        ] {
            assert!(parse(doc).is_err(), "{:?} must not parse", doc);
        }
    }

    #[test]
    fn nesting_bomb_is_an_error_not_a_stack_overflow() {
        let mut bomb = Vec::new();
        bomb.extend(std::iter::repeat_n(b'[', 100_000));
        assert_eq!(parse(&bomb).unwrap_err().reason, "nesting too deep");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse(br#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.encode(), r#"{"z":1,"a":2}"#);
    }
}
