//! CRC-32 (ISO-HDLC / zlib / PNG variant, polynomial `0xEDB88320`),
//! computed with the slicing-by-8 method.
//!
//! Every snapshot load checksums the whole file before any section is
//! parsed, so this sits on the restart critical path: the byte-at-a-time
//! loop manages a few hundred MB/s, slicing-by-8 several GB/s — worth
//! the 8 KiB of compile-time tables.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Slicing tables: `TABLES[0]` is the classic byte-indexed table,
/// `TABLES[k][b]` extends it to bytes `k` positions deeper in the window.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 of a byte slice (init `0xFFFFFFFF`, reflected, final XOR
/// `0xFFFFFFFF` — identical to zlib's `crc32` and PNG chunk checksums).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().expect("4 bytes"));
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"snapshot payload");
        let mut flipped = b"snapshot payload".to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(base, crc32(&flipped));
    }

    #[test]
    fn sliced_path_matches_bytewise_reference_at_every_alignment() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = u32::MAX;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
