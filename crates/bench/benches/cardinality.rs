//! Criterion bench behind Figure 11: cost of one cardinality estimate per
//! mode (the price paid to skip a temporal index scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tthr_bench::{Scale, World};
use tthr_core::{estimate_cardinality, CardinalityMode, SntConfig, Spq, TimeInterval};

fn bench_estimator(c: &mut Criterion) {
    let world = World::generate(Scale::Small);
    let index = world.build_index(SntConfig::default());
    let queries: Vec<Spq> = world
        .queries
        .iter()
        .take(64)
        .map(|&id| {
            let tr = world.set.get(id);
            Spq::new(
                tr.path(),
                TimeInterval::periodic_around(tr.start_time(), 1800),
            )
        })
        .collect();

    let mut group = c.benchmark_group("cardinality_estimate");
    for mode in CardinalityMode::ALL {
        group.bench_function(BenchmarkId::from_parameter(mode.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(estimate_cardinality(&index, q, mode))
            })
        });
    }
    // Reference point: the exact answer via a counting scan.
    group.bench_function(BenchmarkId::from_parameter("exact-scan"), |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(index.count_matching(q, u32::MAX))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
