//! Ablation bench: Huffman-shaped wavelet tree vs balanced wavelet matrix.
//!
//! The paper uses sdsl-lite's Huffman-shaped tree; trajectory strings are
//! highly skewed (arterial segments dominate), so the Huffman shape should
//! win on rank cost for frequent symbols — this bench quantifies by how
//! much, plus the memory difference, on a real trajectory string.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tthr_bench::{Scale, World};
use tthr_core::text::build_text;
use tthr_fmindex::{HuffmanWaveletTree, SymbolRank, WaveletMatrix};

fn bench_wavelet_rank(c: &mut Criterion) {
    let world = World::generate(Scale::Small);
    let (text, _) = build_text(world.set.iter());
    let sigma = world.network().num_edges() as u32 + 1;

    let huff = HuffmanWaveletTree::new(&text, sigma);
    let matrix = WaveletMatrix::new(&text, sigma);
    eprintln!(
        "[wavelet] text = {} symbols, Huffman = {} KiB, Matrix = {} KiB",
        text.len(),
        huff.size_bytes() / 1024,
        matrix.size_bytes() / 1024
    );

    // Rank probes over symbols weighted as queries see them: symbols that
    // occur in the text (frequent arterials dominate trajectory strings).
    let probes: Vec<(u32, usize)> = (0..512)
        .map(|i| (text[(i * 37) % text.len()], (i * 7919) % text.len()))
        .collect();

    let mut group = c.benchmark_group("wavelet_rank");
    group.bench_function(BenchmarkId::from_parameter("huffman"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, pos) = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(huff.rank(sym, pos))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("matrix"), |b| {
        let mut i = 0;
        b.iter(|| {
            let (sym, pos) = probes[i % probes.len()];
            i += 1;
            std::hint::black_box(matrix.rank(sym, pos))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wavelet_rank);
criterion_main!(benches);
