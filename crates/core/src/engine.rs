//! The trip-query engine: Procedure 6 with cardinality-estimator gating.
//!
//! A trip query is partitioned (π), each sub-query is adapted with
//! shift-and-enlarge, optionally pre-checked by the cardinality estimator,
//! dispatched to the SNT-index, and relaxed with σ until it produces travel
//! times. The per-sub-path histograms are normalized and convolved into the
//! travel-time distribution of the whole trip.

use crate::cardinality::{estimate_cardinality, CardinalityMode};
use crate::interval::TimeInterval;
use crate::partition::{partition_query, PartitionMethod};
use crate::snt::{SearchScratch, SntIndex, TravelTimes};
use crate::split::{SplitMethod, Splitter};
use crate::spq::Spq;
use crate::trace::QueryTrace;
use std::collections::VecDeque;
use tthr_histogram::Histogram;
use tthr_network::{Path, RoadNetwork};

/// A source of SPQ travel times.
///
/// The engine dispatches every `getTravelTimes` call through this trait, so
/// the raw [`SntIndex`] can be wrapped — e.g. by the result cache of
/// `tthr-service` — without the engine knowing. Implementations must answer
/// exactly like [`SntIndex::get_travel_times`] on the same index state;
/// the engine's relaxation logic relies on emptiness meaning "relax more".
pub trait TravelTimeProvider {
    /// Travel times matching the SPQ (`getTravelTimes`, Procedure 5).
    fn travel_times(&self, spq: &Spq) -> TravelTimes;

    /// [`TravelTimeProvider::travel_times`] with a caller-owned
    /// [`SearchScratch`] — the engine passes one scratch down a whole
    /// relaxation chain so sub-path searches reuse the parent path's
    /// backward-search states. Implementations that can exploit the
    /// scratch (the indexes) override this; the default ignores it.
    /// Results must be byte-identical to
    /// [`TravelTimeProvider::travel_times`].
    fn travel_times_with(&self, spq: &Spq, scratch: &mut SearchScratch) -> TravelTimes {
        let _ = scratch;
        self.travel_times(spq)
    }
}

impl TravelTimeProvider for SntIndex {
    fn travel_times(&self, spq: &Spq) -> TravelTimes {
        self.get_travel_times(spq)
    }

    fn travel_times_with(&self, spq: &Spq, scratch: &mut SearchScratch) -> TravelTimes {
        self.get_travel_times_with(spq, scratch)
    }
}

/// The full query-side surface the engine needs from an index.
///
/// [`TravelTimeProvider`] covers the `getTravelTimes` dispatches; the
/// engine additionally consults the index for σ_L's counting queries, the
/// cardinality-estimator gate, and σ's terminal `[0, t_max)` fallback
/// interval. Abstracting those four operations lets the engine run
/// unchanged over the monolithic [`SntIndex`] or the partitioned
/// [`ShardedSntIndex`](crate::ShardedSntIndex) — implementations must
/// answer every operation exactly like a monolithic index over the same
/// trajectory history, which is what the sharded differential test
/// harness (`tests/sharded_equivalence.rs`) pins down.
pub trait IndexBackend: TravelTimeProvider {
    /// Exact count of traversals matching all SPQ predicates, capped at
    /// `cap` (σ_L's `|T^{P₁}| ≥ β` test).
    fn count_matching(&self, spq: &Spq, cap: u32) -> usize;

    /// [`IndexBackend::count_matching`] with a caller-owned
    /// [`SearchScratch`] (σ_L's binary search issues a burst of counting
    /// queries over prefixes of one path — the scratch keeps their pattern
    /// and range buffers allocation-free). Must count identically to
    /// [`IndexBackend::count_matching`].
    fn count_matching_with(&self, spq: &Spq, cap: u32, scratch: &mut SearchScratch) -> usize {
        let _ = scratch;
        self.count_matching(spq, cap)
    }

    /// The estimated cardinality `β̂` of the SPQ's result set
    /// (Section 4.4) used by the engine's estimator gate.
    fn estimate(&self, spq: &Spq, mode: CardinalityMode) -> f64;

    /// The fixed-interval fallback `[0, t_max)` of Procedure 1, line 12.
    fn full_interval(&self) -> TimeInterval;
}

impl IndexBackend for SntIndex {
    fn count_matching(&self, spq: &Spq, cap: u32) -> usize {
        SntIndex::count_matching(self, spq, cap)
    }

    fn count_matching_with(&self, spq: &Spq, cap: u32, scratch: &mut SearchScratch) -> usize {
        SntIndex::count_matching_with(self, spq, cap, scratch)
    }

    fn estimate(&self, spq: &Spq, mode: CardinalityMode) -> f64 {
        estimate_cardinality(self, spq, mode)
    }

    fn full_interval(&self) -> TimeInterval {
        SntIndex::full_interval(self)
    }
}

/// Per-sub-query cardinality requirements.
///
/// The paper's evaluation uses one β for every sub-query; its outlook
/// (Section 7) suggests varying β per sub-query, "e.g., smaller sample
/// size requirements in rural zones" — rural traffic is more homogeneous,
/// so fewer samples suffice and fewer relaxations are triggered.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BetaPolicy {
    /// The paper's evaluated setting: every sub-query inherits the trip
    /// query's β.
    Uniform,
    /// Sub-queries whose paths lie mostly outside city zones require only
    /// `ceil(β · rural_factor)` trajectories (clamped to ≥ 1).
    ZoneScaled {
        /// Multiplier applied to β on rural/summer-house sub-paths,
        /// in `(0, 1]`.
        rural_factor: f64,
    },
}

/// Engine configuration: strategy choices and histogram resolution.
#[derive(Clone, Debug)]
pub struct QueryEngineConfig {
    /// Initial partitioning strategy π.
    pub partition_method: PartitionMethod,
    /// Path-splitting strategy σ.
    pub split_method: SplitMethod,
    /// The interval-size list `A` in seconds (ascending; the paper uses
    /// 15, 30, 45, 60, 90, 120 minutes).
    pub interval_sizes: Vec<i64>,
    /// Histogram bucket width `h` in seconds (the paper's quality metric
    /// uses 10 s).
    pub bucket_width: f64,
    /// Cardinality estimator gating, if any.
    pub estimator: Option<CardinalityMode>,
    /// Apply the shift-and-enlarge window adaptation of Dai et al.
    /// (Procedure 6, line 4).
    pub shift_and_enlarge: bool,
    /// Per-sub-query β adaptation (Section 7 extension).
    pub beta_policy: BetaPolicy,
}

impl Default for QueryEngineConfig {
    fn default() -> Self {
        QueryEngineConfig {
            partition_method: PartitionMethod::Zone,
            split_method: SplitMethod::Regular,
            interval_sizes: vec![900, 1800, 2700, 3600, 5400, 7200],
            bucket_width: 10.0,
            estimator: None,
            shift_and_enlarge: true,
            beta_policy: BetaPolicy::Uniform,
        }
    }
}

/// The result of one completed (possibly relaxed) sub-query.
#[derive(Clone, Debug)]
pub struct SubResult {
    /// The final sub-path answered.
    pub path: Path,
    /// Retrieved travel times.
    pub values: Vec<f64>,
    /// Mean travel time `X̄ⱼ`.
    pub mean: f64,
    /// The sub-path histogram `Hⱼ` (unnormalized).
    pub histogram: Histogram,
    /// Whether the values are the speed-limit fallback estimate.
    pub fallback: bool,
}

/// Counters describing how a trip query was processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Sub-queries produced by the initial partitioning.
    pub initial_subqueries: usize,
    /// Completed sub-queries (the `k` of the final convolution).
    pub final_subqueries: usize,
    /// Interval widenings performed by σ.
    pub widenings: usize,
    /// Path splits performed by σ.
    pub path_splits: usize,
    /// Non-temporal filters dropped by σ.
    pub filter_drops: usize,
    /// Full `[0, t_max)` fallbacks taken by σ.
    pub full_fallbacks: usize,
    /// Sub-queries rejected by the cardinality estimator without an index
    /// scan.
    pub estimator_rejections: usize,
    /// `getTravelTimes` dispatches (temporal index scans).
    pub index_queries: usize,
    /// Speed-limit estimates in the final result.
    pub estimate_fallbacks: usize,
}

impl QueryStats {
    /// Accumulates another stats record (all counters are additive; the
    /// partition-level counters `initial_subqueries` / `final_subqueries`
    /// are summed too, so merge per-chain records into a zeroed total and
    /// set those two afterwards).
    pub fn merge(&mut self, other: &QueryStats) {
        self.initial_subqueries += other.initial_subqueries;
        self.final_subqueries += other.final_subqueries;
        self.widenings += other.widenings;
        self.path_splits += other.path_splits;
        self.filter_drops += other.filter_drops;
        self.full_fallbacks += other.full_fallbacks;
        self.estimator_rejections += other.estimator_rejections;
        self.index_queries += other.index_queries;
        self.estimate_fallbacks += other.estimate_fallbacks;
    }
}

/// The completed relaxation chain of one initial sub-query: everything the
/// engine derived from it — in path order — plus the processing counters.
///
/// Produced by [`QueryEngine::run_chain_via`]; [`QueryEngine::assemble`]
/// folds the chains of a trip back into a [`TripQuery`].
#[derive(Clone, Debug)]
pub struct ChainOutcome {
    /// Completed sub-results covering the initial sub-query's path.
    pub subs: Vec<SubResult>,
    /// Counters for this chain only.
    pub stats: QueryStats,
    /// Cost attribution for this chain only (observational — see
    /// [`QueryTrace`]; deliberately outside the backend-compared
    /// [`QueryStats`]).
    pub trace: QueryTrace,
}

/// The answer to a trip query.
#[derive(Clone, Debug)]
pub struct TripQuery {
    /// Travel-time distribution of the whole path: the normalized
    /// convolution `H = H₁ ∗ … ∗ H_k`.
    pub histogram: Option<Histogram>,
    /// Per-sub-query results, in path order.
    pub subs: Vec<SubResult>,
    /// Processing counters.
    pub stats: QueryStats,
    /// Cost attribution across all chains (observational — see
    /// [`QueryTrace`]).
    pub trace: QueryTrace,
}

impl TripQuery {
    /// The point estimate for the trip: the sum of sub-query means `Σ X̄ⱼ`.
    pub fn predicted_duration(&self) -> f64 {
        self.subs.iter().map(|s| s.mean).sum()
    }

    /// Average number of segments per final sub-query (Figure 7).
    pub fn avg_sub_path_len(&self) -> f64 {
        if self.subs.is_empty() {
            return 0.0;
        }
        self.subs.iter().map(|s| s.path.len()).sum::<usize>() as f64 / self.subs.len() as f64
    }
}

/// The trip-query engine: an index backend plus strategy configuration.
///
/// `B` defaults to the monolithic [`SntIndex`]; the partitioned
/// [`ShardedSntIndex`](crate::ShardedSntIndex) (or any other
/// [`IndexBackend`]) slots in without changing query semantics.
pub struct QueryEngine<'a, B: IndexBackend = SntIndex> {
    index: &'a B,
    network: &'a RoadNetwork,
    splitter: Splitter,
    config: QueryEngineConfig,
}

impl<'a, B: IndexBackend> QueryEngine<'a, B> {
    /// Creates an engine over an index.
    pub fn new(index: &'a B, network: &'a RoadNetwork, config: QueryEngineConfig) -> Self {
        let splitter = Splitter::new(config.split_method, config.interval_sizes.clone());
        QueryEngine {
            index,
            network,
            splitter,
            config,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &QueryEngineConfig {
        &self.config
    }

    /// The underlying index backend.
    pub fn index(&self) -> &B {
        self.index
    }

    /// Applies the β policy to a sub-query whose path was just (re)derived.
    fn apply_beta_policy(&self, sub: &mut Spq) {
        let BetaPolicy::ZoneScaled { rural_factor } = self.config.beta_policy else {
            return;
        };
        let Some(beta) = sub.beta else { return };
        let rural_len: f64 = sub
            .path
            .edges()
            .iter()
            .filter(|&&e| self.network.attrs(e).zone != tthr_network::Zone::City)
            .map(|&e| self.network.attrs(e).length_m)
            .sum();
        let total_len: f64 = self.network.path_length_m(&sub.path);
        if rural_len * 2.0 > total_len {
            let scaled = ((beta as f64) * rural_factor).ceil().max(1.0) as u32;
            sub.beta = Some(scaled.min(beta));
        }
    }

    /// Executes a trip query (Procedure 6, `tripQuery`).
    pub fn trip_query(&self, query: &Spq) -> TripQuery {
        self.trip_query_via(self.index, query)
    }

    /// [`trip_query`](Self::trip_query) with travel times answered by an
    /// arbitrary [`TravelTimeProvider`] (e.g. a result cache over the same
    /// index). Identical control flow and results.
    pub fn trip_query_via<P: TravelTimeProvider + ?Sized>(
        &self,
        provider: &P,
        query: &Spq,
    ) -> TripQuery {
        // One backward-search scratch for the whole trip: relaxation
        // re-dispatches and the splitter's sub-path searches hit its
        // suffix cache instead of re-ranking from scratch.
        self.trip_query_via_with(provider, query, &mut SearchScratch::new())
    }

    /// [`trip_query_via`](Self::trip_query_via) through a caller-owned
    /// [`SearchScratch`] — the caller controls the scratch's
    /// [`QueryTrace`] (e.g. enables wall-clock timing) and the returned
    /// [`TripQuery::trace`] covers exactly this trip. Identical results.
    pub fn trip_query_via_with<P: TravelTimeProvider + ?Sized>(
        &self,
        provider: &P,
        query: &Spq,
        scratch: &mut SearchScratch,
    ) -> TripQuery {
        scratch.trace.reset();
        let mut stats = QueryStats::default();
        let initial = self.initial_subqueries(query);
        stats.initial_subqueries = initial.len();

        // (sub-query, already shift-and-enlarge adapted?)
        let mut queue: VecDeque<(Spq, bool)> = initial.into_iter().map(|s| (s, false)).collect();
        let mut subs: Vec<SubResult> = Vec::new();
        // Shift-and-enlarge accumulators over completed sub-queries:
        // S = Σ H_min, R = Σ (H_max − H_min).
        let mut sum_min = 0.0;
        let mut sum_range = 0.0;

        while let Some((mut sub, adapted)) = queue.pop_front() {
            // Procedure 6, lines 3–5: adapt the window once per sub-query.
            if !adapted
                && self.config.shift_and_enlarge
                && sub.interval.is_periodic()
                && !subs.is_empty()
            {
                sub = sub.with_interval(sub.interval.shift_and_enlarge(sum_min, sum_range));
            }

            if let Some(done) = self.step(provider, &sub, &mut queue, &mut stats, scratch) {
                sum_min += done.histogram.min_edge().expect("non-empty histogram");
                sum_range += done.histogram.max_edge().expect("non-empty")
                    - done.histogram.min_edge().expect("non-empty");
                subs.push(done);
            }
        }

        stats.final_subqueries = subs.len();
        Self::convolve_subs(subs, stats, scratch.trace)
    }

    /// The initial partitioning π of a trip query with the β policy applied
    /// — the sub-queries [`trip_query`](Self::trip_query) starts from.
    pub fn initial_subqueries(&self, query: &Spq) -> Vec<Spq> {
        let mut initial = partition_query(self.network, query, self.config.partition_method);
        for sub in &mut initial {
            self.apply_beta_policy(sub);
        }
        initial
    }

    /// Whether sub-queries of this trip depend on each other's results.
    ///
    /// With shift-and-enlarge active on a periodic query, every sub-query's
    /// window is adapted using the histograms of the previously completed
    /// ones (Procedure 6, line 4), forcing sequential execution. Otherwise
    /// each initial sub-query's relaxation chain is independent: running
    /// the chains concurrently via [`run_chain_via`](Self::run_chain_via)
    /// and folding them with [`assemble`](Self::assemble) is result- and
    /// stats-identical to the sequential [`trip_query`](Self::trip_query).
    pub fn chains_are_independent(&self, query: &Spq) -> bool {
        !(self.config.shift_and_enlarge && query.interval.is_periodic())
    }

    /// Processes one initial sub-query to completion: relaxations (σ)
    /// replace it depth-first until every piece of its path is answered.
    /// No window adaptation is applied — callers fan chains out exactly
    /// when [`chains_are_independent`](Self::chains_are_independent).
    pub fn run_chain_via<P: TravelTimeProvider + ?Sized>(
        &self,
        provider: &P,
        sub: Spq,
    ) -> ChainOutcome {
        // Per-chain scratch: the chain root's backward search seeds the
        // suffix cache every σ-derived sub-path draws from.
        self.run_chain_via_with(provider, sub, &mut SearchScratch::new())
    }

    /// [`run_chain_via`](Self::run_chain_via) through a caller-owned
    /// [`SearchScratch`] (the caller controls the trace's timing flag).
    /// Identical results.
    pub fn run_chain_via_with<P: TravelTimeProvider + ?Sized>(
        &self,
        provider: &P,
        sub: Spq,
        scratch: &mut SearchScratch,
    ) -> ChainOutcome {
        scratch.trace.reset();
        let mut stats = QueryStats::default();
        let mut queue: VecDeque<(Spq, bool)> = VecDeque::from([(sub, true)]);
        let mut subs: Vec<SubResult> = Vec::new();
        while let Some((sub, _)) = queue.pop_front() {
            if let Some(done) = self.step(provider, &sub, &mut queue, &mut stats, scratch) {
                subs.push(done);
            }
        }
        ChainOutcome {
            subs,
            stats,
            trace: scratch.trace,
        }
    }

    /// Folds completed chains (in initial sub-query order) into the trip
    /// answer, merging stats and convolving the normalized histograms.
    pub fn assemble(&self, chains: Vec<ChainOutcome>) -> TripQuery {
        let mut stats = QueryStats {
            initial_subqueries: chains.len(),
            ..QueryStats::default()
        };
        let mut trace = QueryTrace::default();
        let mut subs = Vec::new();
        for chain in chains {
            stats.merge(&chain.stats);
            trace.merge(&chain.trace);
            subs.extend(chain.subs);
        }
        stats.final_subqueries = subs.len();
        Self::convolve_subs(subs, stats, trace)
    }

    /// One engine step: estimator gate → index dispatch → either a
    /// completed [`SubResult`] or σ-relaxation replacements on the queue.
    fn step<P: TravelTimeProvider + ?Sized>(
        &self,
        provider: &P,
        sub: &Spq,
        queue: &mut VecDeque<(Spq, bool)>,
        stats: &mut QueryStats,
        scratch: &mut SearchScratch,
    ) -> Option<SubResult> {
        // Estimator gate: relax without scanning when β̂ < β.
        if let (Some(mode), Some(beta)) = (self.config.estimator, sub.beta) {
            if sub.interval.is_periodic() && self.index.estimate(sub, mode) < beta as f64 {
                stats.estimator_rejections += 1;
                self.relax(sub, queue, stats, scratch);
                return None;
            }
        }

        stats.index_queries += 1;
        let times = provider.travel_times_with(sub, scratch);
        if times.is_empty() {
            self.relax(sub, queue, stats, scratch);
            return None;
        }

        let histogram = Histogram::from_values(&times.values, self.config.bucket_width);
        if (histogram.total() as usize) < times.values.len() {
            // `Histogram::from_values` silently drops non-finite values, so
            // a mass deficit means the provider returned corrupt data
            // (impossible through `SntIndex` — `Trajectory::new` rejects
            // non-finite durations at ingest). Treat it like an empty
            // answer rather than letting a NaN mean or an empty histogram
            // poison the trip downstream.
            self.relax(sub, queue, stats, scratch);
            return None;
        }
        if times.fallback {
            stats.estimate_fallbacks += 1;
        }
        Some(SubResult {
            path: sub.path.clone(),
            mean: times.mean().expect("non-empty travel times"),
            values: times.values.into_vec(),
            histogram,
            fallback: times.fallback,
        })
    }

    fn convolve_subs(subs: Vec<SubResult>, stats: QueryStats, trace: QueryTrace) -> TripQuery {
        let normalized: Vec<Histogram> = subs.iter().map(|s| s.histogram.normalize()).collect();
        let histogram = Histogram::convolve_all(normalized.iter());
        TripQuery {
            histogram,
            subs,
            stats,
            trace,
        }
    }

    /// Applies σ to a failed sub-query and pushes the replacements to the
    /// front of the queue (Procedure 6, line 10), classifying the step for
    /// the stats.
    fn relax(
        &self,
        sub: &Spq,
        queue: &mut VecDeque<(Spq, bool)>,
        stats: &mut QueryStats,
        scratch: &mut SearchScratch,
    ) {
        let replacements = self.splitter.split_with(self.index, sub, scratch);
        match replacements.as_slice() {
            [_, _] => stats.path_splits += 1,
            [one] if one.interval.is_periodic() && one.interval.size() > sub.interval.size() => {
                stats.widenings += 1;
            }
            [one] if one.filter.is_empty() && !sub.filter.is_empty() => stats.filter_drops += 1,
            _ => stats.full_fallbacks += 1,
        }
        // The relaxed queries replace the failed one in order; they keep the
        // adapted window, so they are not re-adapted. Path splits re-derive
        // sub-paths, so the β policy re-applies.
        for mut r in replacements.into_iter().rev() {
            if r.path != sub.path {
                self.apply_beta_policy(&mut r);
            }
            queue.push_front((r, true));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::TimeInterval;
    use crate::snt::{SntConfig, SntIndex};
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_C, EDGE_D, EDGE_E};
    use tthr_network::RoadNetwork;
    use tthr_trajectory::examples::example_trajectories;
    use tthr_trajectory::UserId;

    fn fixture() -> (RoadNetwork, SntIndex) {
        let net = example_network();
        let idx = SntIndex::build(&net, &example_trajectories(), SntConfig::default());
        (net, idx)
    }

    fn engine_with<'a>(
        idx: &'a SntIndex,
        net: &'a RoadNetwork,
        pi: PartitionMethod,
    ) -> QueryEngine<'a> {
        QueryEngine::new(
            idx,
            net,
            QueryEngineConfig {
                partition_method: pi,
                bucket_width: 1.0,
                ..QueryEngineConfig::default()
            },
        )
    }

    /// ⟨A,B,E⟩ with a fixed interval covering the whole example set.
    fn abe_query() -> Spq {
        Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 100),
        )
        .with_beta(2)
    }

    #[test]
    fn whole_path_query_answers_directly() {
        let (net, idx) = fixture();
        let engine = engine_with(&idx, &net, PartitionMethod::Whole);
        let r = engine.trip_query(&abe_query());
        // tr0 (11 s) and tr3 (10 s) both traverse ⟨A,B,E⟩.
        assert_eq!(r.subs.len(), 1);
        assert_eq!(r.stats.initial_subqueries, 1);
        assert_eq!(r.stats.path_splits, 0);
        let mean = r.predicted_duration();
        assert!((mean - 10.5).abs() < 1e-9, "mean of 10 and 11, got {mean}");
        assert!(r.histogram.is_some());
    }

    #[test]
    fn unsatisfiable_beta_relaxes_until_answerable() {
        let (net, idx) = fixture();
        let engine = engine_with(&idx, &net, PartitionMethod::Whole);
        // β = 50 can never be met on a 4-trajectory set with a periodic
        // window: σ must widen, split, and finally fall back.
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_C, EDGE_D, EDGE_E]),
            TimeInterval::periodic(0, 900),
        )
        .with_beta(50);
        let r = engine.trip_query(&q);
        let rebuilt: Vec<_> = r
            .subs
            .iter()
            .flat_map(|s| s.path.edges().to_vec())
            .collect();
        assert_eq!(rebuilt, q.path.edges().to_vec(), "path coverage preserved");
        assert!(r.stats.widenings > 0, "widening attempted first");
        assert!(r.stats.path_splits > 0, "splits follow");
        assert!(r.stats.full_fallbacks > 0, "single segments fall back");
        assert!(r.predicted_duration() > 0.0);
    }

    #[test]
    fn regular_partitioning_convolves_per_segment() {
        let (net, idx) = fixture();
        let engine = engine_with(&idx, &net, PartitionMethod::Regular(1));
        let q = abe_query();
        let r = engine.trip_query(&q);
        assert_eq!(r.subs.len(), 3);
        // β = 2 keeps the first two traversals per segment in entry-time
        // order: A → {3, 4}, B → {4, 3}, E → {4, 5} (the tie at t = 12 on E
        // breaks towards the lower trajectory id, tr1).
        let want = 3.5 + 3.5 + 4.5;
        assert!(
            (r.predicted_duration() - want).abs() < 1e-9,
            "got {}",
            r.predicted_duration()
        );
        // Convolution exists and is a unit-mass distribution.
        let h = r.histogram.expect("histogram");
        assert!((h.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn filter_drop_is_counted() {
        let (net, idx) = fixture();
        let engine = engine_with(&idx, &net, PartitionMethod::Whole);
        // User u2 never drives ⟨A,B,E⟩ fully... tr2 = (A,B,F). With β = 1
        // and a periodic interval the engine must widen through A, then drop
        // the filter after splitting to single segments.
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::periodic(0, 900),
        )
        .with_beta(5)
        .with_user(UserId(2));
        let r = engine.trip_query(&q);
        assert!(r.stats.filter_drops > 0, "stats: {:?}", r.stats);
        assert!(r.predicted_duration() > 0.0);
    }

    #[test]
    fn shift_and_enlarge_only_affects_later_subqueries() {
        let (net, idx) = fixture();
        // With shift-and-enlarge off vs on, the first sub-query is
        // identical; the example set is dense enough that results only
        // differ if windows shifted badly — both must succeed.
        for sae in [false, true] {
            let engine = QueryEngine::new(
                &idx,
                &net,
                QueryEngineConfig {
                    partition_method: PartitionMethod::Regular(1),
                    shift_and_enlarge: sae,
                    bucket_width: 1.0,
                    ..QueryEngineConfig::default()
                },
            );
            let q = Spq::new(
                Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
                TimeInterval::periodic(0, 900),
            )
            .with_beta(2);
            let r = engine.trip_query(&q);
            assert_eq!(r.subs.len(), 3, "shift_and_enlarge = {sae}");
            assert!(r.predicted_duration() > 0.0);
        }
    }

    #[test]
    fn estimator_gate_skips_scans_for_hopeless_subqueries() {
        let (net, idx) = fixture();
        let gated = QueryEngine::new(
            &idx,
            &net,
            QueryEngineConfig {
                partition_method: PartitionMethod::Whole,
                estimator: Some(CardinalityMode::CssAcc),
                bucket_width: 1.0,
                ..QueryEngineConfig::default()
            },
        );
        let q = Spq::new(
            Path::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::periodic(12 * 3600, 900), // noon: no data at all
        )
        .with_beta(2);
        let r = gated.trip_query(&q);
        assert!(
            r.stats.estimator_rejections > 0,
            "the accurate estimator must reject the noon window: {:?}",
            r.stats
        );
        // The answer still arrives through relaxation.
        assert!(r.predicted_duration() > 0.0);
    }

    #[test]
    fn trip_query_is_deterministic() {
        let (net, idx) = fixture();
        let engine = engine_with(&idx, &net, PartitionMethod::Category);
        let q = abe_query();
        let a = engine.trip_query(&q);
        let b = engine.trip_query(&q);
        assert_eq!(a.predicted_duration(), b.predicted_duration());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.subs.len(), b.subs.len());
    }

    #[test]
    fn zone_scaled_beta_relaxes_rural_subqueries() {
        let (net, idx) = fixture();
        // ⟨A⟩ is rural. Uniform β = 3 on a 900 s periodic window misses the
        // cardinality requirement (all traversals sit in one window but
        // only 4 exist; pick β = 5 to force relaxation), while the scaled
        // policy (factor 0.4 → β = 2) answers directly.
        let q = Spq::new(Path::new(vec![EDGE_A]), TimeInterval::periodic(0, 900)).with_beta(5);
        let uniform = engine_with(&idx, &net, PartitionMethod::Whole).trip_query(&q);
        let scaled_engine = QueryEngine::new(
            &idx,
            &net,
            QueryEngineConfig {
                partition_method: PartitionMethod::Whole,
                beta_policy: BetaPolicy::ZoneScaled { rural_factor: 0.4 },
                bucket_width: 1.0,
                ..QueryEngineConfig::default()
            },
        );
        let scaled = scaled_engine.trip_query(&q);
        assert!(uniform.stats.widenings > 0, "uniform β must widen");
        assert_eq!(scaled.stats.widenings, 0, "scaled β answers directly");
        assert!(scaled.subs[0].values.len() >= 2);
    }

    #[test]
    fn zone_scaled_beta_keeps_city_requirements() {
        let (net, idx) = fixture();
        // ⟨C,D,E⟩ is city-zoned: the policy must not reduce β there.
        let q = Spq::new(
            Path::new(vec![EDGE_C, EDGE_D, EDGE_E]),
            TimeInterval::periodic(0, 900),
        )
        .with_beta(3);
        let scaled_engine = QueryEngine::new(
            &idx,
            &net,
            QueryEngineConfig {
                partition_method: PartitionMethod::Whole,
                beta_policy: BetaPolicy::ZoneScaled { rural_factor: 0.1 },
                bucket_width: 1.0,
                ..QueryEngineConfig::default()
            },
        );
        let uniform = engine_with(&idx, &net, PartitionMethod::Whole).trip_query(&q);
        let scaled = scaled_engine.trip_query(&q);
        // Identical behaviour on a city path.
        assert_eq!(uniform.stats, scaled.stats);
        assert_eq!(uniform.predicted_duration(), scaled.predicted_duration());
    }

    #[test]
    fn avg_sub_path_len_matches_subs() {
        let (net, idx) = fixture();
        let engine = engine_with(&idx, &net, PartitionMethod::Regular(2));
        let q = abe_query();
        let r = engine.trip_query(&q);
        // π₂ on a 3-segment path → sub-paths of 2 and 1 segments.
        assert_eq!(r.subs.len(), 2);
        assert!((r.avg_sub_path_len() - 1.5).abs() < 1e-12);
    }
}
