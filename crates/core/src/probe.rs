//! A dependency-free open-addressing hash table for the buildMap/probeMap
//! join.
//!
//! The paper's Procedures 3 and 4 hash `(d, seq)` — trajectory id and
//! sequence number — to the antecedent travel-time aggregate `a − TT`. The
//! key pair packs into one `u64`, so a flat insert-only table with
//! Fibonacci hashing and linear probing beats a general-purpose map in both
//! speed and footprint on this hot path.

/// Packs `(traj, seq)` into the table key.
#[inline]
fn pack(traj: u32, seq: u32) -> u64 {
    ((traj as u64) << 32) | seq as u64
}

const EMPTY: u64 = u64::MAX;
/// Fibonacci hashing multiplier (2⁶⁴ / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Insert-only hash map from `(trajectory, sequence)` pairs to the
/// antecedent aggregate `diff = a − TT` (the probe table `M` of
/// Procedure 3).
#[derive(Clone, Debug)]
pub struct ProbeTable {
    keys: Vec<u64>,
    values: Vec<f64>,
    len: usize,
    mask: usize,
}

impl Default for ProbeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates a table pre-sized for about `cap` entries (e.g. β).
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap * 2).next_power_of_two().max(16);
        ProbeTable {
            keys: vec![EMPTY; slots],
            values: vec![0.0; slots],
            len: 0,
            mask: slots - 1,
        }
    }

    /// Number of stored entries `|M|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> 32) as usize & self.mask
    }

    /// Inserts `(traj, seq) → diff`, overwriting any previous value for the
    /// same key (cannot occur in practice: a traversal has one antecedent).
    pub fn insert(&mut self, traj: u32, seq: u32, diff: f64) {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let key = pack(traj, seq);
        debug_assert_ne!(key, EMPTY, "key space exhausted");
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.values[slot] = diff;
                self.len += 1;
                return;
            }
            if self.keys[slot] == key {
                self.values[slot] = diff;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks up the antecedent for `(traj, seq)`.
    #[inline]
    pub fn get(&self, traj: u32, seq: u32) -> Option<f64> {
        let key = pack(traj, seq);
        let mut slot = self.slot_of(key);
        loop {
            if self.keys[slot] == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(self.values[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_values = std::mem::replace(&mut self.values, vec![0.0; new_slots]);
        self.mask = new_slots - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_values) {
            if k != EMPTY {
                let (traj, seq) = ((k >> 32) as u32, k as u32);
                self.insert(traj, seq, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = ProbeTable::new();
        t.insert(3, 0, 1.5);
        t.insert(3, 1, 2.5);
        t.insert(7, 0, 3.5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(3, 0), Some(1.5));
        assert_eq!(t.get(3, 1), Some(2.5));
        assert_eq!(t.get(7, 0), Some(3.5));
        assert_eq!(t.get(7, 1), None);
        assert_eq!(t.get(4, 0), None);
    }

    #[test]
    fn overwrite_same_key() {
        let mut t = ProbeTable::new();
        t.insert(1, 1, 1.0);
        t.insert(1, 1, 9.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(1, 1), Some(9.0));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = ProbeTable::with_capacity(4);
        for i in 0..10_000u32 {
            t.insert(i, i % 7, i as f64);
        }
        assert_eq!(t.len(), 10_000);
        for i in (0..10_000u32).step_by(97) {
            assert_eq!(t.get(i, i % 7), Some(i as f64));
        }
    }

    #[test]
    fn distinguishes_traj_and_seq() {
        let mut t = ProbeTable::new();
        t.insert(1, 2, 1.0);
        assert_eq!(t.get(2, 1), None, "(1,2) and (2,1) are distinct keys");
    }

    proptest::proptest! {
        #[test]
        fn matches_std_hashmap(
            ops in proptest::collection::vec((0u32..100, 0u32..10, -100.0f64..100.0), 0..300)
        ) {
            let mut ours = ProbeTable::new();
            let mut reference = std::collections::HashMap::new();
            for (traj, seq, v) in ops {
                ours.insert(traj, seq, v);
                reference.insert((traj, seq), v);
            }
            proptest::prop_assert_eq!(ours.len(), reference.len());
            for ((traj, seq), v) in reference {
                proptest::prop_assert_eq!(ours.get(traj, seq), Some(v));
            }
        }
    }
}
