//! Dijkstra routing over the road network.
//!
//! Routing is a substrate requirement, not a paper contribution: the
//! synthetic workload generator routes drivers between origin–destination
//! pairs, and the HMM map-matcher needs network distances between candidate
//! segments for its transition probabilities.

use crate::graph::RoadNetwork;
use crate::path::Path;
use crate::types::{EdgeId, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Edge weighting for shortest-path searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weighting {
    /// Minimize total `estimateTT` (free-flow travel time in seconds).
    TravelTime,
    /// Minimize total segment length in meters.
    Distance,
}

impl Weighting {
    #[inline]
    fn weight(self, network: &RoadNetwork, e: EdgeId) -> f64 {
        match self {
            Weighting::TravelTime => network.estimate_tt(e),
            Weighting::Distance => network.attrs(e).length_m,
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    vertex: VertexId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost. `total_cmp` keeps the heap invariant (and the
        // search terminating) even if a non-finite weight ever slips in.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| self.vertex.0.cmp(&other.vertex.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a shortest-path search.
#[derive(Clone, Debug)]
pub struct Route {
    /// Edge sequence from source to target (empty when source == target).
    pub edges: Vec<EdgeId>,
    /// Total cost under the requested [`Weighting`].
    pub cost: f64,
}

impl Route {
    /// The route as a [`Path`], or `None` for the trivial empty route.
    pub fn to_path(&self) -> Option<Path> {
        Path::try_new(self.edges.clone()).ok()
    }
}

/// Reusable Dijkstra search state. Buffers are retained across queries so a
/// generator or map-matcher issuing millions of searches does not reallocate.
pub struct Router<'a> {
    network: &'a RoadNetwork,
    dist: Vec<f64>,
    pred: Vec<Option<EdgeId>>,
    /// Vertices touched by the last search, for O(touched) reset.
    touched: Vec<VertexId>,
}

impl<'a> Router<'a> {
    /// Creates a router over the given network.
    pub fn new(network: &'a RoadNetwork) -> Self {
        Router {
            network,
            dist: vec![f64::INFINITY; network.num_vertices()],
            pred: vec![None; network.num_vertices()],
            touched: Vec::new(),
        }
    }

    /// Shortest route from `source` to `target` under `weighting`, giving up
    /// once the best reachable cost exceeds `cutoff` (pass `f64::INFINITY`
    /// for an unbounded search). Returns `None` if `target` is unreachable
    /// within the cutoff.
    pub fn shortest_route(
        &mut self,
        source: VertexId,
        target: VertexId,
        weighting: Weighting,
        cutoff: f64,
    ) -> Option<Route> {
        let cost = self.search(source, Some(target), weighting, cutoff)?;
        let mut edges = Vec::new();
        let mut v = target;
        while v != source {
            let e = self.pred[v.index()]?;
            edges.push(e);
            v = self.network.edge_from(e);
        }
        edges.reverse();
        Some(Route { edges, cost })
    }

    /// Shortest cost from `source` to `target` without path reconstruction.
    pub fn shortest_cost(
        &mut self,
        source: VertexId,
        target: VertexId,
        weighting: Weighting,
        cutoff: f64,
    ) -> Option<f64> {
        self.search(source, Some(target), weighting, cutoff)
    }

    /// Runs Dijkstra; returns the cost to `target` if given and reached.
    fn search(
        &mut self,
        source: VertexId,
        target: Option<VertexId>,
        weighting: Weighting,
        cutoff: f64,
    ) -> Option<f64> {
        // Reset state touched by the previous query.
        for v in self.touched.drain(..) {
            self.dist[v.index()] = f64::INFINITY;
            self.pred[v.index()] = None;
        }

        let mut heap = BinaryHeap::new();
        self.dist[source.index()] = 0.0;
        self.touched.push(source);
        heap.push(HeapEntry {
            cost: 0.0,
            vertex: source,
        });

        while let Some(HeapEntry { cost, vertex }) = heap.pop() {
            if cost > self.dist[vertex.index()] {
                continue; // stale entry
            }
            if Some(vertex) == target {
                return Some(cost);
            }
            if cost > cutoff {
                return None;
            }
            for &e in self.network.out_edges(vertex) {
                let next = self.network.edge_to(e);
                let next_cost = cost + weighting.weight(self.network, e);
                if next_cost < self.dist[next.index()] && next_cost <= cutoff {
                    if self.dist[next.index()].is_infinite() {
                        self.touched.push(next);
                    }
                    self.dist[next.index()] = next_cost;
                    self.pred[next.index()] = Some(e);
                    heap.push(HeapEntry {
                        cost: next_cost,
                        vertex: next,
                    });
                }
            }
        }
        target.and_then(|t| {
            let d = self.dist[t.index()];
            d.is_finite().then_some(d)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example_network;

    #[test]
    fn routes_on_example_network() {
        // Figure 1: v0 -A-> v1 -B-> v2 -E-> v4, with detour v1 -C-> v3 -D-> v2.
        let net = example_network();
        let mut router = Router::new(&net);
        let route = router
            .shortest_route(
                VertexId(0),
                VertexId(4),
                Weighting::TravelTime,
                f64::INFINITY,
            )
            .unwrap();
        // A,B,E is the fastest (29.5 + 8.6 + 7.2 ≈ 45.3 s) vs A,C,D,E (≈ 51 s).
        assert_eq!(route.edges, vec![EdgeId(0), EdgeId(1), EdgeId(4)]);
        assert!((route.cost - (29.4545 + 8.64 + 7.2)).abs() < 1e-2);
    }

    #[test]
    fn distance_weighting_can_differ_from_time() {
        let net = example_network();
        let mut router = Router::new(&net);
        // By distance, A,C,D,E = 900+40+80+100 = 1120 m beats A,B,E = 1120 m?
        // A,B,E = 900+120+100 = 1120 m; tie — Dijkstra picks one of them, and
        // both costs must be equal.
        let route = router
            .shortest_route(VertexId(0), VertexId(4), Weighting::Distance, f64::INFINITY)
            .unwrap();
        assert!((route.cost - 1120.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_returns_none() {
        let net = example_network();
        let mut router = Router::new(&net);
        // Nothing leads back to v0.
        assert!(router
            .shortest_route(
                VertexId(4),
                VertexId(0),
                Weighting::TravelTime,
                f64::INFINITY
            )
            .is_none());
    }

    #[test]
    fn cutoff_prunes_search() {
        let net = example_network();
        let mut router = Router::new(&net);
        assert!(router
            .shortest_cost(VertexId(0), VertexId(4), Weighting::TravelTime, 10.0)
            .is_none());
        assert!(router
            .shortest_cost(VertexId(0), VertexId(4), Weighting::TravelTime, 100.0)
            .is_some());
    }

    #[test]
    fn source_equals_target_costs_zero() {
        let net = example_network();
        let mut router = Router::new(&net);
        let r = router
            .shortest_route(
                VertexId(2),
                VertexId(2),
                Weighting::TravelTime,
                f64::INFINITY,
            )
            .unwrap();
        assert!(r.edges.is_empty());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn router_state_resets_between_queries() {
        let net = example_network();
        let mut router = Router::new(&net);
        let a = router
            .shortest_cost(
                VertexId(0),
                VertexId(4),
                Weighting::TravelTime,
                f64::INFINITY,
            )
            .unwrap();
        // Run an unrelated query, then repeat the first: identical result.
        let _ = router.shortest_cost(
            VertexId(1),
            VertexId(5),
            Weighting::TravelTime,
            f64::INFINITY,
        );
        let b = router
            .shortest_cost(
                VertexId(0),
                VertexId(4),
                Weighting::TravelTime,
                f64::INFINITY,
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
