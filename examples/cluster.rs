//! Boot a complete shard-per-process cluster topology in one command:
//! two shard nodes (each its own snapshot + WAL + binary-protocol
//! listener), the scatter-gather router in front, and the cluster HTTP
//! endpoint on top.
//!
//! Run with: `cargo run --release --example cluster`
//!
//! For a *real* multi-process deployment the node threads below become
//! `tthr-node --dir <store-dir>` processes and the front-end becomes
//! `tthr-router --node <addr> --node <addr>` — same stores, same wire
//! protocol, same answers (that path is what `tests/cluster_equivalence.rs`
//! exercises). This example keeps everything in one process tree so
//! `cargo run` works anywhere.
//!
//! ```text
//! curl http://127.0.0.1:7879/health
//! curl -d '{"path":[0,1],"interval":{"type":"fixed","start":0,"end":86400}}' \
//!      http://127.0.0.1:7879/trip
//! ```

use std::net::TcpListener;

use tthr::client::{ClientConfig, ClusterRouter};
use tthr::core::{
    QueryEngineConfig, ShardNodeState, ShardedSntIndex, SntConfig, Spq, TimeInterval,
};
use tthr::datagen::{generate_network, generate_workload, NetworkConfig, WorkloadConfig};
use tthr::server::cluster::serve_cluster;
use tthr::server::node::{serve_node, NodeStore};
use tthr::server::wire;
use tthr::trajectory::TrajId;

const K: usize = 2;

fn main() {
    // --- A synthetic world ---------------------------------------------------
    let syn = generate_network(&NetworkConfig::small());
    let set = generate_workload(&syn, &WorkloadConfig::small());
    let network = syn.network;
    println!(
        "world: {} edges, {} trajectories, {} shards",
        network.num_edges(),
        set.len(),
        K
    );

    // --- Bootstrap: build once, export each shard as a node store ------------
    let sharded = ShardedSntIndex::build(&network, &set, SntConfig::default(), K);
    let base = std::env::temp_dir().join(format!("tthr-cluster-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut addrs = Vec::new();
    for shard in 0..K {
        let dir = base.join(format!("node{shard}"));
        let store = NodeStore::init(&dir, ShardNodeState::export_from(&sharded, shard))
            .expect("init node store");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind node");
        let addr = listener.local_addr().expect("node addr");
        println!(
            "node {shard}: binary protocol on {addr}, store in {}",
            dir.display()
        );
        addrs.push(addr);
        std::thread::spawn(move || serve_node(listener, store));
    }

    // --- The scatter-gather router -------------------------------------------
    let router = ClusterRouter::connect(
        network,
        &addrs,
        QueryEngineConfig::default(),
        ClientConfig::default(),
    )
    .expect("assemble cluster");
    router.health().expect("all shards healthy");

    // One trip query through the whole stack, to prove it breathes.
    let tr = set.get(TrajId(0));
    let spq = Spq::new(
        tr.path().sub_path(0..tr.len().min(3)),
        TimeInterval::fixed(0, i64::MAX / 4),
    );
    let trip = router.trip_query(&spq).expect("scatter-gather trip");
    println!(
        "demo trip over {} sub-queries: {} index scans, {} estimate fallbacks",
        trip.subs.len(),
        trip.stats.index_queries,
        trip.stats.estimate_fallbacks,
    );

    // --- The cluster HTTP endpoint -------------------------------------------
    let addr_env = std::env::var("TTHR_ADDR").unwrap_or_else(|_| "127.0.0.1:7879".to_string());
    let listener = TcpListener::bind(addr_env.as_str())
        .expect("binding the router address (override with TTHR_ADDR)");
    let addr = listener.local_addr().expect("router addr");
    println!("tthr cluster router listening on http://{addr}");
    println!("\ntry it:");
    println!("  curl http://{addr}/health");
    println!("  curl -d '{}' http://{addr}/spq", wire::encode_spq(&spq));
    println!("  curl -d '{}' http://{addr}/trip", wire::encode_spq(&spq));
    serve_cluster(listener, router).expect("serve cluster");
}
