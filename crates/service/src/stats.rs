//! Service-level observability: latency percentiles, throughput, cache
//! effectiveness.

use crate::cache::CacheCounters;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tthr_metrics::LogHistogram;

/// Latency distribution summary over recorded queries, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded queries.
    pub count: usize,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Arithmetic mean latency.
    pub mean_ms: f64,
    /// Worst recorded latency.
    pub max_ms: f64,
}

/// A point-in-time snapshot of the service's behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ServiceStats {
    /// Single-SPQ requests served.
    pub spq_queries: u64,
    /// Trip queries served (each spans many SPQ dispatches).
    pub trip_queries: u64,
    /// Latency summary over all served requests.
    pub latency: LatencySummary,
    /// Requests per second since service start (or the last reset).
    pub throughput_qps: f64,
    /// Result-cache counters.
    pub cache: CacheCounters,
    /// Index generation: number of applied update batches.
    pub generation: u64,
    /// Time since service start (or the last reset).
    pub uptime: Duration,
}

/// Mutex-guarded latency recorder feeding [`ServiceStats`].
///
/// Samples aggregate into an HDR-style log-bucketed
/// [`LogHistogram`] (nanosecond resolution): memory stays
/// constant (~30 KiB) no matter how long the service lives, unlike the
/// raw-sample log it replaces. Count, mean, and max are exact; reported
/// percentiles are within 1/64 ≈ 1.6 % of the true sample.
pub(crate) struct LatencyLog {
    inner: Mutex<LogInner>,
}

struct LogInner {
    hist: LogHistogram,
    started: Instant,
}

impl LatencyLog {
    pub(crate) fn new() -> Self {
        LatencyLog {
            inner: Mutex::new(LogInner {
                hist: LogHistogram::new(),
                started: Instant::now(),
            }),
        }
    }

    pub(crate) fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.inner.lock().expect("latency log").hist.record(ns);
    }

    /// Latency summary, throughput, and uptime.
    pub(crate) fn summarize(&self) -> (LatencySummary, f64, Duration) {
        let inner = self.inner.lock().expect("latency log");
        let uptime = inner.started.elapsed();
        let ns_to_ms = |ns: u64| ns as f64 / 1e6;
        let summary = LatencySummary {
            count: inner.hist.count() as usize,
            p50_ms: ns_to_ms(inner.hist.value_at_percentile(50.0)),
            p95_ms: ns_to_ms(inner.hist.value_at_percentile(95.0)),
            p99_ms: ns_to_ms(inner.hist.value_at_percentile(99.0)),
            mean_ms: inner.hist.mean() / 1e6,
            max_ms: ns_to_ms(inner.hist.max()),
        };
        drop(inner);
        let qps = if uptime.as_secs_f64() > 0.0 {
            summary.count as f64 / uptime.as_secs_f64()
        } else {
            0.0
        };
        (summary, qps, uptime)
    }

    /// Forgets all samples and restarts the throughput clock.
    pub(crate) fn reset(&self) {
        let mut inner = self.inner.lock().expect("latency log");
        inner.hist.clear();
        inner.started = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The log-bucketed histogram reports percentiles within 1/64 relative
    /// error; count/mean/max stay exact.
    #[test]
    fn summary_percentiles() {
        let log = LatencyLog::new();
        for i in 1..=100 {
            log.record(Duration::from_millis(i));
        }
        let (summary, qps, uptime) = log.summarize();
        let close = |got: f64, want: f64| (got - want).abs() <= want / 64.0;
        assert_eq!(summary.count, 100);
        assert!(close(summary.p50_ms, 50.0), "p50 = {}", summary.p50_ms);
        assert!(close(summary.p95_ms, 95.0), "p95 = {}", summary.p95_ms);
        assert!(close(summary.p99_ms, 99.0), "p99 = {}", summary.p99_ms);
        assert_eq!(summary.max_ms, 100.0, "max is exact");
        assert!((summary.mean_ms - 50.5).abs() < 1e-9, "mean is exact");
        assert!(qps > 0.0);
        assert!(uptime > Duration::ZERO);
    }

    /// The recorder's footprint does not grow with the sample count — the
    /// property the histogram exists for.
    #[test]
    fn bounded_memory_for_many_samples() {
        let log = LatencyLog::new();
        for i in 0..200_000u64 {
            log.record(Duration::from_nanos(i * 37 + 1));
        }
        let (summary, _, _) = log.summarize();
        assert_eq!(summary.count, 200_000);
        let inner = log.inner.lock().unwrap();
        assert!(inner.hist.size_bytes() < 64 * 1024);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let (summary, qps, _) = LatencyLog::new().summarize();
        assert_eq!(summary, LatencySummary::default());
        assert_eq!(qps, 0.0);
    }

    #[test]
    fn reset_clears_samples() {
        let log = LatencyLog::new();
        log.record(Duration::from_millis(5));
        log.reset();
        assert_eq!(log.summarize().0.count, 0);
    }
}
