//! The persistence contract: `QueryService::open(snapshot + WAL)` serves
//! byte-identically to the index state it persisted, corrupted files are
//! typed errors (never panics), and a crash between an append and the
//! next snapshot loses nothing the WAL fsynced.

mod common;

use common::{prefix_set, small_world, value_bits};
use std::path::PathBuf;
use std::sync::Arc;
use tthr::core::{SntConfig, SntIndex, Spq, TimeInterval, WalBatch};
use tthr::datagen::sample_query_trajectories;
use tthr::service::{QueryService, ServiceConfig, SNAPSHOT_FILE, WAL_FILE};
use tthr::store::wal::WalWriter;
use tthr::store::{ByteWriter, Persist, StoreError};
use tthr::trajectory::TrajectorySet;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tthr-persistence-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mixed SPQ workload sampled from the history.
fn workload(set: &TrajectorySet) -> Vec<Spq> {
    let ids = sample_query_trajectories(set, 1.0, 8, 3);
    let mut queries = Vec::new();
    for (i, &id) in ids.iter().step_by(5).take(25).enumerate() {
        let tr = set.get(id);
        let q = match i % 3 {
            0 => Spq::new(
                tr.path(),
                TimeInterval::periodic_around(tr.start_time(), 1800),
            ),
            1 => Spq::new(tr.path(), TimeInterval::fixed(0, tr.start_time().max(1))),
            _ => Spq::new(tr.path(), TimeInterval::fixed(0, i64::MAX / 2)).with_user(tr.user()),
        };
        queries.push(q.with_beta(5 + (i as u32 % 3) * 5));
    }
    assert!(queries.len() >= 20, "sample must be non-trivial");
    queries
}

/// Bit patterns of the travel times, in index scan order: byte-identical
/// comparison, stricter than float equality.
fn bits<B: tthr::service::ServiceBackend>(
    service: &QueryService<B>,
    spq: &Spq,
) -> (Vec<u64>, bool) {
    let t = service.get_travel_times(spq);
    (value_bits(&t.values), t.fallback)
}

#[test]
fn open_serves_byte_identically_after_snapshot_and_wal_appends() {
    let dir = temp_dir("roundtrip");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let queries = workload(&set);

    // Life of the service: build over a third of the history, snapshot,
    // then two WAL-logged appends.
    let third = set.len() / 3;
    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, third), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    service.save_snapshot(&dir).unwrap();
    assert_eq!(
        service.append_batch(&prefix_set(&set, 2 * third)).unwrap(),
        third
    );
    assert_eq!(service.append_batch(&set).unwrap(), set.len() - 2 * third);

    // "Restart": the snapshot holds a third, the WAL the other two.
    let reopened =
        QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
    reopened.with_index(|index| {
        assert_eq!(index.num_trajectories(), set.len());
        assert_eq!(index.num_partitions(), 3);
    });
    for spq in &queries {
        assert_eq!(bits(&reopened, spq), bits(&service, spq), "{spq:?}");
    }

    // The same trajectories indexed in one shot agree as multisets (the
    // in-memory equivalence of partitioned vs FULL builds is pinned down
    // by tests/batch_append.rs; here it closes the loop to disk).
    let full = QueryService::new(
        SntIndex::build(&syn.network, &set, SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    for spq in &queries {
        assert_eq!(
            reopened.get_travel_times(spq).sorted(),
            full.get_travel_times(spq).sorted(),
            "{spq:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_load_is_cheaper_than_rebuild_in_partitions_touched() {
    // Sanity companion to the snapshot bench: loading must not rebuild
    // suffix arrays — the restored index is ready immediately and answers
    // the paper's example correctly after a pure deserialization.
    let dir = temp_dir("load");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let service = QueryService::new(
        SntIndex::build(&syn.network, &set, SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    let info = service.save_snapshot(&dir).unwrap();
    assert_eq!(info.trajectories, set.len());
    assert_eq!(info.path, dir.join(SNAPSHOT_FILE));
    assert_eq!(
        info.bytes,
        std::fs::metadata(dir.join(SNAPSHOT_FILE)).unwrap().len()
    );
    let reopened = QueryService::open(&dir, network, ServiceConfig::default()).unwrap();
    reopened.with_index(|index| assert_eq!(index.num_trajectories(), set.len()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_snapshots_are_typed_errors_not_panics() {
    let dir = temp_dir("corruption");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, 40), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    service.save_snapshot(&dir).unwrap();
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&snapshot_path).unwrap();

    let reopen = |bytes: &[u8]| {
        std::fs::write(&snapshot_path, bytes).unwrap();
        QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default())
    };

    // Truncated file — at the header, inside the section table, and
    // inside a payload.
    for len in [0usize, 7, 20, pristine.len() / 2, pristine.len() - 1] {
        match reopen(&pristine[..len]) {
            Err(StoreError::Truncated { .. }) => {}
            other => panic!("truncation to {len}: {:?}", other.map(|_| ())),
        }
    }

    // Bad magic.
    let mut bad_magic = pristine.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        reopen(&bad_magic),
        Err(StoreError::BadMagic { kind: "snapshot" })
    ));

    // Wrong version.
    let mut bad_version = pristine.clone();
    bad_version[8] = 0x7F;
    assert!(matches!(
        reopen(&bad_version),
        Err(StoreError::UnsupportedVersion { found: 0x7F, .. })
    ));

    // CRC mismatch: flip one payload bit.
    let mut flipped = pristine.clone();
    let n = flipped.len();
    flipped[n - 1] ^= 0x01;
    assert!(matches!(
        reopen(&flipped),
        Err(StoreError::ChecksumMismatch { .. })
    ));

    // The pristine bytes still open fine (the failures above were the
    // mutations, not the harness).
    assert!(reopen(&pristine).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_replay_after_crash_recovers_batches_newer_than_the_snapshot() {
    let dir = temp_dir("crash");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let half = set.len() / 2;
    let queries = workload(&set);

    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, half), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    service.save_snapshot(&dir).unwrap();
    // The append is fsynced to the WAL; the snapshot is now stale.
    assert_eq!(service.append_batch(&set).unwrap(), set.len() - half);
    let answers: Vec<_> = queries.iter().map(|q| bits(&service, q)).collect();

    // Crash simulation: drop the service *and* tear the WAL tail the way
    // an interrupted append would.
    drop(service);
    let wal_path = dir.join(WAL_FILE);
    let mut wal_bytes = std::fs::read(&wal_path).unwrap();
    wal_bytes.extend_from_slice(&[0x13, 0x37, 0x00]);
    std::fs::write(&wal_path, &wal_bytes).unwrap();

    let reopened =
        QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
    reopened.with_index(|index| assert_eq!(index.num_trajectories(), set.len()));
    for (spq, want) in queries.iter().zip(&answers) {
        assert_eq!(&bits(&reopened, spq), want, "{spq:?}");
    }

    // The torn bytes were truncated: appending through the reopened
    // service and reopening once more replays cleanly.
    let mut grown = set.clone();
    let extra = grown.len();
    grown
        .push(
            set.get(tthr::trajectory::TrajId(0)).user(),
            set.get(tthr::trajectory::TrajId(0)).entries().to_vec(),
        )
        .unwrap();
    assert_eq!(reopened.append_batch(&grown).unwrap(), 1);
    let once_more = QueryService::open(&dir, network, ServiceConfig::default()).unwrap();
    once_more.with_index(|index| assert_eq!(index.num_trajectories(), extra + 1));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Sharded store format: per-shard snapshot sections + shard-tagged WAL
// records (`tthr_core::sharded`), opened via `QueryService::open_with`.
// ---------------------------------------------------------------------

use tthr::core::{ShardedSntIndex, ShardedWalBatch, SHARD_SECTION_BASE};
use tthr::service::ShardedQueryService;

const SHARDS: usize = 3;

fn sharded_service(
    network: &Arc<tthr::network::RoadNetwork>,
    set: &TrajectorySet,
) -> ShardedQueryService {
    QueryService::new(
        ShardedSntIndex::build(network, set, SntConfig::default(), SHARDS),
        Arc::clone(network),
        ServiceConfig::default(),
    )
}

/// Parses the snapshot container's section table: `(id, offset, len)`.
fn section_table(bytes: &[u8]) -> Vec<(u32, usize, usize)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let o = 16 + i * 24;
            let id = u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
            let off = u64::from_le_bytes(bytes[o + 4..o + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[o + 12..o + 20].try_into().unwrap()) as usize;
            (id, off, len)
        })
        .collect()
}

/// Frame offsets `(start, payload_len)` of every WAL record.
fn wal_frames(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut frames = Vec::new();
    let mut pos = 12; // magic + version
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        frames.push((pos, len));
        pos += 8 + len;
    }
    frames
}

#[test]
fn sharded_open_serves_byte_identically_after_snapshot_and_wal_appends() {
    let dir = temp_dir("sharded-roundtrip");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let queries = workload(&set);

    let third = set.len() / 3;
    let service = sharded_service(&network, &prefix_set(&set, third));
    service.save_snapshot(&dir).unwrap();
    assert_eq!(
        service.append_batch(&prefix_set(&set, 2 * third)).unwrap(),
        third
    );
    assert_eq!(service.append_batch(&set).unwrap(), set.len() - 2 * third);

    let reopened =
        ShardedQueryService::open_with(&dir, Arc::clone(&network), ServiceConfig::default())
            .unwrap();
    reopened.with_index(|index| {
        assert_eq!(index.num_trajectories(), set.len());
        assert_eq!(index.num_shards(), SHARDS);
    });
    for spq in &queries {
        assert_eq!(bits(&reopened, spq), bits(&service, spq), "{spq:?}");
    }

    // The monolithic service over the same history agrees byte for byte —
    // restart does not loosen the differential contract.
    let mono = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, third), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    let _ = mono.append_batch(&prefix_set(&set, 2 * third)).unwrap();
    let _ = mono.append_batch(&set).unwrap();
    for spq in &queries {
        assert_eq!(bits(&mono, spq), bits(&reopened, spq), "{spq:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_wal_truncated_mid_record_recovers_the_intact_prefix() {
    let dir = temp_dir("sharded-torn");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let half = set.len() / 2;
    let queries = workload(&set);

    let service = sharded_service(&network, &prefix_set(&set, half));
    service.save_snapshot(&dir).unwrap();
    assert_eq!(
        service.append_batch(&prefix_set(&set, half + 3)).unwrap(),
        3
    );
    // Answers of the generation the torn log must recover to.
    let after_first: Vec<_> = queries.iter().map(|q| bits(&service, q)).collect();
    assert_eq!(service.append_batch(&set).unwrap(), set.len() - half - 3);
    drop(service);

    // Tear the second record in half — mid-payload, the way a crash
    // during an fsync-ed write cannot happen but a disk can deliver.
    let wal_path = dir.join(WAL_FILE);
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let frames = wal_frames(&wal_bytes);
    assert_eq!(frames.len(), 2, "two appends, two records");
    let (start, len) = frames[1];
    std::fs::write(&wal_path, &wal_bytes[..start + 8 + len / 2]).unwrap();

    let reopened =
        ShardedQueryService::open_with(&dir, Arc::clone(&network), ServiceConfig::default())
            .unwrap();
    reopened.with_index(|index| assert_eq!(index.num_trajectories(), half + 3));
    for (spq, want) in queries.iter().zip(&after_first) {
        assert_eq!(&bits(&reopened, spq), want, "{spq:?}");
    }

    // The torn tail was truncated: appending and reopening again works.
    assert_eq!(reopened.append_batch(&set).unwrap(), set.len() - half - 3);
    let once_more =
        ShardedQueryService::open_with(&dir, Arc::clone(&network), ServiceConfig::default())
            .unwrap();
    once_more.with_index(|index| assert_eq!(index.num_trajectories(), set.len()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_snapshot_corruption_is_a_typed_error_per_section() {
    let dir = temp_dir("sharded-corruption");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let service = sharded_service(&network, &prefix_set(&set, 40));
    service.save_snapshot(&dir).unwrap();
    drop(service);
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&snapshot_path).unwrap();

    let reopen = |bytes: &[u8]| {
        std::fs::write(&snapshot_path, bytes).unwrap();
        ShardedQueryService::open_with(&dir, Arc::clone(&network), ServiceConfig::default())
    };

    // Flip one byte inside each shard's section payload: the container
    // CRC for exactly that section must fail.
    let table = section_table(&pristine);
    for s in 0..SHARDS as u32 {
        let &(_, off, len) = table
            .iter()
            .find(|&&(id, _, _)| id == SHARD_SECTION_BASE + s)
            .expect("shard section present");
        assert!(len > 0);
        let mut corrupt = pristine.clone();
        corrupt[off + len / 2] ^= 0x40;
        match reopen(&corrupt) {
            Err(StoreError::ChecksumMismatch { context }) => {
                assert!(
                    context.contains(&(SHARD_SECTION_BASE + s).to_string()),
                    "wrong section blamed: {context}"
                );
            }
            other => panic!("shard {s} corruption: {:?}", other.err()),
        }
    }

    // A monolithic service directory refuses to open as sharded (and vice
    // versa) with a typed missing-section error, not a misparse.
    std::fs::write(&snapshot_path, &pristine).unwrap();
    let mono_dir = temp_dir("sharded-corruption-mono");
    let mono = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, 40), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    mono.save_snapshot(&mono_dir).unwrap();
    assert!(matches!(
        ShardedQueryService::open_with(&mono_dir, Arc::clone(&network), ServiceConfig::default()),
        Err(StoreError::MissingSection(_))
    ));
    assert!(matches!(
        QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()),
        Err(StoreError::MissingSection(_))
    ));

    // Pristine bytes still open (the harness, not the format, failed
    // above).
    assert!(reopen(&pristine).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&mono_dir).unwrap();
}

#[test]
fn sharded_wal_records_skipping_ahead_or_misrouted_are_typed_errors() {
    let dir = temp_dir("sharded-gap");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let service = sharded_service(&network, &prefix_set(&set, 30));
    service.save_snapshot(&dir).unwrap();
    let base_plan = service.with_index(|index| index.plan_wal_batch(&prefix_set(&set, 32), 30));
    drop(service);

    let write_wal = |record: &ShardedWalBatch| {
        let mut w = ByteWriter::new();
        record.persist(&mut w);
        let mut wal = WalWriter::create(&dir.join(WAL_FILE)).unwrap();
        wal.append(&w.into_bytes()).unwrap();
    };

    // A record whose base stamp skips ahead of the snapshot is a gap.
    let mut skipping = base_plan.clone();
    skipping.batch.base = 1000;
    write_wal(&skipping);
    assert!(matches!(
        ShardedQueryService::open_with(&dir, Arc::clone(&network), ServiceConfig::default()),
        Err(StoreError::WalGap {
            expected: 30,
            found: 1000
        })
    ));

    // A record whose shard tag disagrees with the routing table is
    // corrupt: the log was written against a different partitioning.
    let mut misrouted = base_plan.clone();
    misrouted.touched = vec![u16::MAX - 1];
    write_wal(&misrouted);
    assert!(matches!(
        ShardedQueryService::open_with(&dir, Arc::clone(&network), ServiceConfig::default()),
        Err(StoreError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Group commit: concurrent `append_new` callers share WAL fsyncs, every
// acked append is durable, and a crash between any two records recovers
// exactly the stamped prefix.
// ---------------------------------------------------------------------

use tthr::trajectory::{TrajEntry, TrajId, UserId};

const FLOOD_THREADS: usize = 16;

/// One single-trajectory payload per flood thread, drawn from the half of
/// the history the snapshot does not cover.
fn flood_payloads(set: &TrajectorySet, from: usize) -> Vec<(UserId, Vec<TrajEntry>)> {
    (from..from + FLOOD_THREADS)
        .map(|i| {
            let t = set.get(TrajId(u32::try_from(i).unwrap()));
            (t.user(), t.entries().to_vec())
        })
        .collect()
}

/// Floods the service with one `append_new` per payload from
/// [`FLOOD_THREADS`] threads while the index read lock is held: the first
/// elected leader blocks inside its commit (it needs the write lock), so
/// the remaining submitters pile into the group queue — the worst case
/// group commit exists to amortize — and every ack means "fsynced".
fn group_commit_flood(service: &QueryService<SntIndex>, payloads: &[(UserId, Vec<TrajEntry>)]) {
    std::thread::scope(|s| {
        let handles = service.with_index(|_held| {
            let handles: Vec<_> = payloads
                .iter()
                .map(|payload| {
                    s.spawn(move || service.append_new(None, std::slice::from_ref(payload)))
                })
                .collect();
            // Give every thread time to reach `submit` before the lock
            // releases; stragglers only cost extra (counted) fsyncs.
            std::thread::sleep(std::time::Duration::from_millis(400));
            handles
        });
        for handle in handles {
            assert_eq!(handle.join().unwrap().unwrap(), 1);
        }
    });
}

/// Reads a bare counter sample (`name value`) out of the Prometheus
/// exposition.
fn counter_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)?
                .strip_prefix(' ')?
                .trim()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
}

#[test]
fn concurrent_append_flood_shares_fsyncs_across_appends() {
    let dir = temp_dir("group-flood");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let half = set.len() / 2;
    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, half), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    service.save_snapshot(&dir).unwrap();

    group_commit_flood(&service, &flood_payloads(&set, half));

    // The amortization is the whole point: one WAL record per append, but
    // strictly fewer fsyncs than appends (the held lock guarantees at
    // least one multi-request group formed).
    let text = service.render_metrics();
    let appends = counter_value(&text, "tthr_wal_appends_total");
    let fsyncs = counter_value(&text, "tthr_wal_fsyncs_total");
    assert_eq!(appends, FLOOD_THREADS as u64);
    assert!(
        fsyncs >= 1 && fsyncs < appends,
        "group commit must amortize: {fsyncs} fsyncs for {appends} appends"
    );

    // Every acked append is durable, and replaying the group-committed
    // log reproduces the live index byte for byte.
    let reopened =
        QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
    reopened.with_index(|index| assert_eq!(index.num_trajectories(), half + FLOOD_THREADS));
    for spq in &workload(&set) {
        assert_eq!(bits(&reopened, spq), bits(&service, spq), "{spq:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_committed_wal_recovers_every_record_prefix() {
    let dir = temp_dir("group-crash");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let half = set.len() / 2;
    let queries = workload(&set);
    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, half), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    service.save_snapshot(&dir).unwrap();

    group_commit_flood(&service, &flood_payloads(&set, half));
    let live: Vec<_> = queries.iter().map(|q| bits(&service, q)).collect();
    drop(service);

    // However the groups formed, the log holds one stamped record per
    // acked append, in commit order.
    let wal_path = dir.join(WAL_FILE);
    let pristine = std::fs::read(&wal_path).unwrap();
    let frames = wal_frames(&pristine);
    assert_eq!(frames.len(), FLOOD_THREADS, "one record per acked append");

    // Crash battery: a crash between any two records — and, torn, in the
    // middle of the next write — recovers exactly the stamped prefix.
    // Requests a group leader had not yet fsynced were never acked, so a
    // shorter log never loses an acknowledged append.
    for k in 0..=frames.len() {
        let end = match k.checked_sub(1) {
            None => 12, // file header only
            Some(last) => {
                let (start, len) = frames[last];
                start + 8 + len
            }
        };
        let mut cut = pristine[..end].to_vec();
        std::fs::write(&wal_path, &cut).unwrap();
        let reopened =
            QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
        reopened.with_index(|index| {
            assert_eq!(index.num_trajectories(), half + k, "prefix of {k} records");
        });
        drop(reopened);

        if k < frames.len() {
            let (start, len) = frames[k];
            cut.extend_from_slice(&pristine[start..start + 8 + len / 2]);
            std::fs::write(&wal_path, &cut).unwrap();
            let torn =
                QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
            torn.with_index(|index| {
                assert_eq!(index.num_trajectories(), half + k, "torn record {k}");
            });
        }
    }

    // The full log replays to the exact live answers, and replay is
    // idempotent: a second open over the same bytes agrees with itself.
    std::fs::write(&wal_path, &pristine).unwrap();
    let replayed =
        QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
    for (spq, want) in queries.iter().zip(&live) {
        assert_eq!(&bits(&replayed, spq), want, "{spq:?}");
    }
    drop(replayed);
    let again = QueryService::open(&dir, Arc::clone(&network), ServiceConfig::default()).unwrap();
    again.with_index(|index| assert_eq!(index.num_trajectories(), half + FLOOD_THREADS));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Compaction rotation crash battery: the rotate-snapshot-then-truncate-
// WAL sequence (`compact_now` with durable storage attached) can die at
// any point; `open()` must recover to exactly the pre- or the post-
// compaction state — never a hybrid that re-applies retention-dropped
// data out of a stale log.
// ---------------------------------------------------------------------

use std::time::Duration;
use tthr::service::IngestConfig;

/// Copies a service directory file-by-file (snapshot + WAL + strays).
fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

#[test]
fn compaction_rotation_crash_battery_recovers_pre_or_post_never_hybrid() {
    let dir = temp_dir("rotation-crash");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let queries = workload(&set);
    let half = set.len() / 2;

    // The original history's time span, for crafting expired-vs-live data.
    let t_max = set
        .iter()
        .flat_map(|t| t.entries().iter().map(|e| e.enter_time))
        .max()
        .unwrap();
    let t_min = set.iter().map(|t| t.start_time()).min().unwrap();
    let span = (t_max - t_min).max(1);
    let ingest = IngestConfig {
        hot_tail: true,
        retention: Some(Duration::from_secs(span as u64)),
        ..IngestConfig::default()
    };

    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, half), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig {
            ingest: ingest.clone(),
            ..ServiceConfig::default()
        },
    );
    service.save_snapshot(&dir).unwrap();
    // Two WAL-logged hot-tail appends: the rest of the history, then a
    // far-future batch that pushes the retention horizon past every
    // original partition — compaction will drop all of them, so the pre-
    // and post-compaction states answer differently (a hybrid is
    // detectable, not silently equal).
    assert_eq!(service.append_batch(&set).unwrap(), set.len() - half);
    let mut grown = set.clone();
    let future = 10 * span;
    for i in 0..4u32 {
        let tr = set.get(TrajId(i));
        let entries: Vec<TrajEntry> = tr
            .entries()
            .iter()
            .map(|e| TrajEntry::new(e.edge, e.enter_time + future, e.travel_time))
            .collect();
        grown.push(tr.user(), entries).unwrap();
    }
    assert_eq!(service.append_batch(&grown).unwrap(), 4);
    assert!(
        service.hot_stats().entries > 0,
        "appends must sit in the hot tail"
    );

    // Freeze the PRE-compaction directory, rotate, freeze the POST one.
    let pre_dir = temp_dir("rotation-crash-pre");
    copy_dir(&dir, &pre_dir);
    let outcome = service.compact_now().unwrap();
    assert!(outcome.sealed_entries > 0);
    assert!(
        outcome.dropped_partitions > 0,
        "retention must drop the expired partitions: {outcome:?}"
    );
    let post_dir = temp_dir("rotation-crash-post");
    copy_dir(&dir, &post_dir);

    let answers_of = |d: &std::path::Path| -> Vec<(Vec<u64>, bool)> {
        let svc = QueryService::open(d, Arc::clone(&network), ServiceConfig::default()).unwrap();
        queries.iter().map(|q| bits(&svc, q)).collect()
    };
    let pre_answers = answers_of(&pre_dir);
    let post_answers = answers_of(&post_dir);
    assert_ne!(
        pre_answers, post_answers,
        "retention must change some answer, or a hybrid would be undetectable"
    );

    // The battery: reconstruct the directory as a crash at each stage of
    // the rotation would leave it, and require `open()` to land exactly
    // on one side.
    let post_snapshot = std::fs::read(post_dir.join(SNAPSHOT_FILE)).unwrap();
    let pre_wal = std::fs::read(pre_dir.join(WAL_FILE)).unwrap();
    let tmp_name = format!("{SNAPSHOT_FILE}.tmp");
    let crash = temp_dir("rotation-crash-stage");

    // Stage 1: died while writing the temp snapshot (torn tmp file). The
    // rename never happened; the stray tmp must be ignored.
    copy_dir(&pre_dir, &crash);
    std::fs::write(
        crash.join(&tmp_name),
        &post_snapshot[..post_snapshot.len() / 2],
    )
    .unwrap();
    assert_eq!(answers_of(&crash), pre_answers, "torn tmp snapshot");

    // Stage 2: died after the tmp snapshot was complete, before the
    // rename. Still the pre state — a complete-but-unrenamed snapshot is
    // not yet the truth.
    copy_dir(&pre_dir, &crash);
    std::fs::write(crash.join(&tmp_name), &post_snapshot).unwrap();
    assert_eq!(answers_of(&crash), pre_answers, "unrenamed tmp snapshot");

    // Stage 3: died after the rename, before the WAL reset — the rotated
    // snapshot next to the full stale log. Every WAL record is already
    // contained in the snapshot; replay must skip them all by stamp
    // (post state) and MUST NOT re-apply the retention-dropped batches
    // (the hybrid this battery exists to rule out).
    copy_dir(&pre_dir, &crash);
    std::fs::write(crash.join(SNAPSHOT_FILE), &post_snapshot).unwrap();
    assert_eq!(
        answers_of(&crash),
        post_answers,
        "rotated snapshot + stale WAL"
    );

    // Stage 4: died mid WAL reset — the log truncated to nothing, or to
    // a torn header. Recovery rewrites it fresh; still the post state.
    for torn in [0usize, 6] {
        copy_dir(&post_dir, &crash);
        std::fs::write(crash.join(WAL_FILE), &pre_wal[..torn]).unwrap();
        assert_eq!(
            answers_of(&crash),
            post_answers,
            "torn WAL header ({torn} bytes)"
        );
    }

    // Stage 5: the full sequence landed.
    copy_dir(&post_dir, &crash);
    assert_eq!(answers_of(&crash), post_answers, "complete rotation");

    // Liveness after recovery: the reopened store ingests, rotates, and
    // reopens again — the crash left no landmine behind.
    let lively = QueryService::open(
        &crash,
        Arc::clone(&network),
        ServiceConfig {
            ingest,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let tr = set.get(TrajId(9));
    let entries: Vec<TrajEntry> = tr
        .entries()
        .iter()
        .map(|e| TrajEntry::new(e.edge, e.enter_time + future, e.travel_time))
        .collect();
    grown.push(tr.user(), entries).unwrap();
    assert_eq!(lively.append_batch(&grown).unwrap(), 1);
    lively.compact_now().unwrap();
    drop(lively);
    let again = QueryService::open(&crash, Arc::clone(&network), ServiceConfig::default()).unwrap();
    again.with_index(|i| assert_eq!(i.num_trajectories(), set.len() + 5));

    for d in [&dir, &pre_dir, &post_dir, &crash] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn wal_records_skipping_ahead_are_a_gap_error() {
    let dir = temp_dir("gap");
    let (syn, set) = small_world();
    let network = Arc::new(syn.network.clone());
    let service = QueryService::new(
        SntIndex::build(&syn.network, &prefix_set(&set, 30), SntConfig::default()),
        Arc::clone(&network),
        ServiceConfig::default(),
    );
    service.save_snapshot(&dir).unwrap();
    drop(service);

    // Forge a WAL whose only record claims a base far past the snapshot
    // (as if an earlier log file had been deleted).
    let batch = WalBatch::delta(&set, set.len() - 2);
    let batch = WalBatch {
        base: 1000,
        trajectories: batch.trajectories,
    };
    let mut w = ByteWriter::new();
    batch.persist(&mut w);
    let mut wal = WalWriter::create(&dir.join(WAL_FILE)).unwrap();
    wal.append(&w.into_bytes()).unwrap();
    drop(wal);

    let result = QueryService::open(&dir, network, ServiceConfig::default());
    assert!(matches!(
        result,
        Err(StoreError::WalGap {
            expected: 30,
            found: 1000
        })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
