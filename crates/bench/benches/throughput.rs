//! Extension bench (the paper's future-work Section 7): parallel query
//! throughput over a shared read-only index. A single query does not
//! parallelize well, but the index is immutable after construction, so
//! overall throughput should scale with threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tthr_bench::{query_for, QueryType, Scale, World};
use tthr_core::{QueryEngine, QueryEngineConfig, SntConfig, Spq};

fn bench_throughput(c: &mut Criterion) {
    let world = World::generate(Scale::Small);
    let index = world.build_index(SntConfig::default());
    let queries: Vec<Spq> = world
        .queries
        .iter()
        .take(64)
        .map(|&id| query_for(&world.set, id, QueryType::TemporalFilters, 900, 20))
        .collect();

    let mut group = c.benchmark_group("parallel_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    for threads in [1usize, 2, 4] {
        let index_ref = &index;
        let network_ref = world.network();
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for chunk in queries.chunks(queries.len().div_ceil(threads)) {
                        scope.spawn(move || {
                            // Engines are cheap to create; the shared state
                            // is the immutable index.
                            let engine = QueryEngine::new(
                                index_ref,
                                network_ref,
                                QueryEngineConfig::default(),
                            );
                            for q in chunk {
                                std::hint::black_box(engine.trip_query(q));
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
