//! Trajectory-string construction: mapping trajectories to the FM-index
//! alphabet.
//!
//! The trajectory set is serialized as `T = P_tr0 $ P_tr1 $ … $ P_trn−1 $`
//! over the alphabet `Σ = E ∪ {$}` with `$` lexicographically smallest
//! (paper, Section 4.1.1). Symbol `0` is `$` and edge `e` maps to `e + 1`.

use tthr_network::{EdgeId, Path};
use tthr_trajectory::Trajectory;

/// The `$` terminator symbol.
pub const TERMINATOR: u32 = 0;

/// The FM-index symbol of an edge.
#[inline]
pub fn edge_symbol(e: EdgeId) -> u32 {
    e.0 + 1
}

/// The alphabet size for a network with `num_edges` edges: `|E| + 1`.
#[inline]
pub fn alphabet_size(num_edges: usize) -> u32 {
    num_edges as u32 + 1
}

/// A path as an FM-index pattern.
pub fn path_symbols(path: &Path) -> Vec<u32> {
    path.edges().iter().map(|&e| edge_symbol(e)).collect()
}

/// [`path_symbols`] into a caller-owned buffer (cleared first) — the
/// query hot path re-uses one buffer per query instead of allocating a
/// pattern `Vec` per `getISARange` dispatch.
pub fn path_symbols_into(path: &Path, out: &mut Vec<u32>) {
    out.clear();
    out.extend(path.edges().iter().map(|&e| edge_symbol(e)));
}

/// Builds the trajectory string for a sequence of trajectories, returning
/// the symbols and, for each trajectory (in input order), the text position
/// of its first traversal. Traversal `k` of trajectory `i` sits at
/// `starts[i] + k`.
pub fn build_text<'a, I>(trajectories: I) -> (Vec<u32>, Vec<usize>)
where
    I: IntoIterator<Item = &'a Trajectory>,
{
    let mut text = Vec::new();
    let mut starts = Vec::new();
    for tr in trajectories {
        starts.push(text.len());
        text.extend(tr.entries().iter().map(|e| edge_symbol(e.edge)));
        text.push(TERMINATOR);
    }
    (text, starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tthr_trajectory::examples::example_trajectories;

    #[test]
    fn example_set_builds_figure3_string() {
        // T = ABE$ACDE$ABF$ABE$ with A=1 … F=6.
        let set = example_trajectories();
        let (text, starts) = build_text(set.iter());
        assert_eq!(
            text,
            vec![1, 2, 5, 0, 1, 3, 4, 5, 0, 1, 2, 6, 0, 1, 2, 5, 0]
        );
        assert_eq!(starts, vec![0, 4, 9, 13]);
    }

    #[test]
    fn symbols_shift_by_one() {
        assert_eq!(edge_symbol(EdgeId(0)), 1);
        assert_eq!(edge_symbol(EdgeId(41)), 42);
        assert_eq!(alphabet_size(6), 7);
        let p = Path::new(vec![EdgeId(0), EdgeId(4)]);
        assert_eq!(path_symbols(&p), vec![1, 5]);
    }

    #[test]
    fn empty_input_builds_empty_text() {
        let (text, starts) = build_text(std::iter::empty());
        assert!(text.is_empty());
        assert!(starts.is_empty());
    }
}
