//! Incremental batch updates: the operational loop temporal partitioning
//! exists for (paper, Section 4.3.2). New trajectory batches arrive weekly;
//! each is appended as its own partition — existing FM-indexes stay
//! untouched, the CSS forest absorbs the new leaves append-only, and
//! queries immediately see the fresh data.
//!
//! Run with: `cargo run --release --example incremental_updates`

use tthr::core::{QueryEngine, QueryEngineConfig, SntConfig, SntIndex, Spq, TimeInterval};
use tthr::datagen::{generate_network, generate_workload, NetworkConfig, WorkloadConfig};
use tthr::network::SECONDS_PER_DAY;
use tthr::trajectory::TrajectorySet;

fn main() {
    let syn = generate_network(&NetworkConfig::small());
    let set = generate_workload(
        &syn,
        &WorkloadConfig {
            num_drivers: 30,
            num_days: 42, // six weeks
            ..WorkloadConfig::small()
        },
    );
    println!(
        "history: {} trajectories over {} days",
        set.len(),
        (set.iter().map(|t| t.start_time()).max().unwrap()
            - set.iter().map(|t| t.start_time()).min().unwrap())
            / SECONDS_PER_DAY
    );

    // A commuter whose route we will track across updates.
    let probe = set
        .iter()
        .filter(|t| t.len() >= 12)
        .max_by_key(|t| set.iter().filter(|o| o.path() == t.path()).count())
        .expect("a frequent commute");
    let spq = Spq::new(
        probe.path(),
        TimeInterval::periodic_around(probe.start_time(), 3600),
    )
    .with_beta(10);

    // Bootstrap the index with the first two weeks, then append weekly.
    let week = |d: i64| d * 7 * SECONDS_PER_DAY;
    let t0 = set.iter().map(|t| t.start_time()).min().unwrap();
    let mut staged = TrajectorySet::new();
    let mut cursor = 0usize;
    let stage_until = |staged: &mut TrajectorySet, cursor: &mut usize, cutoff: i64| {
        // Trajectory ids are generated day-by-day, so a time cutoff is a
        // (slightly overlapping) id prefix — exactly what append_batch
        // handles.
        for tr in set.iter().skip(*cursor) {
            if tr.start_time() >= cutoff {
                break;
            }
            staged.push(tr.user(), tr.entries().to_vec()).expect("copy");
            *cursor += 1;
        }
    };

    stage_until(&mut staged, &mut cursor, t0 + week(2));
    let mut index = SntIndex::build(&syn.network, &staged, SntConfig::default());
    println!(
        "\nbootstrapped with {} trajectories ({} partitions)",
        index.num_trajectories(),
        index.num_partitions()
    );

    let engine_report = |index: &SntIndex, label: &str| {
        let engine = QueryEngine::new(index, &syn.network, QueryEngineConfig::default());
        let r = engine.trip_query(&spq);
        println!(
            "{label:>12}: partitions = {}, matches for the probe commute = {:>3}, \
             predicted = {:.0} s",
            index.num_partitions(),
            index.count_matching(&spq.clone().with_beta(u32::MAX - 1), u32::MAX),
            r.predicted_duration(),
        );
    };
    engine_report(&index, "bootstrap");

    for w in 3..=6 {
        stage_until(&mut staged, &mut cursor, t0 + week(w));
        let appended = index.append_batch(&staged);
        println!("\nweek {w}: appended {appended} new trajectories");
        engine_report(&index, format!("after wk {w}").as_str());
    }

    println!(
        "\n(actual duration of the probe trip: {:.0} s)",
        probe.total_duration()
    );
}
