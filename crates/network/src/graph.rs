//! The road network graph and its builder.

use crate::edge::EdgeAttrs;
use crate::geometry::Point;
use crate::path::Path;
use crate::types::{Category, EdgeId, VertexId};

/// Default speed assumed when neither the segment nor any segment of its
/// category has a known limit (km/h).
const GLOBAL_FALLBACK_KMH: f64 = 50.0;

/// A directed road network graph `G = (V, E, F)`.
///
/// Edges are stored densely, indexed by [`EdgeId`]; vertices by [`VertexId`].
/// Outgoing adjacency uses a CSR layout so that `out_edges` is a cheap slice
/// lookup in routing hot loops.
///
/// The network also materializes the paper's `estimateTT` fallback
/// (Section 2.2): the traversal time of a segment at its speed limit,
/// substituting the median known limit of the segment's category when the
/// limit is untagged (Section 5.1.1).
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    from: Vec<VertexId>,
    to: Vec<VertexId>,
    attrs: Vec<EdgeAttrs>,
    positions: Vec<Point>,
    /// CSR offsets into `adj_edges`, one entry per vertex plus sentinel.
    adj_offsets: Vec<u32>,
    adj_edges: Vec<EdgeId>,
    category_fallback_kmh: [f64; Category::COUNT],
    /// Pre-computed `estimateTT` per edge, in seconds.
    estimate_tt_secs: Vec<f64>,
}

impl RoadNetwork {
    /// Number of directed edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.attrs.len()
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Source vertex of an edge.
    #[inline]
    pub fn edge_from(&self, e: EdgeId) -> VertexId {
        self.from[e.index()]
    }

    /// Target vertex of an edge.
    #[inline]
    pub fn edge_to(&self, e: EdgeId) -> VertexId {
        self.to[e.index()]
    }

    /// Attributes `F(e)` of an edge.
    #[inline]
    pub fn attrs(&self, e: EdgeId) -> &EdgeAttrs {
        &self.attrs[e.index()]
    }

    /// Planar position of a vertex.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// Outgoing edges of a vertex.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        let s = self.adj_offsets[v.index()] as usize;
        let e = self.adj_offsets[v.index() + 1] as usize;
        &self.adj_edges[s..e]
    }

    /// `estimateTT(e)`: traversal time in seconds at the speed limit,
    /// falling back to the category-median limit when untagged.
    ///
    /// Used as the last-resort travel-time estimate when a strict path query
    /// finds no trajectory data at all for a segment (paper, Procedure 5,
    /// line 13).
    #[inline]
    pub fn estimate_tt(&self, e: EdgeId) -> f64 {
        self.estimate_tt_secs[e.index()]
    }

    /// The effective speed limit used by [`estimate_tt`](Self::estimate_tt),
    /// in km/h (the tagged limit, or the category median fallback).
    pub fn effective_speed_limit_kmh(&self, e: EdgeId) -> f64 {
        let attrs = &self.attrs[e.index()];
        attrs
            .speed_limit_kmh
            .unwrap_or(self.category_fallback_kmh[attrs.category.index()])
    }

    /// The median known speed limit of a category (km/h), as used by the
    /// untagged-limit fallback.
    pub fn category_fallback_kmh(&self, c: Category) -> f64 {
        self.category_fallback_kmh[c.index()]
    }

    /// Whether consecutive edges `a → b` connect head-to-tail.
    #[inline]
    pub fn connects(&self, a: EdgeId, b: EdgeId) -> bool {
        self.to[a.index()] == self.from[b.index()]
    }

    /// Whether a sequence of edges forms a traversable path in this network.
    pub fn is_traversable(&self, edges: &[EdgeId]) -> bool {
        if edges.iter().any(|e| e.index() >= self.num_edges()) {
            return false;
        }
        edges.windows(2).all(|w| self.connects(w[0], w[1]))
    }

    /// Validates a path against this network.
    pub fn validate_path(&self, path: &Path) -> bool {
        !path.is_empty() && self.is_traversable(path.edges())
    }

    /// Total length of a path in meters: `Σ F(e).l`.
    pub fn path_length_m(&self, path: &Path) -> f64 {
        path.edges().iter().map(|e| self.attrs(*e).length_m).sum()
    }

    /// Sum of `estimateTT` over a path, in seconds.
    pub fn path_estimate_tt(&self, path: &Path) -> f64 {
        path.edges().iter().map(|e| self.estimate_tt(*e)).sum()
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Approximate heap footprint of the graph in bytes (for the memory
    /// accounting experiments of Figure 10).
    pub fn size_bytes(&self) -> usize {
        self.from.len() * std::mem::size_of::<VertexId>()
            + self.to.len() * std::mem::size_of::<VertexId>()
            + self.attrs.len() * std::mem::size_of::<EdgeAttrs>()
            + self.positions.len() * std::mem::size_of::<Point>()
            + self.adj_offsets.len() * 4
            + self.adj_edges.len() * 4
            + self.estimate_tt_secs.len() * 8
    }
}

/// Incremental builder for [`RoadNetwork`].
///
/// ```
/// use tthr_network::{Category, EdgeAttrs, NetworkBuilder, Point, Zone};
///
/// let mut b = NetworkBuilder::new();
/// let v0 = b.add_vertex(Point::new(0.0, 0.0));
/// let v1 = b.add_vertex(Point::new(900.0, 0.0));
/// let a = b.add_edge(v0, v1, EdgeAttrs::new(Category::Motorway, Zone::Rural, 110.0, 900.0));
/// let net = b.build();
/// assert_eq!(net.out_edges(v0), &[a]);
/// assert!((net.estimate_tt(a) - 29.4545).abs() < 1e-3);
/// ```
#[derive(Default, Debug)]
pub struct NetworkBuilder {
    from: Vec<VertexId>,
    to: Vec<VertexId>,
    attrs: Vec<EdgeAttrs>,
    positions: Vec<Point>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex at the given position and returns its id.
    pub fn add_vertex(&mut self, position: Point) -> VertexId {
        let id = VertexId(self.positions.len() as u32);
        self.positions.push(position);
        id
    }

    /// Adds a directed edge and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, attrs: EdgeAttrs) -> EdgeId {
        assert!(
            from.index() < self.positions.len() && to.index() < self.positions.len(),
            "edge endpoints must be added before the edge"
        );
        let id = EdgeId(self.from.len() as u32);
        self.from.push(from);
        self.to.push(to);
        self.attrs.push(attrs);
        id
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.from.len()
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.positions.len()
    }

    /// Position of an already-added vertex.
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// Finalizes the network: computes CSR adjacency, category-median
    /// speed-limit fallbacks, and per-edge `estimateTT`.
    pub fn build(self) -> RoadNetwork {
        let nv = self.positions.len();
        let ne = self.from.len();

        // CSR adjacency via counting sort on source vertex.
        let mut counts = vec![0u32; nv + 1];
        for f in &self.from {
            counts[f.index() + 1] += 1;
        }
        for i in 1..=nv {
            counts[i] += counts[i - 1];
        }
        let adj_offsets = counts.clone();
        let mut cursor = counts;
        let mut adj_edges = vec![EdgeId(0); ne];
        for (i, f) in self.from.iter().enumerate() {
            let slot = cursor[f.index()] as usize;
            adj_edges[slot] = EdgeId(i as u32);
            cursor[f.index()] += 1;
        }

        // Median known speed limit per category.
        let mut by_cat: Vec<Vec<f64>> = vec![Vec::new(); Category::COUNT];
        let mut all: Vec<f64> = Vec::new();
        for a in &self.attrs {
            if let Some(sl) = a.speed_limit_kmh {
                by_cat[a.category.index()].push(sl);
                all.push(sl);
            }
        }
        let global = median(&mut all).unwrap_or(GLOBAL_FALLBACK_KMH);
        let mut category_fallback_kmh = [global; Category::COUNT];
        for (i, limits) in by_cat.iter_mut().enumerate() {
            if let Some(m) = median(limits) {
                category_fallback_kmh[i] = m;
            }
        }

        let estimate_tt_secs = self
            .attrs
            .iter()
            .map(|a| {
                let sl = a
                    .speed_limit_kmh
                    .unwrap_or(category_fallback_kmh[a.category.index()]);
                3.6 * a.length_m / sl
            })
            .collect();

        RoadNetwork {
            from: self.from,
            to: self.to,
            attrs: self.attrs,
            positions: self.positions,
            adj_offsets,
            adj_edges,
            category_fallback_kmh,
            estimate_tt_secs,
        }
    }
}

/// Median of a mutable slice; `None` when empty. Uses the lower-middle
/// element for even lengths (matching typical DB statistics practice).
fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mid = (values.len() - 1) / 2;
    values.sort_unstable_by(f64::total_cmp);
    Some(values[mid])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Zone;

    fn two_edge_net() -> (RoadNetwork, EdgeId, EdgeId) {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        let v2 = b.add_vertex(Point::new(200.0, 0.0));
        let e0 = b.add_edge(
            v0,
            v1,
            EdgeAttrs::new(Category::Primary, Zone::City, 50.0, 100.0),
        );
        let e1 = b.add_edge(
            v1,
            v2,
            EdgeAttrs::new(Category::Primary, Zone::City, 50.0, 100.0),
        );
        (b.build(), e0, e1)
    }

    #[test]
    fn adjacency_is_correct() {
        let (net, e0, e1) = two_edge_net();
        assert_eq!(net.out_edges(VertexId(0)), &[e0]);
        assert_eq!(net.out_edges(VertexId(1)), &[e1]);
        assert!(net.out_edges(VertexId(2)).is_empty());
        assert!(net.connects(e0, e1));
        assert!(!net.connects(e1, e0));
    }

    #[test]
    fn traversability() {
        let (net, e0, e1) = two_edge_net();
        assert!(net.is_traversable(&[e0, e1]));
        assert!(!net.is_traversable(&[e1, e0]));
        assert!(net.is_traversable(&[e0]));
        assert!(net.is_traversable(&[]));
        // Unknown edge id is rejected rather than panicking.
        assert!(!net.is_traversable(&[EdgeId(99)]));
    }

    #[test]
    fn category_median_fallback_used_for_untagged_edges() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::new(Category::Residential, Zone::City, 30.0, 100.0),
        );
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::new(Category::Residential, Zone::City, 50.0, 100.0),
        );
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::new(Category::Residential, Zone::City, 40.0, 100.0),
        );
        let untagged = b.add_edge(
            v0,
            v1,
            EdgeAttrs::without_speed_limit(Category::Residential, Zone::City, 200.0),
        );
        let net = b.build();
        assert_eq!(net.category_fallback_kmh(Category::Residential), 40.0);
        assert_eq!(net.effective_speed_limit_kmh(untagged), 40.0);
        assert!((net.estimate_tt(untagged) - 3.6 * 200.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_category_falls_back_to_global_median() {
        let mut b = NetworkBuilder::new();
        let v0 = b.add_vertex(Point::new(0.0, 0.0));
        let v1 = b.add_vertex(Point::new(100.0, 0.0));
        b.add_edge(
            v0,
            v1,
            EdgeAttrs::new(Category::Primary, Zone::City, 80.0, 100.0),
        );
        let track = b.add_edge(
            v0,
            v1,
            EdgeAttrs::without_speed_limit(Category::Track, Zone::Rural, 100.0),
        );
        let net = b.build();
        // No tagged Track segments exist, so the global median (80) applies.
        assert_eq!(net.effective_speed_limit_kmh(track), 80.0);
    }

    #[test]
    fn empty_network_builds() {
        let net = NetworkBuilder::new().build();
        assert_eq!(net.num_edges(), 0);
        assert_eq!(net.num_vertices(), 0);
        // With no data at all the global default applies.
        assert_eq!(
            net.category_fallback_kmh(Category::Primary),
            GLOBAL_FALLBACK_KMH
        );
    }

    #[test]
    fn median_lower_middle_for_even_counts() {
        let mut v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(median(&mut v), Some(20.0));
        let mut w = vec![10.0];
        assert_eq!(median(&mut w), Some(10.0));
        assert_eq!(median(&mut []), None);
    }
}
