//! Little-endian byte-level encoding primitives.
//!
//! All multi-byte integers are little-endian; `f64` travels as the raw
//! bits of [`f64::to_bits`] so floating-point round-trips are bit-exact
//! (NaN payloads included). See the crate docs for the full wire grammar.

use crate::error::StoreError;
use crate::Persist;

/// An append-only byte buffer with typed `put_*` methods.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the accumulated bytes.
    #[inline]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u8`.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as the little-endian bytes of its bit pattern.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64` (the wire form is width-independent).
    #[inline]
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed sequence of [`Persist`] values.
    #[inline]
    pub fn put_seq<T: Persist>(&mut self, items: &[T]) {
        self.put_len(items.len());
        for item in items {
            item.persist(self);
        }
    }
}

/// A bounds-checked cursor over a byte slice with typed `get_*` methods.
///
/// Every read is validated against the remaining input and fails with
/// [`StoreError::Truncated`] instead of panicking.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over the whole slice.
    #[inline]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                context: "raw bytes",
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    #[inline]
    fn take<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], StoreError> {
        if self.remaining() < N {
            return Err(StoreError::Truncated { context });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    /// Reads a `u8`.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take::<1>("u8")?[0])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take("u16")?))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take("u32")?))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take("u64")?))
    }

    /// Reads a little-endian `i64`.
    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take("i64")?))
    }

    /// Reads an `f64` from its bit pattern.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a sequence length, validating it against the bytes actually
    /// remaining (`min_item_size` per element) so corrupt counts cannot
    /// trigger huge allocations.
    #[inline]
    pub fn get_len(&mut self, min_item_size: usize) -> Result<usize, StoreError> {
        let n = self.get_u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| StoreError::corrupt("sequence length exceeds address space"))?;
        if n.checked_mul(min_item_size.max(1))
            .map(|need| need > self.remaining())
            .unwrap_or(true)
        {
            return Err(StoreError::Truncated {
                context: "length-prefixed sequence",
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed sequence of [`Persist`] values.
    #[inline]
    pub fn get_seq<T: Persist>(&mut self) -> Result<Vec<T>, StoreError> {
        // Every wire form is at least one byte, which bounds the
        // allocation by the remaining input.
        let n = self.get_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::restore(self)?);
        }
        Ok(out)
    }

    /// Fails unless every input byte was consumed — catches payloads with
    /// trailing garbage (a symptom of mismatched format expectations).
    #[inline]
    pub fn expect_exhausted(&self, context: &'static str) -> Result<(), StoreError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(StoreError::corrupt(format!(
                "{context}: {} trailing bytes",
                self.remaining()
            )))
        }
    }
}

macro_rules! persist_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Persist for $ty {
            #[inline]
            fn persist(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
            #[inline]
            fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
                r.$get()
            }
        }
    };
}

persist_prim!(u8, put_u8, get_u8);
persist_prim!(u16, put_u16, get_u16);
persist_prim!(u32, put_u32, get_u32);
persist_prim!(u64, put_u64, get_u64);
persist_prim!(i64, put_i64, get_i64);
persist_prim!(f64, put_f64, get_f64);

impl Persist for bool {
    #[inline]
    fn persist(&self, w: &mut ByteWriter) {
        w.put_u8(*self as u8);
    }
    #[inline]
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(format!("bool byte {other}"))),
        }
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.persist(w);
            }
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            other => Err(StoreError::corrupt(format!("Option tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65_000);
        w.put_u32(1 << 30);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_000);
        assert_eq!(r.get_u32().unwrap(), 1 << 30);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        // Bit-exact float round-trips, -0.0 and NaN included.
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.is_exhausted());
        r.expect_exhausted("test").unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_u64(), Err(StoreError::Truncated { .. })));
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn sequences_round_trip_and_reject_absurd_lengths() {
        let mut w = ByteWriter::new();
        w.put_seq(&[3u32, 1, 4, 1, 5]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_seq::<u32>().unwrap(), vec![3, 1, 4, 1, 5]);

        // A corrupt length larger than the remaining input must fail
        // before allocating.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_seq::<u8>().is_err());
    }

    #[test]
    fn options_and_bools() {
        let mut w = ByteWriter::new();
        Some(9u32).persist(&mut w);
        Option::<u32>::None.persist(&mut w);
        true.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(Option::<u32>::restore(&mut r).unwrap(), Some(9));
        assert_eq!(Option::<u32>::restore(&mut r).unwrap(), None);
        assert!(bool::restore(&mut r).unwrap());

        let mut r = ByteReader::new(&[2u8]);
        assert!(matches!(
            Option::<u32>::restore(&mut r),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = [0u8; 3];
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert!(matches!(
            r.expect_exhausted("payload"),
            Err(StoreError::Corrupt { .. })
        ));
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_f64_bits_round_trip(bits in 0u64..u64::MAX) {
            let mut w = ByteWriter::new();
            w.put_f64(f64::from_bits(bits));
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            proptest::prop_assert_eq!(r.get_f64().unwrap().to_bits(), bits);
        }
    }
}
