//! Bench-smoke guard for the query-trace instrumentation (CI runs this in
//! the bench-smoke job).
//!
//! The trace contract is two-tier: the **counters** (rank ops, wavelet
//! descents, scratch hits, …) are plain `u64` adds on an exclusively-owned
//! scratch and are always on; **timing** (`search_ns`) costs two
//! `Instant::now` calls per index query and is off by default. This test
//! pins both halves:
//!
//! * timing-off traces populate counters but report `search_ns == 0`;
//! * enabling timing does not change the answers;
//! * the timed path stays within a generous noise bound of the untimed
//!   one — a catastrophic regression (a lock or allocation sneaking into
//!   the per-query trace path) fails fast even on noisy CI runners.

use std::time::Instant;
use tthr_bench::{query_for, QueryType, Scale, World};
use tthr_core::{QueryEngine, QueryEngineConfig, SearchScratch, SntConfig, Spq};

/// Median wall time of one pass over the query set, out of `reps` runs.
fn median_pass_secs(index: &tthr_core::SntIndex, spqs: &[Spq], timing: bool, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut scratch = SearchScratch::new();
        scratch.trace.timing = timing;
        let started = Instant::now();
        for q in spqs {
            std::hint::black_box(index.get_travel_times_with(q, &mut scratch));
        }
        samples.push(started.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[test]
fn tracing_overhead_stays_within_noise() {
    let world = World::generate(Scale::Small);
    let index = world.build_index(SntConfig::default());
    let engine = QueryEngine::new(&index, world.network(), QueryEngineConfig::default());
    let alpha_min = engine.config().interval_sizes[0];
    let spqs: Vec<Spq> = world
        .queries
        .iter()
        .take(16)
        .flat_map(|&id| {
            engine.initial_subqueries(&query_for(
                &world.set,
                id,
                QueryType::TemporalFilters,
                alpha_min,
                20,
            ))
        })
        .collect();
    assert!(!spqs.is_empty());

    // Functional contract first: counters always, nanoseconds only on
    // demand, answers independent of either.
    let mut off = SearchScratch::new();
    let mut on = SearchScratch::new();
    on.trace.timing = true;
    for q in &spqs {
        assert_eq!(
            index.get_travel_times_with(q, &mut off).values,
            index.get_travel_times_with(q, &mut on).values,
            "timing changed the answer for {q:?}"
        );
    }
    assert!(off.trace.rank_ops > 0, "counters must run untimed");
    assert_eq!(off.trace.search_ns, 0, "untimed trace must not buy clocks");
    assert!(on.trace.search_ns > 0, "timed trace must measure");
    assert_eq!(off.trace.rank_ops, on.trace.rank_ops);

    // Overhead bound. The two paths differ by two `Instant::now` calls
    // per index query, far below real noise; 1.5× catches only a
    // structural regression, not scheduler jitter.
    let reps = 7;
    median_pass_secs(&index, &spqs, false, 2); // warm up caches / branch predictors
    let untimed = median_pass_secs(&index, &spqs, false, reps);
    let timed = median_pass_secs(&index, &spqs, true, reps);
    assert!(
        timed <= untimed * 1.5 + 1e-3,
        "timed tracing is {timed:.6}s vs {untimed:.6}s untimed per pass — \
         instrumentation grew beyond clock reads"
    );
}
