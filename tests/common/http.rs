//! A tiny blocking HTTP/1.1 client for driving `tthr-server` in tests:
//! keep-alive, pipelining, and raw-byte access to responses (the
//! equivalence harness compares bodies bit-for-bit).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf-8 response body")
    }
}

/// A keep-alive client connection.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        HttpClient {
            stream,
            buf: Vec::new(),
        }
    }

    /// Sends one request (no body for `GET`).
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) {
        self.send_raw(&encode_request(method, path, body));
    }

    /// Sends pre-encoded bytes (pipelining, malformed corpora, …).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send request");
    }

    /// Sends bytes, tolerating a server that already closed the
    /// connection (flood/garbage scenarios race the close).
    pub fn send_raw_best_effort(&mut self, bytes: &[u8]) {
        let _ = self.stream.write_all(bytes);
    }

    /// Reads one full response (blocking).
    pub fn read_response(&mut self) -> Response {
        self.try_read_response()
            .expect("server closed the connection mid-response")
    }

    /// Reads one response, or `None` on a clean close before/within it.
    pub fn try_read_response(&mut self) -> Option<Response> {
        loop {
            if let Some((response, consumed)) = parse_response(&self.buf) {
                self.buf.drain(..consumed);
                return Some(response);
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read from test server: {e}"),
            }
        }
    }

    /// Request → response round trip.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> Response {
        self.send(method, path, body);
        self.read_response()
    }

    /// Whether the server closed the connection (EOF observed after
    /// draining buffered bytes).
    pub fn at_eof(&mut self) -> bool {
        let mut chunk = [0u8; 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => true,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                false
            }
            Err(_) => true,
        }
    }
}

/// Serializes a request with a `content-length` body.
pub fn encode_request(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// One-shot convenience: connect, request, disconnect.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> Response {
    HttpClient::connect(addr).request("POST", path, body)
}

fn parse_response(buf: &[u8]) -> Option<(Response, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).expect("ascii response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        let (name, value) = line.split_once(':').expect("header line");
        let value = value.trim().to_string();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().expect("content-length");
        }
        headers.push((name.to_string(), value));
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return None;
    }
    Some((
        Response {
            status,
            headers,
            body: buf[head_end + 4..total].to_vec(),
        },
        total,
    ))
}
