//! Shard-node mode: one [`ShardNodeState`] served over the cluster's
//! binary protocol, with its own snapshot + write-ahead log.
//!
//! The node is deliberately boring compared to the epoll front-end: a
//! blocking accept loop with one thread per connection. The cluster tier
//! holds a handful of long-lived router connections per node, not ten
//! thousand browsers — thread-per-connection is the right tool, and it
//! keeps the node's only state machine (the WAL) trivial to reason
//! about.
//!
//! # Durability contract
//!
//! * [`NodeStore::append`] applies the record to the in-memory state
//!   *first* (application validates everything before mutating), then
//!   logs it. A crash between the two loses an unacknowledged record —
//!   the router never got its ack, retries, and the base-stamp
//!   idempotency of [`tthr_core::NodeWalRecord`] makes the re-send
//!   apply cleanly.
//! * [`NodeStore::snapshot`] writes `node.snap` atomically (temp file +
//!   rename + directory fsync) **before** starting a fresh WAL, mirroring
//!   the service tier's ordering argument: a crash in between pairs the
//!   new snapshot with stale WAL records, which replay as idempotent
//!   skips on open.
//! * [`NodeStore::open`] restores the snapshot and replays every intact
//!   WAL record; a torn tail is truncated by the store layer.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use tthr_core::{NodeWalRecord, ShardNodeState};
use tthr_rpc::{read_frame, write_frame, ErrCode, Message, NodeMeta, WireError};
use tthr_store::wal::WalWriter;
use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};

/// Snapshot file name inside a node's store directory.
pub const NODE_SNAPSHOT_FILE: &str = "node.snap";
/// WAL file name inside a node's store directory.
pub const NODE_WAL_FILE: &str = "node.wal";

/// A shard node's durable store: the in-memory [`ShardNodeState`] plus
/// the snapshot/WAL pair that lets the process die and come back.
pub struct NodeStore {
    dir: PathBuf,
    state: ShardNodeState,
    wal: WalWriter,
}

impl NodeStore {
    /// Initialises a fresh store directory from a bootstrap state
    /// (normally one shard exported from an in-process build via
    /// [`ShardNodeState::export_from`]): writes the snapshot and starts
    /// an empty WAL.
    pub fn init(dir: impl AsRef<Path>, state: ShardNodeState) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        write_node_snapshot(&dir, &state)?;
        let wal = WalWriter::create(&dir.join(NODE_WAL_FILE))?;
        sync_dir(&dir)?;
        Ok(NodeStore { dir, state, wal })
    }

    /// Reopens a store directory: restores the snapshot, replays every
    /// intact WAL record (idempotently — records the snapshot already
    /// covers skip by base stamp), and resumes logging.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let bytes = std::fs::read(dir.join(NODE_SNAPSHOT_FILE))?;
        let mut state = ShardNodeState::from_snapshot_bytes(&bytes)?;
        let (wal, recovery) = WalWriter::open(&dir.join(NODE_WAL_FILE))?;
        for payload in &recovery.records {
            let mut r = ByteReader::new(payload);
            let record = NodeWalRecord::restore(&mut r)?;
            r.expect_exhausted("node wal record")?;
            state.apply(&record)?;
        }
        Ok(NodeStore { dir, state, wal })
    }

    /// The node's in-memory state.
    pub fn state(&self) -> &ShardNodeState {
        &self.state
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Applies one append record and, if it advanced the node, logs it.
    /// Returns `(applied, num_global)` — how many trajectories this
    /// shard indexed and the node's post-apply global count.
    pub fn append(&mut self, record: &NodeWalRecord) -> Result<(u64, u64), StoreError> {
        let before = self.state.num_global();
        let applied = self.state.apply(record)?;
        if self.state.num_global() > before {
            let mut w = ByteWriter::new();
            record.persist(&mut w);
            self.wal.append(&w.into_bytes())?;
        }
        Ok((applied as u64, self.state.num_global()))
    }

    /// Rotates the snapshot: writes the current state atomically, then
    /// starts a fresh WAL (see the module docs for the crash-ordering
    /// argument).
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        write_node_snapshot(&self.dir, &self.state)?;
        sync_dir(&self.dir)?;
        self.wal = WalWriter::create(&self.dir.join(NODE_WAL_FILE))?;
        sync_dir(&self.dir)?;
        Ok(())
    }
}

fn write_node_snapshot(dir: &Path, state: &ShardNodeState) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{NODE_SNAPSHOT_FILE}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&state.to_snapshot_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(NODE_SNAPSHOT_FILE))?;
    Ok(())
}

/// Fsyncs a directory so renames inside it are durable; "unsupported"
/// platforms degrade to best-effort (same policy as the service tier).
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    match std::fs::File::open(dir) {
        Ok(f) => match f.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(e.into()),
        },
        Err(e) => Err(e.into()),
    }
}

/// Serves one shard node over `listener`, blocking forever: accepts
/// connections and spawns a thread per connection. Queries take a read
/// lock; appends and snapshot rotations take the write lock, so readers
/// never observe a half-applied batch.
pub fn serve_node(listener: TcpListener, store: NodeStore) -> std::io::Result<()> {
    let store = Arc::new(RwLock::new(store));
    loop {
        let (conn, _) = listener.accept()?;
        let store = Arc::clone(&store);
        std::thread::spawn(move || serve_node_conn(conn, &store));
    }
}

/// One connection's request loop — public so tests (and embedders) can
/// run a node on their own listener/threading setup.
pub fn serve_node_conn(mut conn: TcpStream, store: &RwLock<NodeStore>) {
    let _ = conn.set_nodelay(true);
    loop {
        let request = match read_frame(&mut conn) {
            Ok(Some(m)) => m,
            // Clean EOF between requests: the peer hung up.
            Ok(None) => return,
            Err(WireError::Frame(e)) => {
                // A malformed frame poisons the stream (framing is lost);
                // answer typed and close.
                let reply = Message::error(ErrCode::BadRequest, format!("bad frame: {e}"));
                let _ = write_frame(&mut conn, &reply);
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        let reply = dispatch(&request, store);
        if write_frame(&mut conn, &reply).is_err() {
            return;
        }
    }
}

fn dispatch(request: &Message, store: &RwLock<NodeStore>) -> Message {
    match request {
        Message::Health => Message::Ok,
        Message::GetMeta => {
            let store = store.read().expect("store lock");
            Message::Meta(meta_of(store.state()))
        }
        Message::GetRouting => {
            let store = store.read().expect("store lock");
            Message::Routing(store.state().router().clone())
        }
        Message::TravelTimes(spq) => {
            let store = store.read().expect("store lock");
            match store.state().get_travel_times(spq) {
                Ok(tt) => Message::TravelTimesResult {
                    values: tt.values.into_vec(),
                    fallback: tt.fallback,
                },
                Err(e) => err_reply(&e),
            }
        }
        Message::Count { spq, cap } => {
            let store = store.read().expect("store lock");
            match store.state().count_matching(spq, *cap) {
                Ok(n) => Message::CountResult(n as u64),
                Err(e) => err_reply(&e),
            }
        }
        Message::Estimate { spq, mode } => {
            let store = store.read().expect("store lock");
            match store.state().estimate(spq, *mode) {
                Ok(v) => Message::EstimateResult(v),
                Err(e) => err_reply(&e),
            }
        }
        Message::Append(record) => {
            let mut store = store.write().expect("store lock");
            match store.append(record) {
                Ok((appended, total)) => Message::Appended { appended, total },
                Err(e) => err_reply(&e),
            }
        }
        Message::Snapshot => {
            let mut store = store.write().expect("store lock");
            match store.snapshot() {
                Ok(()) => Message::Ok,
                Err(e) => err_reply(&e),
            }
        }
        other => Message::error(
            ErrCode::BadRequest,
            format!("not a request frame: {other:?}"),
        ),
    }
}

fn meta_of(state: &ShardNodeState) -> NodeMeta {
    NodeMeta {
        shard: state.shard(),
        num_shards: state.num_shards() as u32,
        num_edges: state.router().num_edges() as u64,
        num_global: state.num_global(),
        num_members: state.members().len() as u64,
        num_partitions: state.index().num_partitions() as u64,
        span_min: state.span_min(),
        span_max: state.span_max(),
    }
}

/// Maps store-layer failures to wire errors: WAL gaps keep their stamps
/// (the router's retry logic keys off them), semantic violations are the
/// client's fault, broken bytes are corruption, and I/O is the node's
/// own problem.
fn err_reply(e: &StoreError) -> Message {
    match e {
        StoreError::WalGap { expected, found } => Message::Err {
            code: ErrCode::WalGap,
            expected: *expected,
            found: *found,
            message: e.to_string(),
        },
        StoreError::Corrupt { .. } => Message::error(ErrCode::BadRequest, e.to_string()),
        StoreError::Io(_) => Message::error(ErrCode::Internal, e.to_string()),
        _ => Message::error(ErrCode::Corrupt, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tthr_core::{ShardedSntIndex, SntConfig, Spq, TimeInterval};
    use tthr_network::examples::{example_network, EDGE_A, EDGE_B, EDGE_E};
    use tthr_network::Path as NetPath;
    use tthr_trajectory::examples::example_trajectories;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tthr-node-store-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn example_state() -> ShardNodeState {
        let network = example_network();
        let sharded =
            ShardedSntIndex::build(&network, &example_trajectories(), SntConfig::default(), 2);
        // Export whichever shard owns the example SPQ's first edge so the
        // tests can actually query the node they hold.
        let shard = tthr_core::ShardRouter::build(&network, 2).shard_of(EDGE_A);
        ShardNodeState::export_from(&sharded, shard)
    }

    fn example_spq() -> Spq {
        Spq::new(
            NetPath::new(vec![EDGE_A, EDGE_B, EDGE_E]),
            TimeInterval::fixed(0, 15),
        )
        .with_beta(2)
    }

    #[test]
    fn node_store_round_trips_through_init_and_open() {
        let dir = temp_dir("roundtrip");
        let state = example_state();
        let spq = example_spq();
        let want = state.get_travel_times(&spq).unwrap().sorted();
        drop(NodeStore::init(&dir, state).unwrap());
        let reopened = NodeStore::open(&dir).unwrap();
        assert_eq!(
            reopened.state().get_travel_times(&spq).unwrap().sorted(),
            want
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_survive_reopen_and_snapshot_rotation() {
        let dir = temp_dir("appends");
        let mut store = NodeStore::init(&dir, example_state()).unwrap();
        let record = NodeWalRecord {
            base: store.state().num_global(),
            new_total: store.state().num_global() + 1,
            span_min: store.state().span_min(),
            span_max: store.state().span_max().max(100),
            members: vec![],
            trajectories: vec![],
        };
        let (applied, total) = store.append(&record).unwrap();
        assert_eq!((applied, total), (0, record.new_total));
        // Re-applying is an idempotent skip — and must not grow the WAL.
        assert_eq!(store.append(&record).unwrap(), (0, record.new_total));
        drop(store);

        let reopened = NodeStore::open(&dir).unwrap();
        assert_eq!(reopened.state().num_global(), record.new_total);
        let mut store = reopened;
        store.snapshot().unwrap();
        drop(store);
        let again = NodeStore::open(&dir).unwrap();
        assert_eq!(again.state().num_global(), record.new_total);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dispatch_answers_queries_and_rejects_response_frames() {
        let store = RwLock::new(NodeStore::init(temp_dir("dispatch"), example_state()).unwrap());
        assert_eq!(dispatch(&Message::Health, &store), Message::Ok);
        let Message::Meta(meta) = dispatch(&Message::GetMeta, &store) else {
            panic!("GetMeta answers Meta");
        };
        assert_eq!(meta.num_shards, 2);
        match dispatch(&Message::Ok, &store) {
            Message::Err {
                code: ErrCode::BadRequest,
                ..
            } => {}
            other => panic!("response frame as request: {other:?}"),
        }
        let dir = store.read().unwrap().dir().to_path_buf();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn wal_gap_errors_carry_their_stamps_on_the_wire() {
        let store = RwLock::new(NodeStore::init(temp_dir("gap"), example_state()).unwrap());
        let base = store.read().unwrap().state().num_global();
        let record = NodeWalRecord {
            base: base + 5,
            new_total: base + 6,
            span_min: 0,
            span_max: 0,
            members: vec![],
            trajectories: vec![],
        };
        match dispatch(&Message::Append(record), &store) {
            Message::Err {
                code: ErrCode::WalGap,
                expected,
                found,
                ..
            } => {
                assert_eq!((expected, found), (base, base + 5));
            }
            other => panic!("expected WalGap, got {other:?}"),
        }
        let dir = store.read().unwrap().dir().to_path_buf();
        std::fs::remove_dir_all(dir).ok();
    }
}
