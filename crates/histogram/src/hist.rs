//! Fixed-bucket-width histograms with discrete convolution.

/// A histogram over non-negative values with fixed bucket width `h`:
/// bucket `i` counts values in `[i·h, (i+1)·h)`.
///
/// ```
/// use tthr_histogram::Histogram;
///
/// // The paper's Section 2.3 example: H1 ∗ H2.
/// let h1 = Histogram::from_values(&[6.0, 6.5, 7.0], 1.0);
/// let h2 = Histogram::from_values(&[4.0, 4.5, 5.0], 1.0);
/// let conv = h1.convolve(&h2);
/// assert_eq!(conv.count_at(10.0), 4.0);
/// assert_eq!(conv.count_at(11.0), 4.0);
/// assert_eq!(conv.count_at(12.0), 1.0);
/// ```
///
/// Bucket masses are `f64`: convolution multiplies counts
/// (`total(H₁ ∗ H₂) = total(H₁) · total(H₂)`), so convolving dozens of
/// sub-path histograms — as a trip query does — overflows any integer
/// representation. Long chains should [`normalize`](Histogram::normalize)
/// each factor first, keeping every intermediate a unit-mass distribution.
///
/// Storage is sparse-by-offset: only the contiguous bucket range between the
/// first and last non-empty bucket is materialized.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bucket_width: f64,
    /// Index of `counts[0]` in the global bucket grid.
    start_bucket: u64,
    counts: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket width.
    ///
    /// # Panics
    /// Panics unless `bucket_width > 0`.
    pub fn new(bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        Histogram {
            bucket_width,
            start_bucket: 0,
            counts: Vec::new(),
            total: 0.0,
        }
    }

    /// Builds a histogram of `values` (all must be ≥ 0 and finite).
    pub fn from_values(values: &[f64], bucket_width: f64) -> Self {
        let mut h = Histogram::new(bucket_width);
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Bucket index of a value. Negative values (including `-0.0`) clamp to
    /// bucket 0 via the saturating float→int cast.
    #[inline]
    fn bucket_of(&self, value: f64) -> u64 {
        debug_assert!(value >= 0.0, "value must be non-negative, got {value}");
        (value / self.bucket_width) as u64
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.add_weighted(value, 1.0);
    }

    /// Adds an observation with a fractional weight.
    ///
    /// Non-finite values are dropped (debug builds assert): a NaN or
    /// infinite travel time produced by corrupt input must not panic the
    /// retrieval path or blow up the bucket range.
    pub fn add_weighted(&mut self, value: f64, weight: f64) {
        if !value.is_finite() {
            debug_assert!(false, "non-finite histogram value {value}");
            return;
        }
        let b = self.bucket_of(value);
        if self.counts.is_empty() {
            self.start_bucket = b;
            self.counts.push(0.0);
        } else if b < self.start_bucket {
            let grow = (self.start_bucket - b) as usize;
            let mut new_counts = vec![0.0; grow + self.counts.len()];
            new_counts[grow..].copy_from_slice(&self.counts);
            self.counts = new_counts;
            self.start_bucket = b;
        } else if b >= self.start_bucket + self.counts.len() as u64 {
            self.counts
                .resize((b - self.start_bucket + 1) as usize, 0.0);
        }
        self.counts[(b - self.start_bucket) as usize] += weight;
        self.total += weight;
    }

    /// The bucket width `h`.
    #[inline]
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Total mass `B(H, [0, ∞))`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Whether the histogram holds no mass.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0.0
    }

    /// Mass of the bucket containing `value`. Non-finite and negative
    /// lookups hold no mass.
    pub fn count_at(&self, value: f64) -> f64 {
        if self.counts.is_empty() || !value.is_finite() || value < 0.0 {
            return 0.0;
        }
        let b = self.bucket_of(value);
        if b < self.start_bucket || b >= self.start_bucket + self.counts.len() as u64 {
            0.0
        } else {
            self.counts[(b - self.start_bucket) as usize]
        }
    }

    /// `B(H, [lo, hi))`: total mass of buckets whose *lower edge* lies in
    /// `[lo, hi)` (bucket granularity, as in the paper's definitions).
    pub fn count_range(&self, lo: f64, hi: f64) -> f64 {
        if self.counts.is_empty() || hi <= lo {
            return 0.0;
        }
        let lo_b = if lo <= 0.0 {
            0
        } else {
            (lo / self.bucket_width).ceil() as u64
        };
        let hi_b = if hi <= 0.0 {
            0
        } else {
            (hi / self.bucket_width).ceil() as u64
        };
        let from = lo_b.max(self.start_bucket);
        let to = hi_b.min(self.start_bucket + self.counts.len() as u64);
        if from >= to {
            return 0.0;
        }
        self.counts[(from - self.start_bucket) as usize..(to - self.start_bucket) as usize]
            .iter()
            .sum()
    }

    /// Iterator over `(bucket_lower_edge, mass)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(move |(i, &c)| ((self.start_bucket + i as u64) as f64 * self.bucket_width, c))
    }

    /// Mean value, approximated by bucket midpoints.
    pub fn mean(&self) -> Option<f64> {
        if self.total <= 0.0 {
            return None;
        }
        let sum: f64 = self
            .iter()
            .map(|(edge, c)| (edge + self.bucket_width / 2.0) * c)
            .sum();
        Some(sum / self.total)
    }

    /// Smallest non-empty bucket's lower edge (`H_min` for shift-and-enlarge).
    pub fn min_edge(&self) -> Option<f64> {
        self.iter().next().map(|(e, _)| e)
    }

    /// Largest non-empty bucket's *upper* edge (`H_max`).
    pub fn max_edge(&self) -> Option<f64> {
        self.iter().last().map(|(e, _)| e + self.bucket_width)
    }

    /// Rescales to unit mass. No-op on an empty histogram.
    pub fn normalize(&self) -> Histogram {
        if self.total <= 0.0 {
            return self.clone();
        }
        let mut out = self.clone();
        for c in &mut out.counts {
            *c /= self.total;
        }
        out.total = 1.0;
        out
    }

    /// Discrete convolution `self ∗ other` (paper, Section 2.3): the
    /// distribution of the sum of one draw from each histogram. Masses
    /// multiply, so `total(H₁ ∗ H₂) = total(H₁) · total(H₂)`.
    ///
    /// # Panics
    /// Panics if the bucket widths differ.
    pub fn convolve(&self, other: &Histogram) -> Histogram {
        assert!(
            (self.bucket_width - other.bucket_width).abs() < f64::EPSILON,
            "convolution requires equal bucket widths"
        );
        if self.is_empty() || other.is_empty() {
            return Histogram::new(self.bucket_width);
        }
        let mut counts = vec![0.0; self.counts.len() + other.counts.len() - 1];
        for (i, &a) in self.counts.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.counts.iter().enumerate() {
                counts[i + j] += a * b;
            }
        }
        Histogram {
            bucket_width: self.bucket_width,
            start_bucket: self.start_bucket + other.start_bucket,
            counts,
            total: self.total * other.total,
        }
    }

    /// Convolves a sequence of histograms: `H₁ ∗ H₂ ∗ … ∗ H_k`.
    /// Returns `None` for an empty sequence.
    pub fn convolve_all<'a, I: IntoIterator<Item = &'a Histogram>>(hists: I) -> Option<Histogram> {
        let mut iter = hists.into_iter();
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, h| acc.convolve(h)))
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_2_3_worked_example() {
        // H from Q = spq(⟨A,B,E⟩, [0,15), u=u1, 2): durations 11 and 10.
        let h = Histogram::from_values(&[11.0, 10.0], 1.0);
        assert_eq!(h.count_at(10.0), 1.0);
        assert_eq!(h.count_at(11.0), 1.0);
        assert_eq!(h.total(), 2.0);

        // H1 = {[6,7):2, [7,8):1}, H2 = {[4,5):2, [5,6):1}.
        let h1 = Histogram::from_values(&[6.0, 6.5, 7.0], 1.0);
        let h2 = Histogram::from_values(&[4.0, 4.5, 5.0], 1.0);
        assert_eq!(h1.count_at(6.0), 2.0);
        assert_eq!(h1.count_at(7.0), 1.0);

        // H1 ∗ H2 = {[10,11):4, [11,12):4, [12,13):1}.
        let conv = h1.convolve(&h2);
        assert_eq!(conv.count_at(10.0), 4.0);
        assert_eq!(conv.count_at(11.0), 4.0);
        assert_eq!(conv.count_at(12.0), 1.0);
        assert_eq!(conv.total(), 9.0);
    }

    #[test]
    fn add_grows_in_both_directions() {
        let mut h = Histogram::new(10.0);
        h.add(55.0);
        h.add(15.0); // grow left
        h.add(95.0); // grow right
        assert_eq!(h.count_at(55.0), 1.0);
        assert_eq!(h.count_at(15.0), 1.0);
        assert_eq!(h.count_at(95.0), 1.0);
        assert_eq!(h.count_at(45.0), 0.0);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn count_range_uses_bucket_edges() {
        let h = Histogram::from_values(&[5.0, 15.0, 25.0, 25.5], 10.0);
        assert_eq!(h.count_range(0.0, 30.0), 4.0);
        assert_eq!(h.count_range(10.0, 20.0), 1.0);
        assert_eq!(h.count_range(10.0, 30.0), 3.0);
        assert_eq!(h.count_range(20.0, 100.0), 2.0);
        assert_eq!(h.count_range(30.0, 20.0), 0.0);
        // Partial bucket overlap counts only buckets whose lower edge is in
        // range.
        assert_eq!(
            h.count_range(5.0, 15.0),
            1.0,
            "only bucket [10,20) starts in [5,15)"
        );
    }

    #[test]
    fn mean_and_edges() {
        let h = Histogram::from_values(&[10.0, 20.0, 30.0], 10.0);
        // Midpoints 15, 25, 35 → mean 25.
        assert_eq!(h.mean(), Some(25.0));
        assert_eq!(h.min_edge(), Some(10.0));
        assert_eq!(h.max_edge(), Some(40.0));
        assert_eq!(Histogram::new(1.0).mean(), None);
    }

    #[test]
    fn normalize_gives_unit_mass() {
        let h = Histogram::from_values(&[10.0, 10.0, 20.0, 30.0], 10.0);
        let n = h.normalize();
        assert!((n.total() - 1.0).abs() < 1e-12);
        assert!((n.count_at(10.0) - 0.5).abs() < 1e-12);
        // Mean is invariant under normalization.
        assert!((n.mean().unwrap() - h.mean().unwrap()).abs() < 1e-12);
        // Normalizing an empty histogram is a no-op.
        assert!(Histogram::new(1.0).normalize().is_empty());
    }

    #[test]
    fn long_convolution_chain_stays_finite() {
        // 50 sub-path histograms of 20 values each: raw counts would reach
        // 20⁵⁰; normalized factors keep unit mass.
        let values: Vec<f64> = (0..20).map(|i| 30.0 + i as f64).collect();
        let factor = Histogram::from_values(&values, 10.0).normalize();
        let chain: Vec<Histogram> = (0..50).map(|_| factor.clone()).collect();
        let conv = Histogram::convolve_all(chain.iter()).unwrap();
        assert!((conv.total() - 1.0).abs() < 1e-6);
        assert!(conv.mean().unwrap().is_finite());
    }

    #[test]
    fn convolution_with_empty_is_empty() {
        let h = Histogram::from_values(&[5.0], 1.0);
        let empty = Histogram::new(1.0);
        assert!(h.convolve(&empty).is_empty());
        assert!(empty.convolve(&h).is_empty());
    }

    #[test]
    fn convolve_all_folds_left() {
        let a = Histogram::from_values(&[1.0], 1.0);
        let b = Histogram::from_values(&[2.0], 1.0);
        let c = Histogram::from_values(&[3.0], 1.0);
        let conv = Histogram::convolve_all([&a, &b, &c]).unwrap();
        assert_eq!(conv.count_at(6.0), 1.0);
        assert_eq!(conv.total(), 1.0);
        assert!(Histogram::convolve_all(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "equal bucket widths")]
    fn mismatched_widths_panic() {
        let a = Histogram::from_values(&[1.0], 1.0);
        let b = Histogram::from_values(&[1.0], 2.0);
        let _ = a.convolve(&b);
    }

    proptest::proptest! {
        /// Convolution total is the product of totals, and its mean is the
        /// sum of means (up to bucket-midpoint discretization error ≤ h).
        #[test]
        fn convolution_mass_and_mean(
            xs in proptest::collection::vec(0.0f64..500.0, 1..40),
            ys in proptest::collection::vec(0.0f64..500.0, 1..40),
        ) {
            let h = 10.0;
            let a = Histogram::from_values(&xs, h);
            let b = Histogram::from_values(&ys, h);
            let conv = a.convolve(&b);
            proptest::prop_assert!((conv.total() - a.total() * b.total()).abs() < 1e-6);
            let want = a.mean().unwrap() + b.mean().unwrap();
            let got = conv.mean().unwrap();
            // Midpoint of a sum-bucket differs from the sum of midpoints by
            // at most h/2 either way.
            proptest::prop_assert!((got - want).abs() <= h / 2.0 + 1e-9,
                "mean {got} vs {want}");
        }

        /// Convolution is commutative.
        #[test]
        fn convolution_commutes(
            xs in proptest::collection::vec(0.0f64..200.0, 1..30),
            ys in proptest::collection::vec(0.0f64..200.0, 1..30),
        ) {
            let a = Histogram::from_values(&xs, 5.0);
            let b = Histogram::from_values(&ys, 5.0);
            proptest::prop_assert_eq!(a.convolve(&b), b.convolve(&a));
        }

        /// `count_range` over the full support equals the total.
        #[test]
        fn count_range_total(
            xs in proptest::collection::vec(0.0f64..1000.0, 0..50),
        ) {
            let h = Histogram::from_values(&xs, 7.0);
            proptest::prop_assert_eq!(h.count_range(0.0, 2000.0), h.total());
        }
    }
}
