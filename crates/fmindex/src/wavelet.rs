//! The wavelet matrix: a balanced, pointerless wavelet structure.
//!
//! Rank over an integer alphabet in `O(log σ)` bit-vector ranks. This is the
//! "balanced" counterpart to the Huffman-shaped tree the paper uses; both are
//! benchmarked in the `wavelet` ablation bench.

use crate::bitvec::RankBitVec;
use crate::SymbolRank;
use tthr_store::{ByteReader, ByteWriter, Persist, StoreError};

/// A wavelet matrix over `u32` symbols (Claude, Navarro & Ordóñez, 2015).
///
/// Level `l` stores the `l`-th most significant bit of every symbol, with
/// the sequence stably re-partitioned (zeros first) between levels.
#[derive(Clone, Debug)]
pub struct WaveletMatrix {
    levels: Vec<RankBitVec>,
    /// Number of zero bits at each level.
    zeros: Vec<usize>,
    len: usize,
    bits: u32,
}

impl WaveletMatrix {
    /// Builds from a symbol sequence. `alphabet_size` must exceed every
    /// symbol; it fixes the number of levels at `ceil(log2 alphabet_size)`.
    pub fn new(sequence: &[u32], alphabet_size: u32) -> Self {
        assert!(
            sequence.iter().all(|&s| s < alphabet_size.max(1)),
            "symbol out of alphabet range"
        );
        let bits = if alphabet_size <= 1 {
            1
        } else {
            32 - (alphabet_size - 1).leading_zeros()
        };
        let mut levels = Vec::with_capacity(bits as usize);
        let mut zeros = Vec::with_capacity(bits as usize);
        let mut current: Vec<u32> = sequence.to_vec();
        for l in 0..bits {
            let shift = bits - 1 - l;
            let bv = RankBitVec::from_bits(current.iter().map(|&s| (s >> shift) & 1 == 1));
            let mut lo: Vec<u32> = Vec::with_capacity(current.len());
            let mut hi: Vec<u32> = Vec::new();
            for &s in &current {
                if (s >> shift) & 1 == 0 {
                    lo.push(s);
                } else {
                    hi.push(s);
                }
            }
            zeros.push(lo.len());
            lo.extend_from_slice(&hi);
            current = lo;
            levels.push(bv);
        }
        WaveletMatrix {
            levels,
            zeros,
            len: sequence.len(),
            bits,
        }
    }
}

/// Wire form: length (`u64`), level count (`u32`), then each level's bit
/// vector. The per-level zero counts are ranks over those vectors and are
/// recomputed on restore.
impl Persist for WaveletMatrix {
    fn persist(&self, w: &mut ByteWriter) {
        w.put_len(self.len);
        w.put_u32(self.bits);
        for level in &self.levels {
            level.persist(w);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let len = r.get_u64()? as usize;
        let bits = r.get_u32()?;
        if bits == 0 || bits > 32 {
            return Err(StoreError::corrupt(format!(
                "wavelet matrix with {bits} levels"
            )));
        }
        let mut levels = Vec::with_capacity(bits as usize);
        let mut zeros = Vec::with_capacity(bits as usize);
        for l in 0..bits {
            let bv = RankBitVec::restore(r)?;
            if bv.len() != len {
                return Err(StoreError::corrupt(format!(
                    "wavelet level {l} has {} bits, expected {len}",
                    bv.len()
                )));
            }
            zeros.push(bv.rank0(len));
            levels.push(bv);
        }
        Ok(WaveletMatrix {
            levels,
            zeros,
            len,
            bits,
        })
    }
}

impl SymbolRank for WaveletMatrix {
    fn len(&self) -> usize {
        self.len
    }

    /// Every symbol descends through all `⌈log σ⌉` levels of the balanced
    /// matrix.
    fn descent_depth(&self, _c: u32) -> u32 {
        self.bits
    }

    fn access(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        let mut pos = i;
        let mut sym = 0u32;
        for (l, bv) in self.levels.iter().enumerate() {
            sym <<= 1;
            if bv.get(pos) {
                sym |= 1;
                pos = self.zeros[l] + bv.rank1(pos);
            } else {
                pos = bv.rank0(pos);
            }
        }
        sym
    }

    fn rank(&self, c: u32, pos: usize) -> usize {
        debug_assert!(pos <= self.len);
        if self.bits < 32 && c >= (1u32 << self.bits) {
            return 0;
        }
        let mut start = 0usize;
        let mut end = pos;
        for (l, bv) in self.levels.iter().enumerate() {
            let bit = (c >> (self.bits - 1 - l as u32)) & 1;
            if bit == 0 {
                (start, end) = bv.rank0_pair(start, end);
            } else {
                let (s, e) = bv.rank1_pair(start, end);
                start = self.zeros[l] + s;
                end = self.zeros[l] + e;
            }
            if start == end {
                return 0;
            }
        }
        end - start
    }

    /// Paired-boundary rank in one descent: three positions (`0 → start`,
    /// `i → pi`, `j → pj`) ride the same per-level re-partitioning, so the
    /// shared lower boundary costs one bit-vector rank per level instead of
    /// being recomputed per call — 3 ranks per level instead of the 4 two
    /// independent `rank` calls would issue.
    fn rank2(&self, c: u32, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i <= j && j <= self.len);
        if self.bits < 32 && c >= (1u32 << self.bits) {
            return (0, 0);
        }
        let mut start = 0usize;
        let mut pi = i;
        let mut pj = j;
        for (l, bv) in self.levels.iter().enumerate() {
            let bit = (c >> (self.bits - 1 - l as u32)) & 1;
            // All three positions descend through the same monotone map, so
            // start ≤ pi ≤ pj is invariant; if start catches up with pi the
            // two stay equal for good and the final pi − start is 0 without
            // any special casing.
            if bit == 0 {
                start = bv.rank0(start);
                (pi, pj) = bv.rank0_pair(pi, pj);
            } else {
                let z = self.zeros[l];
                start = z + bv.rank1(start);
                let (a, b) = bv.rank1_pair(pi, pj);
                pi = z + a;
                pj = z + b;
            }
            if start == pj {
                return (0, 0);
            }
        }
        (pi - start, pj - start)
    }

    fn size_bytes(&self) -> usize {
        self.levels.iter().map(|b| b.size_bytes()).sum::<usize>()
            + self.zeros.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_rank(seq: &[u32], c: u32, pos: usize) -> usize {
        seq[..pos].iter().filter(|&&s| s == c).count()
    }

    #[test]
    fn rank_and_access_on_small_sequence() {
        let seq = vec![3, 1, 4, 1, 5, 1, 2, 6, 5, 3];
        let wm = WaveletMatrix::new(&seq, 8);
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(wm.access(i), s, "access({i})");
        }
        for c in 0..8 {
            for pos in 0..=seq.len() {
                assert_eq!(
                    wm.rank(c, pos),
                    reference_rank(&seq, c, pos),
                    "rank({c},{pos})"
                );
            }
        }
    }

    #[test]
    fn figure3_bwt_ranks() {
        // BWT of the paper's example: EFEE$$$$AAAACBDBB with $=0,A=1,…,F=6.
        let bwt = vec![5, 6, 5, 5, 0, 0, 0, 0, 1, 1, 1, 1, 3, 2, 4, 2, 2];
        let wm = WaveletMatrix::new(&bwt, 7);
        // rank_A(Tbwt, 8) = 0 and rank_A(Tbwt, 11) = 3 (Procedure 2 example).
        assert_eq!(wm.rank(1, 8), 0);
        assert_eq!(wm.rank(1, 11), 3);
    }

    #[test]
    fn single_symbol_alphabet() {
        let seq = vec![0, 0, 0];
        let wm = WaveletMatrix::new(&seq, 1);
        assert_eq!(wm.rank(0, 3), 3);
        assert_eq!(wm.access(1), 0);
    }

    #[test]
    fn out_of_alphabet_rank_is_zero() {
        let seq = vec![1, 2, 3];
        let wm = WaveletMatrix::new(&seq, 4);
        assert_eq!(wm.rank(100, 3), 0);
    }

    #[test]
    fn empty_sequence() {
        let wm = WaveletMatrix::new(&[], 16);
        assert_eq!(wm.len(), 0);
        assert_eq!(wm.rank(3, 0), 0);
        assert!(wm.is_empty());
    }

    #[test]
    fn persist_round_trip_recomputes_zeros() {
        let seq = vec![3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let wm = WaveletMatrix::new(&seq, 10);
        let mut w = tthr_store::ByteWriter::new();
        wm.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = tthr_store::ByteReader::new(&bytes);
        let restored = WaveletMatrix::restore(&mut r).unwrap();
        r.expect_exhausted("wavelet matrix").unwrap();
        for c in 0..10u32 {
            for pos in 0..=seq.len() {
                assert_eq!(restored.rank(c, pos), wm.rank(c, pos), "rank({c},{pos})");
            }
        }
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(restored.access(i), s);
        }
    }

    #[test]
    fn rank2_crosses_word_and_superblock_boundaries() {
        // A sequence long enough that level bit vectors span several 512-bit
        // superblocks; probe pairs placed around the 64- and 512-bit marks.
        let seq: Vec<u32> = (0..1600).map(|i| (i * 7 + i / 11) as u32 % 37).collect();
        let wm = WaveletMatrix::new(&seq, 37);
        for c in [0u32, 5, 17, 36] {
            for &(i, j) in &[
                (0, 0),
                (0, 1600),
                (63, 65),
                (64, 64),
                (511, 513),
                (512, 1024),
                (700, 701),
                (1599, 1600),
            ] {
                assert_eq!(
                    wm.rank2(c, i, j),
                    (wm.rank(c, i), wm.rank(c, j)),
                    "rank2({c},{i},{j})"
                );
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn rank_matches_reference(
            seq in proptest::collection::vec(0u32..300, 0..400),
        ) {
            let wm = WaveletMatrix::new(&seq, 300);
            // Probe a sample of (symbol, position) pairs.
            for c in [0u32, 1, 7, 150, 299] {
                for pos in [0, seq.len() / 3, seq.len()] {
                    proptest::prop_assert_eq!(wm.rank(c, pos), reference_rank(&seq, c, pos));
                }
            }
            for (i, &s) in seq.iter().enumerate().take(64) {
                proptest::prop_assert_eq!(wm.access(i), s);
            }
        }

        /// `rank2(c, i, j) == (rank(c, i), rank(c, j))` for arbitrary
        /// boundary pairs, including out-of-alphabet symbols.
        #[test]
        fn rank2_matches_two_ranks(
            seq in proptest::collection::vec(0u32..300, 0..1500),
            probes in proptest::collection::vec((0usize..1501, 0usize..1501, 0u32..310), 0..64),
        ) {
            let wm = WaveletMatrix::new(&seq, 300);
            let n = seq.len();
            for (a, b, c) in probes {
                let (i, j) = (a.min(b).min(n), a.max(b).min(n));
                proptest::prop_assert_eq!(wm.rank2(c, i, j), (wm.rank(c, i), wm.rank(c, j)));
            }
        }
    }
}
