//! Travel-time histograms and their operations.
//!
//! Travel times along a path are modeled as distributions, and since they
//! rarely follow a parameterized family, the paper estimates them with
//! fixed-bucket-width histograms (Section 1). Sub-path histograms are
//! combined into full-path distributions with the discrete convolution
//! operator `H = H₁ ∗ H₂ ∗ … ∗ H_k` (Section 2.3).
//!
//! * [`Histogram`] — sparse fixed-width bucket counts with convolution.
//! * [`SmoothedPdf`] — the γ-mixture of a histogram with a uniform
//!   distribution used by the log-likelihood quality metric (Section 5.3.3).
//! * [`TimeOfDayHistogram`] — per-segment time-of-day traversal counts used
//!   by the accurate cardinality estimator modes (Section 4.4, formula 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod pdf;
mod tod;

pub use hist::Histogram;
pub use pdf::SmoothedPdf;
pub use tod::TimeOfDayHistogram;
